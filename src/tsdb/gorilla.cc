#include "src/tsdb/gorilla.h"

#include <algorithm>
#include <bit>
#include <cstring>

#include "src/common/check.h"

namespace fbdetect {
namespace {

uint64_t DoubleToBits(double value) {
  uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

double BitsToDouble(uint64_t bits) {
  double value = 0.0;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

// ZigZag encoding maps signed deltas to unsigned for variable-width storage.
uint64_t ZigZag(int64_t value) {
  return (static_cast<uint64_t>(value) << 1) ^ static_cast<uint64_t>(value >> 63);
}

int64_t UnZigZag(uint64_t value) {
  return static_cast<int64_t>(value >> 1) ^ -static_cast<int64_t>(value & 1);
}

// Bounds-checked cursor over a bit stream for TryDecodeInto: reads return
// false instead of aborting when the stream is exhausted, so corrupt or
// truncated chunks surface as Status errors.
class CheckedBitReader {
 public:
  CheckedBitReader(const std::vector<uint8_t>& bytes, size_t bit_count)
      : bytes_(&bytes), bit_count_(std::min(bit_count, bytes.size() * 8)) {}

  bool ReadBit(bool& bit) {
    if (position_ >= bit_count_) {
      return false;
    }
    bit = ((*bytes_)[position_ / 8] & static_cast<uint8_t>(0x80u >> (position_ % 8))) != 0;
    ++position_;
    return true;
  }

  bool ReadBits(int bits, uint64_t& value) {
    if (bits < 0 || bits > 64 || bit_count_ - position_ < static_cast<size_t>(bits)) {
      return false;
    }
    value = 0;
    for (int i = 0; i < bits; ++i) {
      bool bit = false;
      ReadBit(bit);  // In bounds by the check above.
      value = (value << 1) | (bit ? 1 : 0);
    }
    return true;
  }

 private:
  const std::vector<uint8_t>* bytes_;
  size_t bit_count_;
  size_t position_ = 0;
};

}  // namespace

BitWriter::BitWriter(std::vector<uint8_t> bytes, size_t bit_count)
    : bytes_(std::move(bytes)), bit_count_(bit_count) {
  FBD_CHECK(bit_count_ <= bytes_.size() * 8);
}

void BitWriter::WriteBit(bool bit) {
  const size_t byte_index = bit_count_ / 8;
  if (byte_index >= bytes_.size()) {
    bytes_.push_back(0);
  }
  if (bit) {
    bytes_[byte_index] |= static_cast<uint8_t>(0x80u >> (bit_count_ % 8));
  }
  ++bit_count_;
}

void BitWriter::WriteBits(uint64_t value, int bits) {
  FBD_DCHECK(bits >= 0 && bits <= 64);
  for (int i = bits - 1; i >= 0; --i) {
    WriteBit(((value >> i) & 1) != 0);
  }
}

BitReader::BitReader(const std::vector<uint8_t>& bytes, size_t bit_count)
    : bytes_(&bytes), bit_count_(bit_count) {
  // A stream that claims more bits than its backing bytes is corrupt; abort
  // here rather than index out of bounds in ReadBit.
  FBD_CHECK(bit_count_ <= bytes.size() * 8);
}

bool BitReader::ReadBit() {
  FBD_CHECK(position_ < bit_count_);
  const bool bit =
      ((*bytes_)[position_ / 8] & static_cast<uint8_t>(0x80u >> (position_ % 8))) != 0;
  ++position_;
  return bit;
}

uint64_t BitReader::ReadBits(int bits) {
  FBD_DCHECK(bits >= 0 && bits <= 64);
  uint64_t value = 0;
  for (int i = 0; i < bits; ++i) {
    value = (value << 1) | (ReadBit() ? 1 : 0);
  }
  return value;
}

void CompressedTimeSeries::Append(TimePoint timestamp, double value) {
  FBD_CHECK(count_ == 0 || timestamp > last_timestamp_);
  const uint64_t value_bits = DoubleToBits(value);

  if (count_ == 0) {
    // Header: absolute first timestamp (64 bits) + raw first value (64 bits).
    first_timestamp_ = timestamp;
    stream_.WriteBits(static_cast<uint64_t>(timestamp), 64);
    stream_.WriteBits(value_bits, 64);
    last_timestamp_ = timestamp;
    last_delta_ = 0;
    last_value_bits_ = value_bits;
    last_leading_ = -1;
    ++count_;
    return;
  }

  // --- Timestamp: delta-of-delta, Gorilla bucket encoding ---
  const Duration delta = timestamp - last_timestamp_;
  const int64_t dod = static_cast<int64_t>(delta) - static_cast<int64_t>(last_delta_);
  if (dod == 0) {
    stream_.WriteBit(false);  // '0'
  } else if (dod >= -64 && dod <= 63) {
    stream_.WriteBits(0b10, 2);
    stream_.WriteBits(ZigZag(dod), 7);
  } else if (dod >= -256 && dod <= 255) {
    stream_.WriteBits(0b110, 3);
    stream_.WriteBits(ZigZag(dod), 9);
  } else if (dod >= -2048 && dod <= 2047) {
    stream_.WriteBits(0b1110, 4);
    stream_.WriteBits(ZigZag(dod), 12);
  } else {
    stream_.WriteBits(0b1111, 4);
    stream_.WriteBits(ZigZag(dod), 64);
  }
  last_timestamp_ = timestamp;
  last_delta_ = delta;

  // --- Value: XOR encoding ---
  const uint64_t xored = value_bits ^ last_value_bits_;
  if (xored == 0) {
    stream_.WriteBit(false);  // '0': identical value.
  } else {
    stream_.WriteBit(true);
    int leading = std::countl_zero(xored);
    const int trailing = std::countr_zero(xored);
    if (leading > 31) {
      leading = 31;  // 5-bit field.
    }
    if (last_leading_ >= 0 && leading >= last_leading_ &&
        trailing >= last_trailing_) {
      // '10': reuse the previous block position.
      stream_.WriteBit(false);
      const int block_bits = 64 - last_leading_ - last_trailing_;
      stream_.WriteBits(xored >> last_trailing_, block_bits);
    } else {
      // '11': new block position (5 bits leading, 6 bits length; a full
      // 64-bit block is stored as 0 since the block is never empty).
      stream_.WriteBit(true);
      const int block_bits = 64 - leading - trailing;
      stream_.WriteBits(static_cast<uint64_t>(leading), 5);
      stream_.WriteBits(static_cast<uint64_t>(block_bits == 64 ? 0 : block_bits), 6);
      stream_.WriteBits(xored >> trailing, block_bits);
      last_leading_ = leading;
      last_trailing_ = trailing;
    }
  }
  last_value_bits_ = value_bits;
  ++count_;
}

TimeSeries CompressedTimeSeries::Decode() const {
  TimeSeries series;
  DecodeInto(series);
  return series;
}

void CompressedTimeSeries::DecodeInto(TimeSeries& out) const {
  if (count_ == 0) {
    return;
  }
  BitReader reader(stream_.bytes(), stream_.bit_count());
  TimePoint timestamp = static_cast<TimePoint>(reader.ReadBits(64));
  uint64_t value_bits = reader.ReadBits(64);
  out.Append(timestamp, BitsToDouble(value_bits));

  Duration delta = 0;
  int leading = 0;
  int trailing = 0;
  for (size_t i = 1; i < count_; ++i) {
    // Timestamp.
    int64_t dod = 0;
    if (!reader.ReadBit()) {
      dod = 0;
    } else if (!reader.ReadBit()) {
      dod = UnZigZag(reader.ReadBits(7));
    } else if (!reader.ReadBit()) {
      dod = UnZigZag(reader.ReadBits(9));
    } else if (!reader.ReadBit()) {
      dod = UnZigZag(reader.ReadBits(12));
    } else {
      dod = UnZigZag(reader.ReadBits(64));
    }
    delta += dod;
    timestamp += delta;
    // Value.
    if (reader.ReadBit()) {
      if (reader.ReadBit()) {
        leading = static_cast<int>(reader.ReadBits(5));
        int block_bits = static_cast<int>(reader.ReadBits(6));
        if (block_bits == 0) {
          block_bits = 64;
        }
        trailing = 64 - leading - block_bits;
        value_bits ^= reader.ReadBits(block_bits) << trailing;
      } else {
        const int block_bits = 64 - leading - trailing;
        value_bits ^= reader.ReadBits(block_bits) << trailing;
      }
    }
    out.Append(timestamp, BitsToDouble(value_bits));
  }
}

Status CompressedTimeSeries::TryDecodeInto(TimeSeries& out) const {
  if (count_ == 0) {
    return Status::Ok();
  }
  CheckedBitReader reader(stream_.bytes(), stream_.bit_count());
  uint64_t raw = 0;
  uint64_t value_bits = 0;
  if (!reader.ReadBits(64, raw) || !reader.ReadBits(64, value_bits)) {
    return Status::DataLoss("truncated chunk header");
  }
  TimePoint timestamp = static_cast<TimePoint>(raw);
  if (!out.TryAppend(timestamp, BitsToDouble(value_bits))) {
    return Status::DataLoss("chunk does not start after preceding points");
  }
  // Deltas accumulate in unsigned arithmetic so corrupt streams wrap instead
  // of hitting signed overflow; the strictly-increasing check below rejects
  // the wrapped garbage.
  uint64_t delta = 0;
  int leading = 0;
  int trailing = 0;
  for (size_t i = 1; i < count_; ++i) {
    // Timestamp: delta-of-delta buckets ('0', '10', '110', '1110', '1111').
    bool bit = false;
    int ones = 0;
    while (ones < 4) {
      if (!reader.ReadBit(bit)) {
        return Status::DataLoss("truncated timestamp flag");
      }
      if (!bit) {
        break;
      }
      ++ones;
    }
    static constexpr int kDodBits[5] = {0, 7, 9, 12, 64};
    const int dod_bits = kDodBits[ones];
    int64_t dod = 0;
    if (dod_bits > 0) {
      uint64_t zigzag = 0;
      if (!reader.ReadBits(dod_bits, zigzag)) {
        return Status::DataLoss("truncated timestamp delta");
      }
      dod = UnZigZag(zigzag);
    }
    delta += static_cast<uint64_t>(dod);
    timestamp = static_cast<TimePoint>(static_cast<uint64_t>(timestamp) + delta);
    // Value: XOR block ('0' same, '10' reuse position, '11' new position).
    if (!reader.ReadBit(bit)) {
      return Status::DataLoss("truncated value flag");
    }
    if (bit) {
      if (!reader.ReadBit(bit)) {
        return Status::DataLoss("truncated value block flag");
      }
      int block_bits = 0;
      if (bit) {
        uint64_t lead = 0;
        uint64_t length = 0;
        if (!reader.ReadBits(5, lead) || !reader.ReadBits(6, length)) {
          return Status::DataLoss("truncated XOR block position");
        }
        block_bits = length == 0 ? 64 : static_cast<int>(length);
        if (static_cast<int>(lead) + block_bits > 64) {
          return Status::DataLoss("invalid XOR block shape");
        }
        leading = static_cast<int>(lead);
        trailing = 64 - leading - block_bits;
      } else {
        block_bits = 64 - leading - trailing;
      }
      uint64_t block = 0;
      if (!reader.ReadBits(block_bits, block)) {
        return Status::DataLoss("truncated XOR block");
      }
      value_bits ^= block << trailing;
    }
    if (!out.TryAppend(timestamp, BitsToDouble(value_bits))) {
      return Status::DataLoss("non-increasing decoded timestamp");
    }
  }
  return Status::Ok();
}

CompressedTimeSeries CompressedTimeSeries::FromRaw(std::vector<uint8_t> bytes,
                                                   size_t bit_count, size_t count) {
  CompressedTimeSeries chunk;
  chunk.count_ = count;
  chunk.stream_ = BitWriter(std::move(bytes), bit_count);
  // Timestamp bookkeeping (first/last/delta, XOR block state) is unknown for
  // a raw stream; the chunk supports decoding, not further appends.
  return chunk;
}

}  // namespace fbdetect
