#include "src/tsdb/gorilla.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <span>

#include "src/common/arena.h"
#include "src/common/check.h"
#include "src/common/simd.h"

namespace fbdetect {
namespace {

uint64_t DoubleToBits(double value) {
  uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

// ZigZag encoding maps signed deltas to unsigned for variable-width storage.
uint64_t ZigZag(int64_t value) {
  return (static_cast<uint64_t>(value) << 1) ^ static_cast<uint64_t>(value >> 63);
}

int64_t UnZigZag(uint64_t value) {
  return static_cast<int64_t>(value >> 1) ^ -static_cast<int64_t>(value & 1);
}

// Word-at-a-time cursor over a bit stream: instead of extracting one bit per
// iteration (the historical decoder's dominant cost), each read loads a
// 64-bit window around the cursor and shifts the field out. All reads are
// bounds-checked against bit_count; callers choose whether a failed read is
// a Status (TryDecodeInto) or an abort (DecodeInto).
class FastBitReader {
 public:
  FastBitReader(const uint8_t* data, size_t size_bytes, size_t bit_count)
      : data_(data),
        size_(size_bytes),
        bit_count_(std::min(bit_count, size_bytes * 8)) {}

  size_t remaining() const { return bit_count_ - position_; }

  // Reads `bits` (1..64) MSB-first; false (cursor unmoved) when fewer bits
  // remain.
  bool TryReadBits(int bits, uint64_t& value) {
    if (remaining() < static_cast<size_t>(bits)) {
      return false;
    }
    const size_t byte = position_ >> 3;
    const int off = static_cast<int>(position_ & 7);
    const uint64_t window = PeekWord(byte) << off;
    if (bits <= 64 - off) {
      value = window >> (64 - bits);
    } else {
      // The field spans 9 bytes: take the 64 - off bits of the shifted
      // window, then the leftover 1..7 bits from the next byte.
      const int have = 64 - off;
      const int extra = bits - have;
      const uint8_t next = byte + 8 < size_ ? data_[byte + 8] : 0;
      value = ((window >> off) << extra) |
              static_cast<uint64_t>(next >> (8 - extra));
    }
    position_ += static_cast<size_t>(bits);
    return true;
  }

  // The next `bits` (<= 57) without advancing; positions beyond the stream
  // read as 0. Flag decoding peeks a few bits, classifies, then advances by
  // the consumed amount — TryAdvance still enforces the bound.
  uint64_t Peek(int bits) const {
    const size_t byte = position_ >> 3;
    const int off = static_cast<int>(position_ & 7);
    return (PeekWord(byte) << off) >> (64 - bits);
  }

  bool TryAdvance(int bits) {
    if (remaining() < static_cast<size_t>(bits)) {
      return false;
    }
    position_ += static_cast<size_t>(bits);
    return true;
  }

  // Unchecked hot-loop variants. The caller must guarantee remaining() is at
  // least `bits` + 64 so that every 8-byte window load (and the 9th byte of
  // a spanning field) stays inside the buffer — ParseChunk's fast path keeps
  // a worst-case-point margin before entering them.
  uint64_t PeekUnchecked(int bits) const {
    const size_t byte = position_ >> 3;
    const int off = static_cast<int>(position_ & 7);
    return (LoadWord(byte) << off) >> (64 - bits);
  }

  void AdvanceUnchecked(int bits) { position_ += static_cast<size_t>(bits); }

  uint64_t ReadBitsUnchecked(int bits) {
    const size_t byte = position_ >> 3;
    const int off = static_cast<int>(position_ & 7);
    const uint64_t window = LoadWord(byte) << off;
    uint64_t value;
    if (bits <= 64 - off) {
      value = window >> (64 - bits);
    } else {
      const int have = 64 - off;
      const int extra = bits - have;
      value = ((window >> off) << extra) |
              static_cast<uint64_t>(data_[byte + 8] >> (8 - extra));
    }
    position_ += static_cast<size_t>(bits);
    return value;
  }

 private:
  // Unconditional in-bounds 8-byte window load (callers on the unchecked
  // path guarantee byte + 8 <= size_).
  uint64_t LoadWord(size_t byte) const {
    uint64_t word = 0;
    std::memcpy(&word, data_ + byte, sizeof(word));
    if constexpr (std::endian::native == std::endian::little) {
      word = __builtin_bswap64(word);
    }
    return word;
  }

  // Big-endian 64-bit window starting at `byte`; bytes past the buffer read
  // as 0 (the bit-count checks reject any read that would depend on them).
  uint64_t PeekWord(size_t byte) const {
    if (byte + 8 <= size_) {
      return LoadWord(byte);
    }
    uint64_t word = 0;
    for (size_t k = 0; k < 8; ++k) {
      word = (word << 8) | (byte + k < size_ ? data_[byte + k] : 0u);
    }
    return word;
  }

  const uint8_t* data_;
  size_t size_;
  size_t bit_count_;
  size_t position_ = 0;
};

// Phase-1 result of the two-phase batch decode (see DecodeCore below).
struct ParsedChunk {
  size_t decoded = 0;           // Fully parsed points (header included).
  const char* error = nullptr;  // Null when all `count` points parsed.
  TimePoint first_timestamp = 0;
  uint64_t first_value_bits = 0;
};

// Phase 1: parses control and field bits for up to `count` points into flat
// per-point arrays — dods[i] (timestamp delta-of-delta) and xors[i] (value
// XOR against the previous value), with index 0 zeroed for the header point.
// Stops at the first malformed or truncated field; `decoded` then names the
// valid prefix. Phase 2 turns these arrays into timestamps and values with
// the SIMD prefix kernels.
ParsedChunk ParseChunk(const uint8_t* bytes, size_t size_bytes, size_t bit_count,
                       size_t count, int64_t* dods, uint64_t* xors) {
  ParsedChunk parsed;
  FastBitReader reader(bytes, size_bytes, bit_count);
  uint64_t raw = 0;
  uint64_t value_bits = 0;
  if (!reader.TryReadBits(64, raw) || !reader.TryReadBits(64, value_bits)) {
    parsed.error = "truncated chunk header";
    return parsed;
  }
  parsed.first_timestamp = static_cast<TimePoint>(raw);
  parsed.first_value_bits = value_bits;
  dods[0] = 0;
  xors[0] = 0;
  parsed.decoded = 1;
  int leading = 0;
  int trailing = 0;
  // Leading-ones count of a 4-bit timestamp flag: '0' -> 0, '10' -> 1,
  // '110' -> 2, '1110' -> 3, '1111' -> 4.
  static constexpr int8_t kLeadingOnes[16] = {0, 0, 0, 0, 0, 0, 0, 0,
                                              1, 1, 1, 1, 2, 2, 3, 4};
  static constexpr int kDodBits[5] = {0, 7, 9, 12, 64};
  size_t i = 1;
  // Fast loop: a worst-case point is 4+64+2+11+64 = 145 bits, so with a
  // >= 209-bit margin (145 plus a full 64-bit window) no per-field bound can
  // trip and every window load is in bounds — fields are read unchecked.
  // The stream tail falls through to the checked loop below.
  while (i < count && reader.remaining() >= 209) {
    // Dominant telemetry point: regular grid (dod '0') and repeated value
    // ('0') compress to two zero bits — decode both flags with one peek.
    if (reader.PeekUnchecked(2) == 0) {
      reader.AdvanceUnchecked(2);
      dods[i] = 0;
      xors[i] = 0;
      parsed.decoded = ++i;
      continue;
    }
    const int ones = kLeadingOnes[reader.PeekUnchecked(4)];
    reader.AdvanceUnchecked(ones < 4 ? ones + 1 : 4);
    int64_t dod = 0;
    if (ones > 0) {
      dod = UnZigZag(reader.ReadBitsUnchecked(kDodBits[ones]));
    }
    dods[i] = dod;
    const unsigned value_flag = static_cast<unsigned>(reader.PeekUnchecked(2));
    uint64_t xored = 0;
    if ((value_flag & 2u) == 0) {
      reader.AdvanceUnchecked(1);
    } else {
      reader.AdvanceUnchecked(2);
      int block_bits = 0;
      if ((value_flag & 1u) != 0) {
        const uint64_t lead_and_length = reader.ReadBitsUnchecked(11);
        const int lead = static_cast<int>(lead_and_length >> 6);
        block_bits = static_cast<int>(lead_and_length & 0x3f);
        if (block_bits == 0) {
          block_bits = 64;
        }
        if (lead + block_bits > 64) {
          parsed.error = "invalid XOR block shape";
          return parsed;
        }
        leading = lead;
        trailing = 64 - leading - block_bits;
      } else {
        block_bits = 64 - leading - trailing;
      }
      xored = reader.ReadBitsUnchecked(block_bits) << trailing;
    }
    xors[i] = xored;
    parsed.decoded = ++i;
  }
  for (; i < count; ++i) {
    // Timestamp: delta-of-delta buckets ('0', '10', '110', '1110', '1111').
    const int ones = kLeadingOnes[reader.Peek(4)];
    if (!reader.TryAdvance(ones < 4 ? ones + 1 : 4)) {
      parsed.error = "truncated timestamp flag";
      return parsed;
    }
    int64_t dod = 0;
    if (ones > 0) {
      uint64_t zigzag = 0;
      if (!reader.TryReadBits(kDodBits[ones], zigzag)) {
        parsed.error = "truncated timestamp delta";
        return parsed;
      }
      dod = UnZigZag(zigzag);
    }
    dods[i] = dod;
    // Value: XOR block ('0' same, '10' reuse position, '11' new position).
    const unsigned value_flag = static_cast<unsigned>(reader.Peek(2));
    uint64_t xored = 0;
    if ((value_flag & 2u) == 0) {
      if (!reader.TryAdvance(1)) {
        parsed.error = "truncated value flag";
        return parsed;
      }
    } else {
      if (!reader.TryAdvance(2)) {
        parsed.error = "truncated value flag";
        return parsed;
      }
      int block_bits = 0;
      if ((value_flag & 1u) != 0) {
        uint64_t lead_and_length = 0;  // 5 bits leading + 6 bits length.
        if (!reader.TryReadBits(11, lead_and_length)) {
          parsed.error = "truncated XOR block position";
          return parsed;
        }
        const int lead = static_cast<int>(lead_and_length >> 6);
        block_bits = static_cast<int>(lead_and_length & 0x3f);
        if (block_bits == 0) {
          block_bits = 64;
        }
        if (lead + block_bits > 64) {
          parsed.error = "invalid XOR block shape";
          return parsed;
        }
        leading = lead;
        trailing = 64 - leading - block_bits;
      } else {
        block_bits = 64 - leading - trailing;
      }
      uint64_t block = 0;
      if (!reader.TryReadBits(block_bits, block)) {
        parsed.error = "truncated XOR block";
        return parsed;
      }
      xored = block << trailing;
    }
    xors[i] = xored;
    parsed.decoded = i + 1;
  }
  return parsed;
}

}  // namespace

BitWriter::BitWriter(std::vector<uint8_t> bytes, size_t bit_count)
    : bytes_(std::move(bytes)), bit_count_(bit_count) {
  FBD_CHECK(bit_count_ <= bytes_.size() * 8);
}

void BitWriter::WriteBit(bool bit) {
  const size_t byte_index = bit_count_ / 8;
  if (byte_index >= bytes_.size()) {
    bytes_.push_back(0);
  }
  if (bit) {
    bytes_[byte_index] |= static_cast<uint8_t>(0x80u >> (bit_count_ % 8));
  }
  ++bit_count_;
}

void BitWriter::WriteBits(uint64_t value, int bits) {
  FBD_DCHECK(bits >= 0 && bits <= 64);
  for (int i = bits - 1; i >= 0; --i) {
    WriteBit(((value >> i) & 1) != 0);
  }
}

BitReader::BitReader(const std::vector<uint8_t>& bytes, size_t bit_count)
    : bytes_(&bytes), bit_count_(bit_count) {
  // A stream that claims more bits than its backing bytes is corrupt; abort
  // here rather than index out of bounds in ReadBit.
  FBD_CHECK(bit_count_ <= bytes.size() * 8);
}

bool BitReader::ReadBit() {
  FBD_CHECK(position_ < bit_count_);
  const bool bit =
      ((*bytes_)[position_ / 8] & static_cast<uint8_t>(0x80u >> (position_ % 8))) != 0;
  ++position_;
  return bit;
}

uint64_t BitReader::ReadBits(int bits) {
  FBD_DCHECK(bits >= 0 && bits <= 64);
  uint64_t value = 0;
  for (int i = 0; i < bits; ++i) {
    value = (value << 1) | (ReadBit() ? 1 : 0);
  }
  return value;
}

void CompressedTimeSeries::Append(TimePoint timestamp, double value) {
  FBD_CHECK(count_ == 0 || timestamp > last_timestamp_);
  const uint64_t value_bits = DoubleToBits(value);

  if (count_ == 0) {
    // Header: absolute first timestamp (64 bits) + raw first value (64 bits).
    first_timestamp_ = timestamp;
    stream_.WriteBits(static_cast<uint64_t>(timestamp), 64);
    stream_.WriteBits(value_bits, 64);
    last_timestamp_ = timestamp;
    last_delta_ = 0;
    last_value_bits_ = value_bits;
    last_leading_ = -1;
    ++count_;
    return;
  }

  // --- Timestamp: delta-of-delta, Gorilla bucket encoding ---
  const Duration delta = timestamp - last_timestamp_;
  const int64_t dod = static_cast<int64_t>(delta) - static_cast<int64_t>(last_delta_);
  if (dod == 0) {
    stream_.WriteBit(false);  // '0'
  } else if (dod >= -64 && dod <= 63) {
    stream_.WriteBits(0b10, 2);
    stream_.WriteBits(ZigZag(dod), 7);
  } else if (dod >= -256 && dod <= 255) {
    stream_.WriteBits(0b110, 3);
    stream_.WriteBits(ZigZag(dod), 9);
  } else if (dod >= -2048 && dod <= 2047) {
    stream_.WriteBits(0b1110, 4);
    stream_.WriteBits(ZigZag(dod), 12);
  } else {
    stream_.WriteBits(0b1111, 4);
    stream_.WriteBits(ZigZag(dod), 64);
  }
  last_timestamp_ = timestamp;
  last_delta_ = delta;

  // --- Value: XOR encoding ---
  const uint64_t xored = value_bits ^ last_value_bits_;
  if (xored == 0) {
    stream_.WriteBit(false);  // '0': identical value.
  } else {
    stream_.WriteBit(true);
    int leading = std::countl_zero(xored);
    const int trailing = std::countr_zero(xored);
    if (leading > 31) {
      leading = 31;  // 5-bit field.
    }
    if (last_leading_ >= 0 && leading >= last_leading_ &&
        trailing >= last_trailing_) {
      // '10': reuse the previous block position.
      stream_.WriteBit(false);
      const int block_bits = 64 - last_leading_ - last_trailing_;
      stream_.WriteBits(xored >> last_trailing_, block_bits);
    } else {
      // '11': new block position (5 bits leading, 6 bits length; a full
      // 64-bit block is stored as 0 since the block is never empty).
      stream_.WriteBit(true);
      const int block_bits = 64 - leading - trailing;
      stream_.WriteBits(static_cast<uint64_t>(leading), 5);
      stream_.WriteBits(static_cast<uint64_t>(block_bits == 64 ? 0 : block_bits), 6);
      stream_.WriteBits(xored >> trailing, block_bits);
      last_leading_ = leading;
      last_trailing_ = trailing;
    }
  }
  last_value_bits_ = value_bits;
  ++count_;
}

TimeSeries CompressedTimeSeries::Decode() const {
  TimeSeries series;
  DecodeInto(series);
  return series;
}

// Two-phase batch decode shared by CompressedTimeSeries and
// CompressedChunkView (the latter over memory-mapped chunk-file payloads).
//
// Phase 1 (ParseChunk) walks the bit stream once with word-sized reads and
// leaves flat dod/xor arrays in arena scratch. Phase 2 reconstructs the
// points with the SIMD prefix kernels: timestamps are two chained prefix
// sums (delta-of-deltas -> deltas -> stamps; wrap-around arithmetic so
// corrupt streams cannot hit signed overflow), values are one prefix XOR.
// The strictly-increasing prefix is bulk-appended to `out`; `error` (if any)
// describes why the decode stopped short.
//
// Matches the historical point-at-a-time decoder exactly: same points
// appended (the valid prefix), same error precedence (a non-increasing
// timestamp reports before a later parse failure).
Status DecodeGorillaStream(const uint8_t* bytes, size_t size_bytes, size_t bit_count,
                           size_t count, TimeSeries& out, bool checked) {
  if (count == 0) {
    return Status::Ok();
  }
  ArenaScope scope(Arena::ThreadLocal());
  const std::span<int64_t> dods = scope.MakeUninitializedSpan<int64_t>(count);
  const std::span<uint64_t> xors = scope.MakeUninitializedSpan<uint64_t>(count);
  const ParsedChunk parsed =
      ParseChunk(bytes, size_bytes, bit_count, count, dods.data(), xors.data());
  if (!checked) {
    // The abort-on-corruption contract of DecodeInto/Decode.
    FBD_CHECK(parsed.error == nullptr);
  }
  if (parsed.decoded == 0) {
    return Status::DataLoss(parsed.error);
  }
  const size_t n = parsed.decoded;
  const std::span<int64_t> deltas = scope.MakeUninitializedSpan<int64_t>(n);
  const std::span<TimePoint> stamps = scope.MakeUninitializedSpan<TimePoint>(n);
  const std::span<double> values = scope.MakeUninitializedSpan<double>(n);
  const simd::Kernels& kernels = simd::Active();
  kernels.prefix_sum_i64(dods.data(), n, 0, deltas.data());
  kernels.prefix_sum_i64(deltas.data(), n, parsed.first_timestamp, stamps.data());
  kernels.prefix_xor_to_doubles(xors.data(), n, parsed.first_value_bits, values.data());

  if (!out.empty() && stamps[0] <= out.end_time()) {
    FBD_CHECK(checked);
    return Status::DataLoss("chunk does not start after preceding points");
  }
  size_t valid = n;
  for (size_t i = 1; i < n; ++i) {
    if (stamps[i] <= stamps[i - 1]) {
      valid = i;
      break;
    }
  }
  out.AppendRun(stamps.first(valid), values.first(valid));
  if (valid < n) {
    FBD_CHECK(checked);
    return Status::DataLoss("non-increasing decoded timestamp");
  }
  if (parsed.error != nullptr) {
    return Status::DataLoss(parsed.error);
  }
  return Status::Ok();
}

Status CompressedTimeSeries::DecodeCore(TimeSeries& out, bool checked) const {
  return DecodeGorillaStream(stream_.bytes().data(), stream_.bytes().size(),
                             stream_.bit_count(), count_, out, checked);
}

void CompressedTimeSeries::DecodeInto(TimeSeries& out) const {
  const Status status = DecodeCore(out, /*checked=*/false);
  FBD_CHECK(status.ok());
}

Status CompressedTimeSeries::TryDecodeInto(TimeSeries& out) const {
  return DecodeCore(out, /*checked=*/true);
}

void CompressedChunkView::DecodeInto(TimeSeries& out) const {
  const Status status =
      DecodeGorillaStream(data_, size_bytes_, bit_count_, count_, out, /*checked=*/false);
  FBD_CHECK(status.ok());
}

Status CompressedChunkView::TryDecodeInto(TimeSeries& out) const {
  return DecodeGorillaStream(data_, size_bytes_, bit_count_, count_, out,
                             /*checked=*/true);
}

CompressedTimeSeries CompressedTimeSeries::FromRaw(std::vector<uint8_t> bytes,
                                                   size_t bit_count, size_t count) {
  CompressedTimeSeries chunk;
  chunk.count_ = count;
  chunk.stream_ = BitWriter(std::move(bytes), bit_count);
  // Timestamp bookkeeping (first/last/delta, XOR block state) is unknown for
  // a raw stream; the chunk supports decoding, not further appends.
  return chunk;
}

}  // namespace fbdetect
