// Detection windows (Fig. 4). At every re-run, FBDetect looks at the most
// recent [historical | analysis | extended] split of a series:
//   * historical window — the baseline for comparison;
//   * analysis window — where regressions are reported;
//   * extended window — used to evaluate whether a regression persists
//     (went-away detection); optional (N/A rows in Table 1).
//
// WindowSpec holds durations. Two extraction forms exist:
//   * WindowView (ExtractWindowView) — zero-copy spans into the series'
//     internal storage, the pipeline's hot path. Spans are invalidated by
//     any mutation of the series (TimeSeriesDatabase::Write / WriteSeries /
//     Expire, TimeSeries::Append / DropBefore), so scans must not
//     interleave with ingestion.
//   * WindowExtract (ExtractWindows) — materialized copies that own their
//     data; the reference implementation, kept for callers that outlive the
//     series or mutate the values.
#ifndef FBDETECT_SRC_TSDB_WINDOW_H_
#define FBDETECT_SRC_TSDB_WINDOW_H_

#include <span>
#include <vector>

#include "src/common/sim_time.h"
#include "src/tsdb/timeseries.h"

namespace fbdetect {

struct WindowSpec {
  Duration historical = Days(10);
  Duration analysis = Hours(4);
  Duration extended = 0;  // 0 = no extended window (N/A).

  Duration Total() const { return historical + analysis + extended; }
};

struct WindowExtract {
  std::vector<double> historical;
  std::vector<double> analysis;
  std::vector<double> extended;
  // analysis followed by extended — the span the short-term detector scans.
  std::vector<double> analysis_plus_extended;
  TimePoint historical_begin = 0;
  TimePoint analysis_begin = 0;
  TimePoint extended_begin = 0;
  TimePoint as_of = 0;
  // Timestamps aligned with analysis_plus_extended (for change-point
  // timestamps in reports).
  std::vector<TimePoint> analysis_timestamps;

  bool HasEnoughData(size_t min_historical, size_t min_analysis) const {
    return historical.size() >= min_historical && analysis.size() >= min_analysis;
  }
};

// Zero-copy equivalent of WindowExtract: spans into the series' internal
// storage (see the lifetime rules in the file comment). Because the three
// windows are adjacent index ranges of one series, `full` and
// `analysis_plus_extended` are single contiguous spans — detectors can scan
// across window boundaries without re-materializing anything.
struct WindowView {
  std::span<const double> historical;
  std::span<const double> analysis;
  std::span<const double> extended;
  std::span<const double> analysis_plus_extended;
  // historical + analysis + extended as one contiguous span.
  std::span<const double> full;
  TimePoint historical_begin = 0;
  TimePoint analysis_begin = 0;
  TimePoint extended_begin = 0;
  TimePoint as_of = 0;
  // Timestamps aligned with analysis_plus_extended.
  std::span<const TimePoint> analysis_timestamps;

  bool HasEnoughData(size_t min_historical, size_t min_analysis) const {
    return historical.size() >= min_historical && analysis.size() >= min_analysis;
  }
};

// Splits `series` at `as_of` (exclusive upper bound) into the three windows:
//   [as_of - total, as_of - analysis - extended) -> historical
//   [as_of - analysis - extended, as_of - extended) -> analysis
//   [as_of - extended, as_of)                     -> extended
WindowExtract ExtractWindows(const TimeSeries& series, TimePoint as_of, const WindowSpec& spec);

// Same split, but as spans into `series`' storage (no copies). Built on
// TimeSeries::SliceIndices; O(log n) and allocation-free.
WindowView ExtractWindowView(const TimeSeries& series, TimePoint as_of, const WindowSpec& spec);

}  // namespace fbdetect

#endif  // FBDETECT_SRC_TSDB_WINDOW_H_
