#include "src/tsdb/timeseries.h"

#include <algorithm>

#include "src/common/check.h"

namespace fbdetect {

TimeSeries::TimeSeries(std::vector<TimePoint> timestamps, std::vector<double> values)
    : timestamps_(std::move(timestamps)), values_(std::move(values)) {
  FBD_CHECK(timestamps_.size() == values_.size());
  FBD_CHECK(std::is_sorted(timestamps_.begin(), timestamps_.end()));
}

void TimeSeries::Append(TimePoint timestamp, double value) {
  FBD_CHECK(TryAppend(timestamp, value));
}

bool TimeSeries::TryAppend(TimePoint timestamp, double value) {
  if (!timestamps_.empty() && timestamp <= timestamps_.back()) {
    return false;
  }
  timestamps_.push_back(timestamp);
  values_.push_back(value);
  return true;
}

void TimeSeries::AppendRun(std::span<const TimePoint> timestamps,
                           std::span<const double> values) {
  FBD_CHECK(timestamps.size() == values.size());
  if (timestamps.empty()) {
    return;
  }
  FBD_DCHECK(timestamps_.empty() || timestamps.front() > timestamps_.back());
#ifndef NDEBUG
  for (size_t i = 1; i < timestamps.size(); ++i) {
    FBD_DCHECK(timestamps[i] > timestamps[i - 1]);
  }
#endif
  timestamps_.insert(timestamps_.end(), timestamps.begin(), timestamps.end());
  values_.insert(values_.end(), values.begin(), values.end());
}

TimePoint TimeSeries::start_time() const { return timestamps_.empty() ? 0 : timestamps_.front(); }

TimePoint TimeSeries::end_time() const { return timestamps_.empty() ? 0 : timestamps_.back(); }

std::pair<size_t, size_t> TimeSeries::SliceIndices(TimePoint begin, TimePoint end) const {
  const auto first = std::lower_bound(timestamps_.begin(), timestamps_.end(), begin);
  const auto last = std::lower_bound(first, timestamps_.end(), end);
  return {static_cast<size_t>(first - timestamps_.begin()),
          static_cast<size_t>(last - timestamps_.begin())};
}

TimeSeries TimeSeries::Slice(TimePoint begin, TimePoint end) const {
  const auto [first, last] = SliceIndices(begin, end);
  TimeSeries out;
  out.timestamps_.assign(timestamps_.begin() + static_cast<long>(first),
                         timestamps_.begin() + static_cast<long>(last));
  out.values_.assign(values_.begin() + static_cast<long>(first),
                     values_.begin() + static_cast<long>(last));
  return out;
}

std::vector<double> TimeSeries::ValuesBetween(TimePoint begin, TimePoint end) const {
  const auto [first, last] = SliceIndices(begin, end);
  return std::vector<double>(values_.begin() + static_cast<long>(first),
                             values_.begin() + static_cast<long>(last));
}

TimeSeries TimeSeries::Resample(Duration bucket_width) const {
  FBD_CHECK(bucket_width > 0);
  TimeSeries out;
  if (empty()) {
    return out;
  }
  size_t i = 0;
  while (i < timestamps_.size()) {
    // Bucket containing timestamps_[i], aligned to the epoch.
    const TimePoint bucket_start = timestamps_[i] / bucket_width * bucket_width;
    const TimePoint bucket_end = bucket_start + bucket_width;
    double sum = 0.0;
    size_t count = 0;
    while (i < timestamps_.size() && timestamps_[i] < bucket_end) {
      sum += values_[i];
      ++count;
      ++i;
    }
    out.Append(bucket_start, sum / static_cast<double>(count));
  }
  return out;
}

void TimeSeries::DropBefore(TimePoint cutoff) {
  const auto first = std::lower_bound(timestamps_.begin(), timestamps_.end(), cutoff);
  const size_t keep_from = static_cast<size_t>(first - timestamps_.begin());
  if (keep_from == 0) {
    return;
  }
  timestamps_.erase(timestamps_.begin(), timestamps_.begin() + static_cast<long>(keep_from));
  values_.erase(values_.begin(), values_.begin() + static_cast<long>(keep_from));
}

void TimeSeries::Clear() {
  timestamps_.clear();
  values_.clear();
}

void TimeSeries::Reserve(size_t capacity) {
  timestamps_.reserve(capacity);
  values_.reserve(capacity);
}

}  // namespace fbdetect
