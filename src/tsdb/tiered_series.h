// Two-tier storage for one time series: cold history sealed into
// Gorilla-compressed chunks, plus a raw mutable tail that recent writes and
// the zero-copy scan path (ScanView / WindowView) operate on directly.
//
// Invariants:
//   - Every sealed point is strictly older than every tail point.
//   - Chunks are ordered; chunk timestamps never overlap.
//   - Sealed chunks are immutable except for DropBefore (retention), which
//     drops whole chunks and re-encodes at most the one straddling chunk.
//   - Appends go to the tail only; SealBefore moves tail points into chunks.
//
// Because the Gorilla round trip is bit-exact, materializing a tiered series
// yields the byte-identical TimeSeries the raw path would have produced —
// tiering on/off cannot change detection output.
#ifndef FBDETECT_SRC_TSDB_TIERED_SERIES_H_
#define FBDETECT_SRC_TSDB_TIERED_SERIES_H_

#include <cstddef>
#include <vector>

#include "src/common/sim_time.h"
#include "src/common/status.h"
#include "src/tsdb/gorilla.h"
#include "src/tsdb/timeseries.h"

namespace fbdetect {

// Fate of one ingested point. Rejections are data errors (dirty telemetry:
// retransmits, clock resets, delayed buffers), not programmer errors — the
// database counts them per series instead of aborting.
enum class AppendOutcome {
  kAppended = 0,
  kDuplicate,    // Timestamp equals the newest stored point.
  kOutOfOrder,   // Timestamp precedes the newest stored point.
};

class TieredSeries {
 public:
  // `seal_chunk_points`: target points per sealed chunk; SealBefore keeps
  // appending to the newest chunk until it reaches this size.
  explicit TieredSeries(size_t seal_chunk_points = 1024)
      : seal_chunk_points_(seal_chunk_points) {}

  // Appends to the tail; `timestamp` must be strictly after every stored
  // point, sealed or not.
  void Append(TimePoint timestamp, double value);

  // Recoverable form: classifies instead of aborting when `timestamp` is not
  // strictly after the newest stored point. Nothing is stored on rejection.
  AppendOutcome TryAppend(TimePoint timestamp, double value);

  size_t size() const { return sealed_points_ + tail_.size(); }
  bool empty() const { return size() == 0; }
  size_t sealed_points() const { return sealed_points_; }
  size_t sealed_bytes() const;
  size_t chunk_count() const { return chunks_.size(); }

  // The raw mutable tail. When TailCovers(begin) holds, scanning the tail
  // alone is exact and zero-copy.
  const TimeSeries& tail() const { return tail_; }

  // True if every point at or after `begin` lives in the tail (no sealed
  // chunk overlaps [begin, inf)).
  bool TailCovers(TimePoint begin) const;

  // Seals tail points strictly older than `boundary` into compressed chunks.
  void SealBefore(TimePoint boundary);

  // Appends every stored point in order into `out` (which the caller has
  // Clear()ed or whose last point precedes this series).
  void MaterializeAll(TimeSeries& out) const;

  // Like MaterializeAll but skips chunks that end before `begin`. Decoding is
  // chunk-granular: the result may start earlier than `begin` (never later),
  // which window extraction tolerates.
  void MaterializeFrom(TimePoint begin, TimeSeries& out) const;

  // Recoverable forms: a corrupt sealed chunk yields kDataLoss (with `out`
  // holding the points decoded so far) instead of aborting. The non-Try forms
  // above FBD_CHECK on these, which is right for chunks this process encoded;
  // the Try forms are for deserialized or otherwise untrusted storage.
  Status TryMaterializeAll(TimeSeries& out) const;
  Status TryMaterializeFrom(TimePoint begin, TimeSeries& out) const;

  // Retention: drops all points strictly older than `cutoff`. Whole chunks
  // before the cutoff are freed; a chunk straddling it is decoded, trimmed,
  // and re-encoded.
  void DropBefore(TimePoint cutoff);

 private:
  struct Chunk {
    CompressedTimeSeries data;
    TimePoint first = 0;
    TimePoint last = 0;
  };

  size_t seal_chunk_points_;
  std::vector<Chunk> chunks_;
  size_t sealed_points_ = 0;
  TimeSeries tail_;
};

}  // namespace fbdetect

#endif  // FBDETECT_SRC_TSDB_TIERED_SERIES_H_
