// Tiered storage for one time series: cold history sealed into
// Gorilla-compressed chunks, plus a raw mutable tail that recent writes and
// the zero-copy scan path (ScanView / WindowView) operate on directly.
//
// With the durable tier enabled (TsdbOptions::durable), sealed chunks gain a
// third state: persisted to a per-shard memory-mapped chunk file and evicted
// from heap. A non-resident chunk keeps only its location in the file
// (offset/len/bit_count) and its range; readback decodes the mapped payload
// in place through CompressedChunkView — page-cache-served, no heap copy.
//
// Invariants:
//   - Every sealed point is strictly older than every tail point.
//   - Chunks are ordered; chunk timestamps never overlap.
//   - Sealed chunks are immutable except for DropBefore (retention), which
//     drops whole chunks and re-encodes at most the one straddling chunk.
//   - Appends go to the tail only; SealBefore moves tail points into chunks.
//   - A chunk is evictable only once every point in it is durable
//     (durable_count == count); eviction never loses data.
//
// Because the Gorilla round trip is bit-exact — for resident chunks and for
// mapped payloads alike — materializing a tiered series yields the
// byte-identical TimeSeries the raw path would have produced: tiering and
// the disk tier on/off cannot change detection output.
#ifndef FBDETECT_SRC_TSDB_TIERED_SERIES_H_
#define FBDETECT_SRC_TSDB_TIERED_SERIES_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "src/common/sim_time.h"
#include "src/common/status.h"
#include "src/tsdb/gorilla.h"
#include "src/tsdb/timeseries.h"

namespace fbdetect {

// Fate of one ingested point. Rejections are data errors (dirty telemetry:
// retransmits, clock resets, delayed buffers), not programmer errors — the
// database counts them per series instead of aborting.
enum class AppendOutcome {
  kAppended = 0,
  kDuplicate,    // Timestamp equals the newest stored point.
  kOutOfOrder,   // Timestamp precedes the newest stored point.
};

// Where non-resident chunk payloads come from: in production, the owning
// shard's ChunkStore (src/tsdb/chunk_store.h) behind a thin adapter. Spans
// returned must stay valid for the source's lifetime (the chunk store never
// unmaps old mapping generations, which is what makes this safe to call from
// concurrent scan threads).
class ChunkPayloadSource {
 public:
  virtual ~ChunkPayloadSource() = default;
  virtual std::span<const uint8_t> ChunkPayload(uint64_t offset, uint32_t len) = 0;
};

class TieredSeries {
 public:
  // Durable-tier metadata for one sealed chunk, exposed so the database can
  // drive persistence and eviction without knowing chunk internals.
  struct ChunkInfo {
    TimePoint first = 0;
    TimePoint last = 0;
    uint32_t count = 0;          // Points in the chunk.
    uint32_t durable_count = 0;  // Points covered by the last persist.
    bool resident = false;       // Heap-resident encoded copy present.
    uint64_t store_offset = 0;   // Valid when durable_count > 0.
    uint32_t store_len = 0;
    uint64_t store_bit_count = 0;
  };

  // `seal_chunk_points`: target points per sealed chunk; SealBefore keeps
  // appending to the newest chunk until it reaches this size.
  explicit TieredSeries(size_t seal_chunk_points = 1024)
      : seal_chunk_points_(seal_chunk_points) {}

  // Appends to the tail; `timestamp` must be strictly after every stored
  // point, sealed or not.
  void Append(TimePoint timestamp, double value);

  // Recoverable form: classifies instead of aborting when `timestamp` is not
  // strictly after the newest stored point. Nothing is stored on rejection.
  AppendOutcome TryAppend(TimePoint timestamp, double value);

  size_t size() const { return sealed_points_ + tail_.size(); }
  bool empty() const { return size() == 0; }
  size_t sealed_points() const { return sealed_points_; }
  size_t sealed_bytes() const;
  size_t resident_sealed_bytes() const;
  size_t chunk_count() const { return chunks_.size(); }

  // The raw mutable tail. When TailCovers(begin) holds, scanning the tail
  // alone is exact and zero-copy.
  const TimeSeries& tail() const { return tail_; }

  // True if every point at or after `begin` lives in the tail (no sealed
  // chunk overlaps [begin, inf)).
  bool TailCovers(TimePoint begin) const;

  // Seals tail points strictly older than `boundary` into compressed chunks.
  void SealBefore(TimePoint boundary);

  // Appends every stored point in order into `out` (which the caller has
  // Clear()ed or whose last point precedes this series). `mapped_decodes`,
  // when non-null, is incremented once per non-resident chunk decoded from
  // the mapped store.
  void MaterializeAll(TimeSeries& out, size_t* mapped_decodes = nullptr) const;

  // Like MaterializeAll but skips chunks that end before `begin`. Decoding is
  // chunk-granular: the result may start earlier than `begin` (never later),
  // which window extraction tolerates.
  void MaterializeFrom(TimePoint begin, TimeSeries& out,
                       size_t* mapped_decodes = nullptr) const;

  // Recoverable forms: a corrupt sealed chunk yields kDataLoss (with `out`
  // holding the points decoded so far) instead of aborting. The non-Try forms
  // above FBD_CHECK on these, which is right for chunks this process encoded;
  // the Try forms are for deserialized or otherwise untrusted storage —
  // including mapped payloads that survived a crash/recovery cycle.
  Status TryMaterializeAll(TimeSeries& out, size_t* mapped_decodes = nullptr) const;
  Status TryMaterializeFrom(TimePoint begin, TimeSeries& out,
                            size_t* mapped_decodes = nullptr) const;

  // Retention: drops all points strictly older than `cutoff`. Whole chunks
  // before the cutoff are freed; a chunk straddling it is decoded (from heap
  // or the mapped store), trimmed, and re-encoded resident with
  // durable_count reset (it must be re-persisted before it can be evicted
  // again).
  void DropBefore(TimePoint cutoff);

  // --- Durable tier (driven by TimeSeriesDatabase; see chunk_store.h) ---

  // Source for non-resident chunk payloads; must be set (and stay alive)
  // before any chunk is restored non-resident or evicted.
  void set_chunk_source(ChunkPayloadSource* source) { chunk_source_ = source; }

  // Recovery: installs one persisted chunk, non-resident, in file order.
  // Re-persisted chunks (grown by a later seal, or trimmed by retention and
  // re-encoded) appear later in the file and supersede what they overlap:
  // previously restored chunks whose range intersects the incoming record
  // are popped. Only valid before any tail appends for this series.
  void RestoreSealedChunk(uint64_t store_offset, uint32_t store_len,
                          uint64_t store_bit_count, uint32_t count, TimePoint first,
                          TimePoint last);

  ChunkInfo GetChunkInfo(size_t index) const;

  // True when chunk `index` holds points the store has not seen (new, grown,
  // or trimmed-and-re-encoded chunks).
  bool ChunkNeedsPersist(size_t index) const;

  // Encoded stream parts of a resident chunk, for persistence.
  const CompressedTimeSeries& ChunkData(size_t index) const;

  // Records a completed persist of chunk `index` covering all current points.
  void MarkChunkDurable(size_t index, uint64_t store_offset, uint32_t store_len,
                        uint64_t store_bit_count);

  // Drops the heap copy of a fully durable resident chunk; returns the heap
  // bytes freed. Readback will decode from the mapped store.
  size_t EvictChunk(size_t index);

 private:
  struct Chunk {
    CompressedTimeSeries data;   // Empty when !resident.
    TimePoint first = 0;
    TimePoint last = 0;
    uint32_t count = 0;
    uint32_t durable_count = 0;
    bool resident = true;
    uint64_t store_offset = 0;
    uint32_t store_len = 0;
    uint64_t store_bit_count = 0;
  };

  Status DecodeChunkInto(const Chunk& chunk, TimeSeries& out,
                         size_t* mapped_decodes) const;

  size_t seal_chunk_points_;
  std::vector<Chunk> chunks_;
  size_t sealed_points_ = 0;
  TimeSeries tail_;
  ChunkPayloadSource* chunk_source_ = nullptr;
};

}  // namespace fbdetect

#endif  // FBDETECT_SRC_TSDB_TIERED_SERIES_H_
