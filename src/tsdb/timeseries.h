// A time series: timestamps (ascending) plus values. Supports appends,
// window slicing, and alignment utilities. Values are stored densely; series
// produced by the fleet simulator are regularly spaced, but the API does not
// require it.
#ifndef FBDETECT_SRC_TSDB_TIMESERIES_H_
#define FBDETECT_SRC_TSDB_TIMESERIES_H_

#include <span>
#include <vector>

#include "src/common/sim_time.h"

namespace fbdetect {

class TimeSeries {
 public:
  TimeSeries() = default;
  TimeSeries(std::vector<TimePoint> timestamps, std::vector<double> values);

  // Appends a point; `timestamp` must be strictly after the last one.
  void Append(TimePoint timestamp, double value);

  // Recoverable form for dirty telemetry: appends and returns true when
  // `timestamp` is strictly after the last stored point, returns false (and
  // stores nothing) otherwise. Ingest paths use this to drop out-of-order or
  // duplicate points instead of aborting.
  bool TryAppend(TimePoint timestamp, double value);

  // Bulk append of a run the CALLER has already validated: `timestamps` must
  // be strictly increasing and start strictly after end_time(). The batch
  // decode path (Gorilla chunks, tiered tails) uses this to replace
  // per-point bounds checks with one boundary check plus two memcpy-class
  // inserts. Validated with FBD_DCHECK only — hot path.
  void AppendRun(std::span<const TimePoint> timestamps, std::span<const double> values);

  size_t size() const { return timestamps_.size(); }
  bool empty() const { return timestamps_.empty(); }

  const std::vector<TimePoint>& timestamps() const { return timestamps_; }
  const std::vector<double>& values() const { return values_; }
  std::span<const double> value_span() const { return values_; }

  TimePoint start_time() const;  // 0 if empty.
  TimePoint end_time() const;    // 0 if empty.

  // Points with begin <= t < end, as a new series.
  TimeSeries Slice(TimePoint begin, TimePoint end) const;

  // Values with begin <= t < end (copy; spans into internal storage are
  // available via SliceIndices for zero-copy paths).
  std::vector<double> ValuesBetween(TimePoint begin, TimePoint end) const;

  // Index range [first, last) of points with begin <= t < end.
  std::pair<size_t, size_t> SliceIndices(TimePoint begin, TimePoint end) const;

  // Downsamples into buckets of `bucket_width` seconds by averaging, with
  // bucket timestamps at the bucket start. Useful to compare series of
  // different native resolutions.
  TimeSeries Resample(Duration bucket_width) const;

  // Drops all points strictly older than `cutoff` (retention).
  void DropBefore(TimePoint cutoff);

  // Removes all points; keeps capacity (scratch-buffer reuse on the tiered
  // scan path).
  void Clear();

  void Reserve(size_t capacity);

 private:
  std::vector<TimePoint> timestamps_;
  std::vector<double> values_;
};

}  // namespace fbdetect

#endif  // FBDETECT_SRC_TSDB_TIMESERIES_H_
