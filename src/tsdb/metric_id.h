// Metric identity. FBDetect monitors ~800k time series across hundreds of
// services; each series is identified by (service, metric kind, entity,
// optional metadata). "Entity" is the subroutine name for gCPU metrics, the
// endpoint URL for endpoint metrics, the data type for per-data-type I/O, or
// empty for service-level metrics.
#ifndef FBDETECT_SRC_TSDB_METRIC_ID_H_
#define FBDETECT_SRC_TSDB_METRIC_ID_H_

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

namespace fbdetect {

enum class MetricKind : int {
  kGcpu = 0,         // Relative subroutine CPU from stack-trace samples.
  kCpu,              // Process-level CPU usage.
  kMemory,
  kThroughput,
  kLatency,
  kErrorRate,
  kCoredumpCount,
  kEndpointCost,     // End-to-end aggregated endpoint cost (§3, FrontFaaS).
  kIoPerDataType,    // Per-data-type I/O to a downstream database (§3, TAO).
  kMaxThroughput,    // CT-supply: per-server maximum throughput from load tests.
  kPeakDemand,       // CT-demand: total peak requests across all servers.
  kApplication,      // Free-form application-level metric.
};

// Human-readable kind name ("gcpu", "throughput", ...).
const char* MetricKindName(MetricKind kind);

struct MetricId {
  std::string service;
  MetricKind kind = MetricKind::kCpu;
  std::string entity;    // Subroutine / endpoint / data type; may be empty.
  std::string metadata;  // SetFrameMetadata annotation; may be empty.

  // Allocation-free total order over (service, kind, entity, metadata) —
  // the canonical metric order used by ListMetrics and the pipeline's
  // deterministic survivor merge. (Sorting by ToString() would allocate two
  // strings per comparison.)
  auto operator<=>(const MetricId& other) const = default;
  bool operator==(const MetricId& other) const = default;

  // Canonical string form "service/kind/entity[@metadata]" — this is the
  // "metric ID" whose n-gram similarity SOMDedup and PairwiseDedup use.
  std::string ToString() const;
};

struct MetricIdHash {
  size_t operator()(const MetricId& id) const;
};

// The interned form of a MetricId: each string component replaced by its
// dense SymbolTable handle. This is the key of the sharded storage and the
// currency of the hot write path — hashing it mixes three 32-bit integers
// instead of three heap strings. Symbols are only meaningful relative to the
// SymbolTable (in practice: the TimeSeriesDatabase) that produced them.
struct InternedMetricId {
  uint32_t service = 0;
  MetricKind kind = MetricKind::kCpu;
  uint32_t entity = 0;
  uint32_t metadata = 0;

  bool operator==(const InternedMetricId& other) const = default;
};

struct InternedMetricIdHash {
  size_t operator()(const InternedMetricId& id) const;
};

}  // namespace fbdetect

#endif  // FBDETECT_SRC_TSDB_METRIC_ID_H_
