#include "src/tsdb/tiered_series.h"

#include <utility>

#include "src/common/check.h"

namespace fbdetect {

void TieredSeries::Append(TimePoint timestamp, double value) {
  FBD_CHECK(chunks_.empty() || timestamp > chunks_.back().last);
  tail_.Append(timestamp, value);  // Tail ordering checked by TimeSeries.
}

size_t TieredSeries::sealed_bytes() const {
  size_t bytes = 0;
  for (const Chunk& chunk : chunks_) {
    bytes += chunk.data.byte_size();
  }
  return bytes;
}

bool TieredSeries::TailCovers(TimePoint begin) const {
  return chunks_.empty() || chunks_.back().last < begin;
}

void TieredSeries::SealBefore(TimePoint boundary) {
  const auto [first, split] = tail_.SliceIndices(tail_.start_time(), boundary);
  (void)first;
  if (tail_.empty() || split == 0) {
    return;
  }
  const std::vector<TimePoint>& timestamps = tail_.timestamps();
  const std::vector<double>& values = tail_.values();
  for (size_t i = 0; i < split; ++i) {
    if (chunks_.empty() || chunks_.back().data.size() >= seal_chunk_points_) {
      chunks_.emplace_back();
      chunks_.back().first = timestamps[i];
    }
    Chunk& chunk = chunks_.back();
    chunk.data.Append(timestamps[i], values[i]);
    chunk.last = timestamps[i];
  }
  sealed_points_ += split;
  tail_.DropBefore(boundary);
}

void TieredSeries::MaterializeAll(TimeSeries& out) const {
  for (const Chunk& chunk : chunks_) {
    chunk.data.DecodeInto(out);
  }
  const std::vector<TimePoint>& timestamps = tail_.timestamps();
  const std::vector<double>& values = tail_.values();
  for (size_t i = 0; i < timestamps.size(); ++i) {
    out.Append(timestamps[i], values[i]);
  }
}

void TieredSeries::MaterializeFrom(TimePoint begin, TimeSeries& out) const {
  for (const Chunk& chunk : chunks_) {
    if (chunk.last < begin) {
      continue;
    }
    chunk.data.DecodeInto(out);
  }
  const std::vector<TimePoint>& timestamps = tail_.timestamps();
  const std::vector<double>& values = tail_.values();
  for (size_t i = 0; i < timestamps.size(); ++i) {
    out.Append(timestamps[i], values[i]);
  }
}

void TieredSeries::DropBefore(TimePoint cutoff) {
  size_t drop = 0;
  while (drop < chunks_.size() && chunks_[drop].last < cutoff) {
    sealed_points_ -= chunks_[drop].data.size();
    ++drop;
  }
  if (drop > 0) {
    chunks_.erase(chunks_.begin(), chunks_.begin() + static_cast<long>(drop));
  }
  if (!chunks_.empty() && chunks_.front().first < cutoff) {
    // Straddling chunk: decode, trim, re-encode.
    Chunk& chunk = chunks_.front();
    TimeSeries decoded = chunk.data.Decode();
    decoded.DropBefore(cutoff);
    sealed_points_ -= chunk.data.size() - decoded.size();
    CompressedTimeSeries reencoded;
    const std::vector<TimePoint>& timestamps = decoded.timestamps();
    const std::vector<double>& values = decoded.values();
    for (size_t i = 0; i < timestamps.size(); ++i) {
      reencoded.Append(timestamps[i], values[i]);
    }
    chunk.data = std::move(reencoded);
    chunk.first = decoded.start_time();
  }
  tail_.DropBefore(cutoff);
}

}  // namespace fbdetect
