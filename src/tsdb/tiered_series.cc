#include "src/tsdb/tiered_series.h"

#include <limits>
#include <utility>

#include "src/common/check.h"

namespace fbdetect {

void TieredSeries::Append(TimePoint timestamp, double value) {
  FBD_CHECK(TryAppend(timestamp, value) == AppendOutcome::kAppended);
}

AppendOutcome TieredSeries::TryAppend(TimePoint timestamp, double value) {
  const TimePoint newest =
      tail_.empty() ? (chunks_.empty() ? 0 : chunks_.back().last) : tail_.end_time();
  const bool have_points = !tail_.empty() || !chunks_.empty();
  if (have_points && timestamp <= newest) {
    return timestamp == newest ? AppendOutcome::kDuplicate : AppendOutcome::kOutOfOrder;
  }
  tail_.Append(timestamp, value);
  return AppendOutcome::kAppended;
}

size_t TieredSeries::sealed_bytes() const {
  size_t bytes = 0;
  for (const Chunk& chunk : chunks_) {
    bytes += chunk.data.byte_size();
  }
  return bytes;
}

bool TieredSeries::TailCovers(TimePoint begin) const {
  return chunks_.empty() || chunks_.back().last < begin;
}

void TieredSeries::SealBefore(TimePoint boundary) {
  const auto [first, split] = tail_.SliceIndices(tail_.start_time(), boundary);
  (void)first;
  if (tail_.empty() || split == 0) {
    return;
  }
  const std::vector<TimePoint>& timestamps = tail_.timestamps();
  const std::vector<double>& values = tail_.values();
  for (size_t i = 0; i < split; ++i) {
    if (chunks_.empty() || chunks_.back().data.size() >= seal_chunk_points_) {
      chunks_.emplace_back();
      chunks_.back().first = timestamps[i];
    }
    Chunk& chunk = chunks_.back();
    chunk.data.Append(timestamps[i], values[i]);
    chunk.last = timestamps[i];
  }
  sealed_points_ += split;
  tail_.DropBefore(boundary);
}

void TieredSeries::MaterializeAll(TimeSeries& out) const {
  const Status status = TryMaterializeAll(out);
  FBD_CHECK(status.ok());
}

void TieredSeries::MaterializeFrom(TimePoint begin, TimeSeries& out) const {
  const Status status = TryMaterializeFrom(begin, out);
  FBD_CHECK(status.ok());
}

Status TieredSeries::TryMaterializeAll(TimeSeries& out) const {
  return TryMaterializeFrom(std::numeric_limits<TimePoint>::min(), out);
}

Status TieredSeries::TryMaterializeFrom(TimePoint begin, TimeSeries& out) const {
  for (const Chunk& chunk : chunks_) {
    if (chunk.last < begin) {
      continue;
    }
    FBD_RETURN_IF_ERROR(chunk.data.TryDecodeInto(out));
  }
  // The tail is a TimeSeries, so it is internally strictly increasing by
  // invariant; only the seam against the decoded chunks needs checking
  // before the bulk append.
  if (!tail_.empty()) {
    if (!out.empty() && tail_.start_time() <= out.end_time()) {
      return Status::DataLoss("tail does not continue sealed history");
    }
    out.AppendRun(tail_.timestamps(), tail_.values());
  }
  return Status::Ok();
}

void TieredSeries::DropBefore(TimePoint cutoff) {
  size_t drop = 0;
  while (drop < chunks_.size() && chunks_[drop].last < cutoff) {
    sealed_points_ -= chunks_[drop].data.size();
    ++drop;
  }
  if (drop > 0) {
    chunks_.erase(chunks_.begin(), chunks_.begin() + static_cast<long>(drop));
  }
  if (!chunks_.empty() && chunks_.front().first < cutoff) {
    // Straddling chunk: decode, trim, re-encode.
    Chunk& chunk = chunks_.front();
    TimeSeries decoded = chunk.data.Decode();
    decoded.DropBefore(cutoff);
    sealed_points_ -= chunk.data.size() - decoded.size();
    CompressedTimeSeries reencoded;
    const std::vector<TimePoint>& timestamps = decoded.timestamps();
    const std::vector<double>& values = decoded.values();
    for (size_t i = 0; i < timestamps.size(); ++i) {
      reencoded.Append(timestamps[i], values[i]);
    }
    chunk.data = std::move(reencoded);
    chunk.first = decoded.start_time();
  }
  tail_.DropBefore(cutoff);
}

}  // namespace fbdetect
