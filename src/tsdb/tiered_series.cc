#include "src/tsdb/tiered_series.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "src/common/check.h"

namespace fbdetect {

void TieredSeries::Append(TimePoint timestamp, double value) {
  FBD_CHECK(TryAppend(timestamp, value) == AppendOutcome::kAppended);
}

AppendOutcome TieredSeries::TryAppend(TimePoint timestamp, double value) {
  const TimePoint newest =
      tail_.empty() ? (chunks_.empty() ? 0 : chunks_.back().last) : tail_.end_time();
  const bool have_points = !tail_.empty() || !chunks_.empty();
  if (have_points && timestamp <= newest) {
    return timestamp == newest ? AppendOutcome::kDuplicate : AppendOutcome::kOutOfOrder;
  }
  tail_.Append(timestamp, value);
  return AppendOutcome::kAppended;
}

size_t TieredSeries::sealed_bytes() const {
  size_t bytes = 0;
  for (const Chunk& chunk : chunks_) {
    bytes += chunk.resident ? chunk.data.byte_size() : chunk.store_len;
  }
  return bytes;
}

size_t TieredSeries::resident_sealed_bytes() const {
  size_t bytes = 0;
  for (const Chunk& chunk : chunks_) {
    if (chunk.resident) {
      bytes += chunk.data.byte_size();
    }
  }
  return bytes;
}

bool TieredSeries::TailCovers(TimePoint begin) const {
  return chunks_.empty() || chunks_.back().last < begin;
}

void TieredSeries::SealBefore(TimePoint boundary) {
  const auto [first, split] = tail_.SliceIndices(tail_.start_time(), boundary);
  (void)first;
  if (tail_.empty() || split == 0) {
    return;
  }
  const std::vector<TimePoint>& timestamps = tail_.timestamps();
  const std::vector<double>& values = tail_.values();
  for (size_t i = 0; i < split; ++i) {
    // A non-resident newest chunk is immutable (its heap copy is gone), so
    // sealing after an eviction starts a fresh chunk. Chunk boundaries may
    // therefore differ from a RAM-only run, which is fine: boundaries are a
    // storage detail and window extraction slices exact spans either way.
    if (chunks_.empty() || !chunks_.back().resident ||
        chunks_.back().count >= seal_chunk_points_) {
      chunks_.emplace_back();
      chunks_.back().first = timestamps[i];
    }
    Chunk& chunk = chunks_.back();
    chunk.data.Append(timestamps[i], values[i]);
    chunk.last = timestamps[i];
    ++chunk.count;
  }
  sealed_points_ += split;
  tail_.DropBefore(boundary);
}

void TieredSeries::MaterializeAll(TimeSeries& out, size_t* mapped_decodes) const {
  const Status status = TryMaterializeAll(out, mapped_decodes);
  FBD_CHECK(status.ok());
}

void TieredSeries::MaterializeFrom(TimePoint begin, TimeSeries& out,
                                   size_t* mapped_decodes) const {
  const Status status = TryMaterializeFrom(begin, out, mapped_decodes);
  FBD_CHECK(status.ok());
}

Status TieredSeries::TryMaterializeAll(TimeSeries& out, size_t* mapped_decodes) const {
  return TryMaterializeFrom(std::numeric_limits<TimePoint>::min(), out, mapped_decodes);
}

Status TieredSeries::DecodeChunkInto(const Chunk& chunk, TimeSeries& out,
                                     size_t* mapped_decodes) const {
  if (chunk.resident) {
    return chunk.data.TryDecodeInto(out);
  }
  FBD_CHECK(chunk_source_ != nullptr);
  const std::span<const uint8_t> payload =
      chunk_source_->ChunkPayload(chunk.store_offset, chunk.store_len);
  const CompressedChunkView view(payload.data(), payload.size(),
                                 chunk.store_bit_count, chunk.count);
  if (mapped_decodes != nullptr) {
    ++*mapped_decodes;
  }
  return view.TryDecodeInto(out);
}

Status TieredSeries::TryMaterializeFrom(TimePoint begin, TimeSeries& out,
                                        size_t* mapped_decodes) const {
  for (const Chunk& chunk : chunks_) {
    if (chunk.last < begin) {
      continue;
    }
    FBD_RETURN_IF_ERROR(DecodeChunkInto(chunk, out, mapped_decodes));
  }
  // The tail is a TimeSeries, so it is internally strictly increasing by
  // invariant; only the seam against the decoded chunks needs checking
  // before the bulk append.
  if (!tail_.empty()) {
    if (!out.empty() && tail_.start_time() <= out.end_time()) {
      return Status::DataLoss("tail does not continue sealed history");
    }
    out.AppendRun(tail_.timestamps(), tail_.values());
  }
  return Status::Ok();
}

void TieredSeries::DropBefore(TimePoint cutoff) {
  size_t drop = 0;
  while (drop < chunks_.size() && chunks_[drop].last < cutoff) {
    sealed_points_ -= chunks_[drop].count;
    ++drop;
  }
  if (drop > 0) {
    chunks_.erase(chunks_.begin(), chunks_.begin() + static_cast<long>(drop));
  }
  if (!chunks_.empty() && chunks_.front().first < cutoff) {
    // Straddling chunk: decode (from heap or the mapped store), trim,
    // re-encode resident. The trimmed chunk no longer matches what the store
    // holds, so it must be re-persisted before it can be evicted again.
    Chunk& chunk = chunks_.front();
    TimeSeries decoded;
    const Status status = DecodeChunkInto(chunk, decoded, nullptr);
    FBD_CHECK(status.ok());
    decoded.DropBefore(cutoff);
    sealed_points_ -= chunk.count - decoded.size();
    CompressedTimeSeries reencoded;
    const std::vector<TimePoint>& timestamps = decoded.timestamps();
    const std::vector<double>& values = decoded.values();
    for (size_t i = 0; i < timestamps.size(); ++i) {
      reencoded.Append(timestamps[i], values[i]);
    }
    chunk.data = std::move(reencoded);
    chunk.first = decoded.start_time();
    chunk.count = static_cast<uint32_t>(decoded.size());
    chunk.durable_count = 0;
    chunk.resident = true;
  }
  tail_.DropBefore(cutoff);
}

void TieredSeries::RestoreSealedChunk(uint64_t store_offset, uint32_t store_len,
                                      uint64_t store_bit_count, uint32_t count,
                                      TimePoint first, TimePoint last) {
  FBD_CHECK(tail_.empty());
  FBD_CHECK(count > 0);
  // Later records supersede earlier ones they INTERSECT: a chunk grown by a
  // later seal (same first, later last) or trimmed by retention and
  // re-encoded (later first, same last) was re-appended in full, so any
  // earlier record overlapping [first, last] is stale. Only intersecting
  // chunks are removed — a trimmed oldest chunk re-appended after its
  // neighbors must not swallow the later, disjoint ranges — and the incoming
  // chunk is inserted at its sorted position, keeping chunks_ ordered and
  // non-overlapping.
  const auto intersects = [&](const Chunk& c) {
    return c.last >= first && c.first <= last;
  };
  for (const Chunk& c : chunks_) {
    if (intersects(c)) {
      sealed_points_ -= c.count;
    }
  }
  chunks_.erase(std::remove_if(chunks_.begin(), chunks_.end(), intersects),
                chunks_.end());
  Chunk chunk;
  chunk.first = first;
  chunk.last = last;
  chunk.count = count;
  chunk.durable_count = count;
  chunk.resident = false;
  chunk.store_offset = store_offset;
  chunk.store_len = store_len;
  chunk.store_bit_count = store_bit_count;
  const auto at = std::upper_bound(
      chunks_.begin(), chunks_.end(), chunk,
      [](const Chunk& a, const Chunk& b) { return a.first < b.first; });
  chunks_.insert(at, std::move(chunk));
  sealed_points_ += count;
}

TieredSeries::ChunkInfo TieredSeries::GetChunkInfo(size_t index) const {
  FBD_CHECK(index < chunks_.size());
  const Chunk& chunk = chunks_[index];
  ChunkInfo info;
  info.first = chunk.first;
  info.last = chunk.last;
  info.count = chunk.count;
  info.durable_count = chunk.durable_count;
  info.resident = chunk.resident;
  info.store_offset = chunk.store_offset;
  info.store_len = chunk.store_len;
  info.store_bit_count = chunk.store_bit_count;
  return info;
}

bool TieredSeries::ChunkNeedsPersist(size_t index) const {
  FBD_CHECK(index < chunks_.size());
  const Chunk& chunk = chunks_[index];
  return chunk.resident && chunk.count > chunk.durable_count;
}

const CompressedTimeSeries& TieredSeries::ChunkData(size_t index) const {
  FBD_CHECK(index < chunks_.size());
  FBD_CHECK(chunks_[index].resident);
  return chunks_[index].data;
}

void TieredSeries::MarkChunkDurable(size_t index, uint64_t store_offset,
                                    uint32_t store_len, uint64_t store_bit_count) {
  FBD_CHECK(index < chunks_.size());
  Chunk& chunk = chunks_[index];
  FBD_CHECK(chunk.resident);
  chunk.durable_count = chunk.count;
  chunk.store_offset = store_offset;
  chunk.store_len = store_len;
  chunk.store_bit_count = store_bit_count;
}

size_t TieredSeries::EvictChunk(size_t index) {
  FBD_CHECK(index < chunks_.size());
  Chunk& chunk = chunks_[index];
  FBD_CHECK(chunk.resident);
  FBD_CHECK(chunk.durable_count == chunk.count);
  FBD_CHECK(chunk_source_ != nullptr);
  const size_t freed = chunk.data.byte_size();
  chunk.data = CompressedTimeSeries();
  chunk.resident = false;
  return freed;
}

}  // namespace fbdetect
