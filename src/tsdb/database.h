// In-memory time-series database. The fleet simulator and profilers ingest
// points keyed by MetricId; the detection pipeline scans all series of a
// service. A real deployment would back this with a distributed TSDB (Meta
// uses ODS/Gorilla-class storage); the interface is deliberately the subset
// the detectors need.
#ifndef FBDETECT_SRC_TSDB_DATABASE_H_
#define FBDETECT_SRC_TSDB_DATABASE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/sim_time.h"
#include "src/tsdb/metric_id.h"
#include "src/tsdb/timeseries.h"

namespace fbdetect {

class TimeSeriesDatabase {
 public:
  // Appends one point; timestamps per metric must be strictly increasing.
  void Write(const MetricId& id, TimePoint timestamp, double value);

  // Bulk-appends a series (moves it in when the metric is new).
  void WriteSeries(const MetricId& id, TimeSeries series);

  // nullptr when absent.
  const TimeSeries* Find(const MetricId& id) const;

  bool Contains(const MetricId& id) const;

  // All metric IDs, optionally filtered by service (empty = all).
  std::vector<MetricId> ListMetrics(const std::string& service = {}) const;

  // All metric IDs of a given kind within a service.
  std::vector<MetricId> ListMetricsOfKind(const std::string& service, MetricKind kind) const;

  size_t metric_count() const { return series_.size(); }
  size_t total_points() const;

  // Applies retention: drops points older than `cutoff` and removes metrics
  // that become empty.
  void Expire(TimePoint cutoff);

  // Bumped on every mutation (Write/WriteSeries/Expire). Readers that cache
  // derived data — e.g. the pipeline's sorted per-service metric list — or
  // that hold zero-copy spans into series storage compare generations to
  // decide whether their view is still valid.
  uint64_t generation() const { return generation_; }

 private:
  std::unordered_map<MetricId, TimeSeries, MetricIdHash> series_;
  uint64_t generation_ = 0;
};

}  // namespace fbdetect

#endif  // FBDETECT_SRC_TSDB_DATABASE_H_
