// In-memory time-series database. The fleet simulator and profilers ingest
// points keyed by MetricId; the detection pipeline scans all series of a
// service. A real deployment would back this with a distributed TSDB (Meta
// uses ODS/Gorilla-class storage); the interface is deliberately the subset
// the detectors need.
//
// Storage layout (PR 2): metric identity strings are interned into a
// SymbolTable so the hot write path keys on a 16-byte InternedMetricId; the
// series map is split into lock-striped shards so fleet ingestion scales
// across threads; and each series is a TieredSeries — Gorilla-compressed
// sealed history plus a raw mutable tail that preserves the zero-copy
// ScanView contract for the detection windows.
//
// Thread-safety: concurrent writers are safe (per-shard mutexes; the symbol
// table has its own lock). Readers that hold raw pointers or spans into
// series storage (Find, SeriesForScan, ScanView) must not run concurrently
// with writers — same single-writer-or-many-readers phase discipline as
// PR 1, now enforced per scan phase rather than per call.
#ifndef FBDETECT_SRC_TSDB_DATABASE_H_
#define FBDETECT_SRC_TSDB_DATABASE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/sim_time.h"
#include "src/common/status.h"
#include "src/tsdb/chunk_store.h"
#include "src/tsdb/metric_id.h"
#include "src/tsdb/symbol_table.h"
#include "src/tsdb/tiered_series.h"
#include "src/tsdb/timeseries.h"
#include "src/tsdb/wal.h"

namespace fbdetect {

class TimeSeriesDatabase;

// Observer of accepted appends, the hook the streaming detector state hangs
// off the write path. Called while the owning shard's mutex is held, once
// per (series, flush) with the run of points that were actually stored —
// rejected duplicates/out-of-order points are never reported. The spans
// point into the series' raw tail and are valid only for the duration of
// the call. Implementations must be cheap and must not call back into the
// database (the shard lock is held).
class AppendObserver {
 public:
  virtual ~AppendObserver() = default;
  virtual void OnAppend(const InternedMetricId& id,
                        std::span<const TimePoint> timestamps,
                        std::span<const double> values) = 0;
};

// Durable storage tier (DESIGN.md §15). When `directory` is set, every shard
// gets a group-commit write-ahead log and a memory-mapped chunk file there;
// opening the database replays both into a consistent state (symbols first,
// then chunks, then each shard's log). Durability is group-granular: points
// buffered since the last group commit are lost on a crash, never torn.
struct DurableOptions {
  // Empty = durable tier disabled.
  std::string directory;
  // Heap budget for resident sealed-chunk bytes across all shards. After each
  // durable seal, fully persisted chunks are evicted oldest-first until
  // resident sealed bytes fit; readback decodes the mapped chunk file.
  // 0 = never evict.
  size_t resident_sealed_budget_bytes = 0;
  // Pending WAL bytes that trigger an automatic group commit on the write
  // path. Commits also happen at every seal (checkpoint) and on SyncDurable.
  size_t group_commit_bytes = 256 * 1024;
  // fsync after commits and chunk persists. Tests that only exercise logical
  // recovery (clean close + reopen) can turn this off for speed.
  bool fsync = true;

  bool enabled() const { return !directory.empty(); }
};

struct TsdbOptions {
  // Number of lock-striped shards; rounded up to a power of two. 1 gives the
  // unsharded behavior (useful for baselines and small tests).
  size_t shard_count = 16;
  // Target points per sealed Gorilla chunk.
  size_t seal_chunk_points = 1024;
  // Heap budget for Find()'s lazily materialized full-series caches on sealed
  // entries. When the accounted bytes exceed the budget at a write-phase
  // boundary, all materialized caches are dropped (they are rebuilt on the
  // next Find). 0 = unbounded. See Find() for the pointer-validity contract.
  size_t materialized_budget_bytes = 0;
  DurableOptions durable;
};

// A batch of points staged for one Commit() into the database. Points are
// staged into one column per metric; the id -> column index survives Commit,
// so a long-lived batch (one ingest worker ticking a service) pays the
// id lookup against a small hot map and the database-side hash lookup only
// once per series per flush. Columns are grouped by destination shard, so
// Commit locks each touched shard exactly once regardless of batch size.
// Per-metric timestamps must be added in increasing order (the fleet
// simulator's tick loop does this naturally). Not thread-safe; each ingest
// worker owns its own batch.
class WriteBatch {
 public:
  explicit WriteBatch(TimeSeriesDatabase* db);

  // Stages one point. The MetricId form interns the identity first; callers
  // on the hot path should intern once and use the InternedMetricId form.
  void Add(const InternedMetricId& id, TimePoint timestamp, double value);
  void Add(const MetricId& id, TimePoint timestamp, double value);

  // Applies all staged points and clears the staged data (the id -> column
  // mapping and vector capacities are retained for the next fill).
  void Commit();

  // Invokes `fn` once per staged column with mutable access to its parallel
  // timestamp/value vectors (same length before and, enforced, after). The
  // fault-injection harness uses this to corrupt staged telemetry between
  // generation and Commit; point_count() is recomputed afterwards. Columns
  // whose vectors `fn` reorders or de-dupes are the caller's problem — the
  // database classifies each point at Apply time anyway.
  void MutateColumns(
      const std::function<void(const InternedMetricId&, std::vector<TimePoint>&,
                               std::vector<double>&)>& fn);

  size_t point_count() const { return point_count_; }
  bool empty() const { return point_count_ == 0; }
  TimeSeriesDatabase* db() const { return db_; }

 private:
  friend class TimeSeriesDatabase;

  struct Column {
    InternedMetricId id;
    std::vector<TimePoint> timestamps;
    std::vector<double> values;
  };

  TimeSeriesDatabase* db_;
  std::vector<Column> columns_;
  // Column indices grouped by destination shard.
  std::vector<std::vector<uint32_t>> per_shard_;
  std::unordered_map<InternedMetricId, uint32_t, InternedMetricIdHash> column_index_;
  size_t point_count_ = 0;
};

class TimeSeriesDatabase {
 public:
  struct MemoryStats {
    size_t raw_points = 0;     // Points in mutable tails.
    size_t sealed_points = 0;  // Points in Gorilla chunks.
    size_t sealed_bytes = 0;   // Compressed bytes of sealed history (all tiers).
    // Split of sealed_bytes by tier: heap-resident encoded chunks vs chunks
    // evicted to the memory-mapped chunk file (page cache, not heap).
    size_t resident_sealed_bytes = 0;
    size_t mapped_sealed_bytes = 0;
    // Heap bytes held by Find()'s materialized full-series caches.
    size_t materialized_bytes = 0;
    // What the sealed points would occupy as raw (timestamp, value) pairs.
    size_t sealed_raw_bytes() const { return sealed_points * 16; }
  };

  // Durable-tier observability. All counters are runtime telemetry (they
  // depend on budgets, commit batching, and crash history, not on detection
  // inputs); the pipeline mirrors them with kRuntime stability.
  struct DurableStats {
    bool enabled = false;
    uint64_t group_commits = 0;         // WAL frames written (all shards).
    uint64_t checkpoint_rewrites = 0;   // WAL checkpoint rewrites.
    uint64_t log_bytes = 0;             // Current WAL bytes (incl. symbols log).
    uint64_t log_bytes_written = 0;     // WAL bytes written since open.
    uint64_t chunk_file_bytes = 0;      // Current chunk-file bytes.
    uint64_t chunks_persisted = 0;      // Chunk records appended since open.
    uint64_t chunks_evicted = 0;        // Sealed chunks evicted from heap.
    uint64_t evicted_bytes = 0;         // Heap bytes freed by eviction.
    uint64_t mapped_readback_decodes = 0;  // Non-resident chunk decodes.
    uint64_t materialized_evictions = 0;   // Find()-cache budget sweeps.
    // Recovery: what the constructor's replay found.
    uint64_t recoveries = 0;            // 1 if this open replayed prior state.
    uint64_t recovered_points = 0;      // Points replayed from WALs.
    uint64_t recovered_chunks = 0;      // Chunk records restored.
    uint64_t recovered_truncated_bytes = 0;  // Torn-tail bytes dropped.
    TimePoint last_seal_boundary = 0;   // From the newest checkpoint.
    TimePoint last_drop_cutoff = 0;     // From the newest retention record.
    // Durable I/O failures observed (write/fsync/rename/open). The first one
    // flips `degraded`: the tier stops issuing durable I/O and the database
    // keeps running memory-only (see durable_degraded()).
    uint64_t io_errors = 0;
    bool degraded = false;
  };
  DurableStats durable_stats() const;

  // True once a durable-tier I/O failure has switched the database to
  // memory-only tiering: no further WAL commits, chunk persists, checkpoint
  // rewrites, or budget evictions. Already-evicted chunks stay readable (the
  // chunk file's mappings outlive the failure); everything newer simply stays
  // on the heap. Ingest, scans, seals, and retention all keep working —
  // losing the durable tier must not take down detection.
  bool durable_degraded() const {
    return durable_degraded_.load(std::memory_order_relaxed);
  }

  // Read-path observability: how scans are actually served by the tiered
  // storage. One relaxed atomic increment per lookup (not per point), so the
  // accounting is always on. All values count events the reader issued, not
  // scheduling artifacts — the pipeline's per-series scan issues exactly one
  // SeriesForScan per series per re-run regardless of scan_threads, so these
  // are deterministic telemetry.
  struct ScanStats {
    uint64_t tail_hits = 0;        // SeriesForScan served zero-copy from the tail.
    uint64_t sealed_decodes = 0;   // SeriesForScan decoded sealed chunks.
    uint64_t decode_failures = 0;  // Recoverable sealed-chunk decode errors.
    uint64_t misses = 0;           // SeriesForScan on an absent series.
    uint64_t list_cache_hits = 0;  // ListMetrics served from the cache.
    uint64_t list_cache_misses = 0;  // ListMetrics re-enumerated >= 1 shard.
    // Shards actually re-enumerated by ListMetrics misses. A miss after one
    // shard moved refreshes 1 shard, not shard_count — this is what makes
    // the incremental cache observable (and testable).
    uint64_t list_cache_shard_refreshes = 0;
  };
  ScanStats scan_stats() const;

  // Fleet telemetry is dirty: retransmitted buffers duplicate points, delayed
  // buffers arrive behind newer data. The write path classifies and counts
  // such points per shard (and per series) instead of aborting the process.
  struct IngestStats {
    uint64_t accepted = 0;
    uint64_t dropped_duplicate = 0;
    uint64_t dropped_out_of_order = 0;
    uint64_t dropped() const { return dropped_duplicate + dropped_out_of_order; }
  };

  TimeSeriesDatabase() : TimeSeriesDatabase(TsdbOptions{}) {}
  // With durable options set, the constructor recovers prior on-disk state:
  // symbols log, then each shard's chunk file, then each shard's WAL (torn
  // tails truncated). Recovered state is always an exact prefix of committed
  // groups. Durable I/O failures never abort: the tier degrades to
  // memory-only (durable_degraded()), counted in DurableStats::io_errors.
  explicit TimeSeriesDatabase(const TsdbOptions& options);
  ~TimeSeriesDatabase();
  TimeSeriesDatabase(const TimeSeriesDatabase&) = delete;
  TimeSeriesDatabase& operator=(const TimeSeriesDatabase&) = delete;

  // --- Identity interning ---

  // Interns all string components of `id` (creating symbols on first sight).
  InternedMetricId Intern(const MetricId& id);
  // Read-only interning: nullopt if any component string has never been
  // interned (the series cannot exist). Never creates symbols, so it is safe
  // on the read path.
  std::optional<InternedMetricId> TryIntern(const MetricId& id) const;
  // Recovers the canonical MetricId of an interned key.
  MetricId Resolve(const InternedMetricId& id) const;
  const SymbolTable& symbols() const { return symbols_; }

  // --- Ingestion ---

  // Appends one point. A timestamp at or before the newest stored point of
  // its series is dropped and counted (see IngestStats), never stored.
  void Write(const MetricId& id, TimePoint timestamp, double value);
  void Write(const InternedMetricId& id, TimePoint timestamp, double value);

  // Bulk-appends a series.
  void WriteSeries(const MetricId& id, TimeSeries series);

  // Applies a staged batch: each touched shard is locked once and its
  // generation bumped once. Called by WriteBatch::Commit.
  void Apply(WriteBatch& batch);

  // Registers (or clears, with nullptr) the single append observer. Must be
  // called while no writer is active — same phase discipline as the scan
  // readers; the pointer is read by writers under their shard lock without
  // further synchronization.
  void SetAppendObserver(AppendObserver* observer) { append_observer_ = observer; }
  AppendObserver* append_observer() const { return append_observer_; }

  // Aggregate accept/drop counters across all shards.
  IngestStats ingest_stats() const;

  // Invokes `fn(id, dropped_duplicate, dropped_out_of_order)` for every
  // series that has dropped at least one point, in canonical MetricId order.
  // The pipeline folds these into its quarantine report.
  void ForEachIngestReject(
      const std::function<void(const MetricId&, uint64_t, uint64_t)>& fn) const;

  // --- Lookup ---

  // nullptr when absent. For a series with sealed history this returns a
  // lazily materialized (decoded) full series, rebuilt only after mutations;
  // for a tail-only series it returns the tail storage directly (zero-copy).
  // Pointer validity: until the metric is erased by Expire, and — for sealed
  // entries when materialized_budget_bytes is set — until the next
  // write-phase boundary (Write/Apply/SealBefore/Expire), which may sweep
  // over-budget materialized caches. Sweeps never run concurrently with
  // readers (phase discipline), so a pointer obtained in a read phase stays
  // valid for that phase.
  const TimeSeries* Find(const MetricId& id) const;
  const TimeSeries* Find(const InternedMetricId& id) const;

  bool Contains(const MetricId& id) const;
  bool Contains(const InternedMetricId& id) const;

  // Scan-path lookup for points in [begin, inf). If the raw tail covers the
  // range, returns the tail directly — zero-copy, identical to the PR 1 fast
  // path. Otherwise decodes the overlapping sealed chunks into `scratch`
  // (clearing it first; chunk-granular, so the result may extend earlier
  // than `begin`) and returns &scratch.
  // A corrupt sealed chunk aborts (FBD_CHECK) in the two-argument forms —
  // this process encoded the chunk, so corruption is a programmer error.
  // Passing `status` opts into the recoverable path for untrusted storage:
  // decode failure sets *status and returns nullptr instead of aborting.
  const TimeSeries* SeriesForScan(const MetricId& id, TimePoint begin,
                                  TimeSeries& scratch, Status* status = nullptr) const;
  const TimeSeries* SeriesForScan(const InternedMetricId& id, TimePoint begin,
                                  TimeSeries& scratch, Status* status = nullptr) const;

  // All metric IDs in canonical order, optionally filtered by service
  // (empty = all). Cached per service behind the per-shard generation
  // counters, so repeated calls between mutations are O(copy).
  std::vector<MetricId> ListMetrics(const std::string& service = {}) const;

  // All metric IDs of a given kind within a service.
  std::vector<MetricId> ListMetricsOfKind(const std::string& service, MetricKind kind) const;

  size_t metric_count() const;
  size_t total_points() const;
  MemoryStats memory_stats() const;
  size_t shard_count() const { return shards_.size(); }

  // Seals all points strictly older than `boundary` into compressed chunks.
  // Invalidates outstanding spans/pointers into the affected tails.
  // With the durable tier on, sealing is also the checkpoint: new/grown
  // chunks are persisted to the chunk file (one fsync per shard), each
  // shard's WAL is rewritten to {retention cutoff, seal boundary, tail
  // snapshots}, and the resident-sealed budget is enforced by evicting fully
  // durable chunks oldest-first.
  void SealBefore(TimePoint boundary);

  // Applies retention: drops points older than `cutoff` and removes metrics
  // that become empty. With the durable tier on, the cutoff is group-
  // committed to every shard's WAL so recovery cannot resurrect dropped
  // points.
  void Expire(TimePoint cutoff);

  // Durable tier: group-commits all buffered WAL records (symbols first) so
  // everything accepted so far survives a crash. No-op when disabled. Also
  // runs on destruction, so a clean close loses nothing.
  void SyncDurable();

  // Bumped on every mutation (Write/Apply/WriteSeries/SealBefore/Expire).
  // Readers that cache derived data — e.g. the pipeline's sorted per-service
  // metric list — or that hold zero-copy spans into series storage compare
  // generations to decide whether their view is still valid. Monotonic
  // (sum of per-shard counters); never changed by reads.
  uint64_t generation() const;

  // Per-series mutation counter: bumped on every stored append, seal, and
  // retention trim of the series; 0 when the series is absent. The
  // generation-gated scan compares this against the version its cached
  // verdict was computed at to decide dirty vs clean.
  uint64_t SeriesVersion(const InternedMetricId& id) const;

 private:
  friend class WriteBatch;

  struct SeriesEntry {
    explicit SeriesEntry(size_t seal_chunk_points) : data(seal_chunk_points) {}
    TieredSeries data;
    // Bumped on every mutation of `data`; invalidates `materialized`.
    uint64_t version = 1;
    // Points rejected by TryAppend for this series (dirty telemetry).
    uint64_t rejected_duplicate = 0;
    uint64_t rejected_out_of_order = 0;
    // Lazily decoded full series for Find() on sealed entries. Guarded by
    // the owning shard's mutex.
    mutable std::unique_ptr<TimeSeries> materialized;
    mutable uint64_t materialized_version = 0;
  };

  struct Shard {
    mutable std::mutex mutex;
    std::atomic<uint64_t> generation{0};
    IngestStats ingest;  // Guarded by `mutex`.
    std::unordered_map<InternedMetricId, SeriesEntry, InternedMetricIdHash> series;
    // Durable tier (null when disabled). Guarded by `mutex` on the write
    // path; the chunk store's Payload() is safe for lock-free readers (see
    // chunk_store.h).
    std::unique_ptr<WriteAheadLog> wal;
    std::unique_ptr<ChunkStore> chunk_store;
  };

  // Per-service ListMetrics cache. Each shard's matching ids are kept as a
  // separately sorted slice stamped with the generation it was built at;
  // a mutation to one shard re-enumerates only that shard, then the slices
  // are k-way merged (already sorted, so no re-sort of the full set).
  struct ListCacheEntry {
    std::vector<uint64_t> shard_generations;
    std::vector<std::vector<MetricId>> per_shard;
    std::vector<MetricId> ids;  // Merge of per_shard, canonical order.
  };

  size_t ShardIndex(const InternedMetricId& id) const {
    return InternedMetricIdHash{}(id) & shard_mask_;
  }

  // Returns the entry for `id` in `shard`, creating it if absent (with the
  // shard's chunk store attached as its payload source). Caller holds the
  // shard mutex.
  SeriesEntry& EntryLocked(Shard& shard, const InternedMetricId& id);

  // Appends one point with reject accounting (shard + per-series counters).
  // Caller holds the shard mutex. Returns true iff the point was stored.
  static bool AppendCounted(Shard& shard, SeriesEntry& entry, TimePoint timestamp,
                            double value);

  // Full decoded view of an entry (cached). Caller holds the shard mutex.
  const TimeSeries* MaterializedLocked(const SeriesEntry& entry) const;

  // Reports the tail suffix [tail_before, tail.size()) — the points a write
  // call just stored — to the append observer and, with the durable tier on,
  // buffers the same suffix into the shard's WAL. Caller holds the shard
  // mutex.
  void NotifyAppendLocked(Shard& shard, const InternedMetricId& id,
                          const SeriesEntry& entry, size_t tail_before);

  // --- Durable tier internals ---

  // Durable tier configured and not degraded by an earlier I/O failure.
  bool DurableActive() const {
    return options_.durable.enabled() &&
           !durable_degraded_.load(std::memory_order_relaxed);
  }

  // Records a durable I/O failure: counts it and, on the first one, flips the
  // database to memory-only tiering (with one stderr warning). Returns
  // status.ok() so call sites read `if (!HandleDurableError(op())) ...`.
  bool HandleDurableError(const Status& status);

  // Opens (and replays) the symbols log, every shard's chunk file, and every
  // shard's WAL. Constructor-only, single-threaded. An I/O failure degrades
  // to memory-only and stops opening (later shards keep null wal/chunk_store;
  // every durable call site tolerates both).
  void OpenDurable();

  // Appends any not-yet-logged symbols to the symbols log and commits it.
  // Must run before committing any shard WAL or chunk file referencing those
  // symbols (symbol records are replayed first on recovery, in interning
  // order, which reproduces identical dense ids). Leaf lock.
  void CommitSymbols();

  // Group-commits the shard's WAL when the pending buffer crossed the
  // group-commit threshold. Caller holds the shard mutex.
  void MaybeGroupCommitLocked(Shard& shard);

  // Evicts fully durable sealed chunks, oldest first across all shards,
  // until resident sealed bytes fit the budget. Write phase only.
  void EnforceSealedBudget();

  // Drops all materialized Find() caches when their accounted bytes exceed
  // the budget. Write phase only.
  void MaybeEvictMaterialized();

  TsdbOptions options_;
  size_t shard_mask_ = 0;
  SymbolTable symbols_;
  std::vector<Shard> shards_;
  AppendObserver* append_observer_ = nullptr;

  // Durable tier (members valid only when options_.durable.enabled()).
  std::unique_ptr<WriteAheadLog> symbols_log_;
  mutable std::mutex symbols_log_mutex_;
  size_t symbols_logged_ = 0;  // Symbols already in the log. Guarded above.
  TimePoint last_seal_boundary_ = 0;   // Write phase only.
  TimePoint last_drop_cutoff_ = 0;     // Write phase only.
  bool have_drop_cutoff_ = false;
  std::atomic<uint64_t> durable_io_errors_{0};
  std::atomic<bool> durable_degraded_{false};
  std::atomic<uint64_t> chunks_evicted_{0};
  std::atomic<uint64_t> evicted_bytes_{0};
  std::atomic<uint64_t> recovered_points_{0};
  std::atomic<uint64_t> recovered_chunks_{0};
  std::atomic<uint64_t> recovered_truncated_bytes_{0};
  std::atomic<uint64_t> recoveries_{0};
  mutable std::atomic<uint64_t> mapped_readback_decodes_{0};
  mutable std::atomic<uint64_t> materialized_bytes_{0};
  std::atomic<uint64_t> materialized_evictions_{0};

  mutable std::mutex list_cache_mutex_;
  mutable std::unordered_map<std::string, ListCacheEntry> list_cache_;

  // ScanStats internals (read-path counters on const methods).
  mutable std::atomic<uint64_t> scan_tail_hits_{0};
  mutable std::atomic<uint64_t> scan_sealed_decodes_{0};
  mutable std::atomic<uint64_t> scan_decode_failures_{0};
  mutable std::atomic<uint64_t> scan_misses_{0};
  mutable std::atomic<uint64_t> list_cache_hits_{0};
  mutable std::atomic<uint64_t> list_cache_misses_{0};
  mutable std::atomic<uint64_t> list_cache_shard_refreshes_{0};
};

}  // namespace fbdetect

#endif  // FBDETECT_SRC_TSDB_DATABASE_H_
