#include "src/tsdb/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>

#include "src/common/check.h"
#include "src/tsdb/durable_io.h"

namespace fbdetect {
namespace {

// Frame header: magic, payload length, CRC32C of the payload.
constexpr uint32_t kFrameMagic = 0x46424C47;  // "FBLG"
constexpr size_t kFrameHeaderBytes = 12;
// A frame longer than this is treated as torn garbage rather than an
// allocation request (a corrupted length field must not OOM recovery).
constexpr uint32_t kMaxFrameBytes = 1u << 30;

enum RecordKind : uint8_t {
  kPoints = 1,
  kDropBefore = 2,
  kSealBoundary = 3,
  kSymbol = 4,
};

struct Crc32cTable {
  std::array<uint32_t, 256> entries{};
  constexpr Crc32cTable() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int k = 0; k < 8; ++k) {
        crc = (crc >> 1) ^ ((crc & 1) ? 0x82F63B78u : 0u);
      }
      entries[i] = crc;
    }
  }
};
constexpr Crc32cTable kCrcTable;

template <typename T>
void PutRaw(std::vector<uint8_t>& out, const T& value) {
  const size_t at = out.size();
  out.resize(at + sizeof(T));
  std::memcpy(out.data() + at, &value, sizeof(T));
}

// Bounds-checked reader over a frame payload.
class RecordReader {
 public:
  RecordReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  bool done() const { return at_ >= size_; }

  template <typename T>
  bool Read(T& value) {
    if (size_ - at_ < sizeof(T)) {
      return false;
    }
    std::memcpy(&value, data_ + at_, sizeof(T));
    at_ += sizeof(T);
    return true;
  }

  const uint8_t* Bytes(size_t count) {
    if (size_ - at_ < count) {
      return nullptr;
    }
    const uint8_t* p = data_ + at_;
    at_ += count;
    return p;
  }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t at_ = 0;
};

Status ErrnoStatus(const char* op, const std::string& path) {
  return Status::Internal(std::string(op) + " failed for " + path + ": " +
                          std::strerror(errno));
}

bool WriteAll(int fd, const uint8_t* data, size_t size) {
  while (size > 0) {
    const ssize_t n = durable_io::Write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    data += n;
    size -= static_cast<size_t>(n);
  }
  return true;
}

// fsyncs the directory containing `path`. An atomic temp+rename replace is
// only durable once the DIRECTORY entry is: without this, a crash right
// after the rename can come back up with the old file contents (the rename
// itself lived only in the page cache), resurrecting log history the
// checkpoint had retired.
Status FsyncParentDirectory(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int fd = durable_io::Open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC, 0);
  if (fd < 0) {
    return ErrnoStatus("open(dir)", dir);
  }
  if (durable_io::Fsync(fd) != 0) {
    const Status status = ErrnoStatus("fsync(dir)", dir);
    ::close(fd);
    return status;
  }
  ::close(fd);
  return Status::Ok();
}

// Dispatches one frame's records; false on a malformed record (which a CRC-
// valid frame should never contain).
bool ReplayFrame(const uint8_t* payload, size_t size,
                 const WriteAheadLog::ReplayHandler& handler, uint64_t& points) {
  RecordReader reader(payload, size);
  std::vector<TimePoint> timestamps;
  std::vector<double> values;
  while (!reader.done()) {
    uint8_t kind = 0;
    if (!reader.Read(kind)) {
      return false;
    }
    switch (kind) {
      case kPoints: {
        InternedMetricId id;
        uint32_t kind_raw = 0;
        uint32_t count = 0;
        if (!reader.Read(id.service) || !reader.Read(kind_raw) ||
            !reader.Read(id.entity) || !reader.Read(id.metadata) ||
            !reader.Read(count)) {
          return false;
        }
        id.kind = static_cast<MetricKind>(kind_raw);
        const uint8_t* data = reader.Bytes(static_cast<size_t>(count) * 16);
        if (data == nullptr) {
          return false;
        }
        timestamps.resize(count);
        values.resize(count);
        for (uint32_t i = 0; i < count; ++i) {
          std::memcpy(&timestamps[i], data + i * 16, 8);
          std::memcpy(&values[i], data + i * 16 + 8, 8);
        }
        points += count;
        if (handler.points) {
          handler.points(id, timestamps, values);
        }
        break;
      }
      case kDropBefore: {
        TimePoint cutoff = 0;
        if (!reader.Read(cutoff)) {
          return false;
        }
        if (handler.drop_before) {
          handler.drop_before(cutoff);
        }
        break;
      }
      case kSealBoundary: {
        TimePoint boundary = 0;
        if (!reader.Read(boundary)) {
          return false;
        }
        if (handler.seal_boundary) {
          handler.seal_boundary(boundary);
        }
        break;
      }
      case kSymbol: {
        uint32_t length = 0;
        if (!reader.Read(length)) {
          return false;
        }
        const uint8_t* data = reader.Bytes(length);
        if (data == nullptr) {
          return false;
        }
        if (handler.symbol) {
          handler.symbol(std::string_view(reinterpret_cast<const char*>(data), length));
        }
        break;
      }
      default:
        return false;
    }
  }
  return true;
}

}  // namespace

uint32_t Crc32c(const uint8_t* data, size_t size, uint32_t seed) {
  uint32_t crc = ~seed;
  for (size_t i = 0; i < size; ++i) {
    crc = (crc >> 8) ^ kCrcTable.entries[(crc ^ data[i]) & 0xff];
  }
  return ~crc;
}

WriteAheadLog::~WriteAheadLog() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

Status WriteAheadLog::Open(const std::string& path, const ReplayHandler& handler,
                           bool fsync) {
  FBD_CHECK(fd_ < 0);
  path_ = path;
  fsync_ = fsync;
  const int fd = durable_io::Open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) {
    return ErrnoStatus("open", path);
  }
  const off_t file_size = ::lseek(fd, 0, SEEK_END);
  if (file_size < 0) {
    ::close(fd);
    return ErrnoStatus("lseek", path);
  }
  std::vector<uint8_t> content(static_cast<size_t>(file_size));
  if (file_size > 0) {
    ssize_t got = ::pread(fd, content.data(), content.size(), 0);
    if (got != file_size) {
      ::close(fd);
      return ErrnoStatus("pread", path);
    }
  }
  // Replay whole valid frames; stop (and truncate) at the first frame whose
  // header or checksum fails — that is the torn tail of an interrupted group
  // commit, not an error.
  size_t valid_end = 0;
  while (content.size() - valid_end >= kFrameHeaderBytes) {
    uint32_t magic = 0;
    uint32_t length = 0;
    uint32_t crc = 0;
    std::memcpy(&magic, content.data() + valid_end, 4);
    std::memcpy(&length, content.data() + valid_end + 4, 4);
    std::memcpy(&crc, content.data() + valid_end + 8, 4);
    if (magic != kFrameMagic || length > kMaxFrameBytes ||
        content.size() - valid_end - kFrameHeaderBytes < length) {
      break;
    }
    const uint8_t* payload = content.data() + valid_end + kFrameHeaderBytes;
    if (Crc32c(payload, length) != crc) {
      break;
    }
    if (!ReplayFrame(payload, length, handler, stats_.replayed_points)) {
      ::close(fd);
      return Status::DataLoss("CRC-valid WAL frame with malformed records: " + path);
    }
    valid_end += kFrameHeaderBytes + length;
  }
  stats_.truncated_bytes = static_cast<uint64_t>(file_size) - valid_end;
  if (stats_.truncated_bytes > 0 && ::ftruncate(fd, static_cast<off_t>(valid_end)) != 0) {
    ::close(fd);
    return ErrnoStatus("ftruncate", path);
  }
  if (::lseek(fd, static_cast<off_t>(valid_end), SEEK_SET) < 0) {
    ::close(fd);
    return ErrnoStatus("lseek", path);
  }
  stats_.file_bytes = valid_end;
  fd_ = fd;
  return Status::Ok();
}

void WriteAheadLog::BufferPoints(const InternedMetricId& id,
                                 std::span<const TimePoint> timestamps,
                                 std::span<const double> values) {
  FBD_DCHECK(timestamps.size() == values.size());
  if (timestamps.empty()) {
    return;
  }
  PutRaw<uint8_t>(pending_, kPoints);
  PutRaw<uint32_t>(pending_, id.service);
  PutRaw<uint32_t>(pending_, static_cast<uint32_t>(id.kind));
  PutRaw<uint32_t>(pending_, id.entity);
  PutRaw<uint32_t>(pending_, id.metadata);
  PutRaw<uint32_t>(pending_, static_cast<uint32_t>(timestamps.size()));
  const size_t at = pending_.size();
  pending_.resize(at + timestamps.size() * 16);
  for (size_t i = 0; i < timestamps.size(); ++i) {
    std::memcpy(pending_.data() + at + i * 16, &timestamps[i], 8);
    std::memcpy(pending_.data() + at + i * 16 + 8, &values[i], 8);
  }
}

void WriteAheadLog::BufferDropBefore(TimePoint cutoff) {
  PutRaw<uint8_t>(pending_, kDropBefore);
  PutRaw<TimePoint>(pending_, cutoff);
}

void WriteAheadLog::BufferSealBoundary(TimePoint boundary) {
  PutRaw<uint8_t>(pending_, kSealBoundary);
  PutRaw<TimePoint>(pending_, boundary);
}

void WriteAheadLog::BufferSymbol(std::string_view name) {
  PutRaw<uint8_t>(pending_, kSymbol);
  PutRaw<uint32_t>(pending_, static_cast<uint32_t>(name.size()));
  const size_t at = pending_.size();
  pending_.resize(at + name.size());
  std::memcpy(pending_.data() + at, name.data(), name.size());
}

Status WriteAheadLog::WriteFrame(int fd, bool do_fsync) {
  std::vector<uint8_t> frame;
  frame.reserve(kFrameHeaderBytes + pending_.size());
  PutRaw<uint32_t>(frame, kFrameMagic);
  PutRaw<uint32_t>(frame, static_cast<uint32_t>(pending_.size()));
  PutRaw<uint32_t>(frame, Crc32c(pending_.data(), pending_.size()));
  frame.insert(frame.end(), pending_.begin(), pending_.end());
  if (!WriteAll(fd, frame.data(), frame.size())) {
    return ErrnoStatus("write", path_);
  }
  if (do_fsync && durable_io::Fsync(fd) != 0) {
    return ErrnoStatus("fsync", path_);
  }
  stats_.bytes_written += frame.size();
  ++stats_.group_commits;
  return Status::Ok();
}

Status WriteAheadLog::Commit() {
  FBD_CHECK(fd_ >= 0);
  if (pending_.empty()) {
    return Status::Ok();
  }
  const size_t frame_bytes = kFrameHeaderBytes + pending_.size();
  const Status status = WriteFrame(fd_, fsync_);
  pending_.clear();
  if (status.ok()) {
    stats_.file_bytes += frame_bytes;
  }
  return status;
}

Status WriteAheadLog::Rewrite() {
  FBD_CHECK(fd_ >= 0);
  const std::string temp_path = path_ + ".tmp";
  const int temp_fd =
      durable_io::Open(temp_path.c_str(), O_RDWR | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (temp_fd < 0) {
    pending_.clear();
    return ErrnoStatus("open", temp_path);
  }
  const bool wrote_frame = !pending_.empty();
  const size_t frame_bytes = wrote_frame ? kFrameHeaderBytes + pending_.size() : 0;
  Status status = wrote_frame ? WriteFrame(temp_fd, fsync_) : Status::Ok();
  pending_.clear();
  bool renamed = false;
  if (status.ok()) {
    renamed = durable_io::Rename(temp_path.c_str(), path_.c_str()) == 0;
    if (!renamed) {
      status = ErrnoStatus("rename", temp_path);
    }
  }
  // The rename only becomes crash-durable once the directory entry does;
  // without the directory fsync a crash here can resurrect the old log.
  if (status.ok() && fsync_) {
    status = FsyncParentDirectory(path_);
  }
  if (!renamed) {
    ::close(temp_fd);
    ::unlink(temp_path.c_str());
    return status;
  }
  // The old fd now refers to the unlinked previous log; swap in the new one
  // (even if the directory fsync failed — in-memory state must track the
  // on-disk file, and the caller degrades on the returned error).
  ::close(fd_);
  fd_ = temp_fd;
  stats_.file_bytes = frame_bytes;
  ++stats_.rewrites;
  return status;
}

}  // namespace fbdetect
