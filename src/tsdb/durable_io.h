// Syscall seam for the durable tier's file I/O (WAL + chunk store), with
// env-gated fault injection.
//
// The durable tier must degrade — not abort — when the filesystem under it
// misbehaves (DESIGN.md §16: a full disk or a flaky fsync turns the tier
// off, it does not take down detection). Proving that requires making
// write/fsync/rename fail on demand, which a real filesystem will not do in
// CI. Every durable-file syscall therefore routes through this shim; a
// failure plan — programmatic (tests) or from the FBD_FAIL_DURABLE_IO env
// variable (chaos CI) — makes the Nth call of one operation kind fail with
// EIO. With no plan armed the wrappers are direct passthroughs.
//
// Env syntax: FBD_FAIL_DURABLE_IO="<op>:<n>[:sticky]" where <op> is one of
// write|fsync|rename|open and the (1-based) <n>th call of that op fails.
// With ":sticky" every call from the Nth on fails — a dead disk, not a
// transient hiccup.
//
// Call counters are always maintained (relaxed atomics, one increment per
// syscall) so tests can assert that a code path really issued the syscall it
// promises — e.g. that WriteAheadLog::Rewrite fsyncs the parent directory.
#ifndef FBDETECT_SRC_TSDB_DURABLE_IO_H_
#define FBDETECT_SRC_TSDB_DURABLE_IO_H_

#include <sys/types.h>

#include <cstdint>

namespace fbdetect {
namespace durable_io {

enum class Op : int {
  kWrite = 0,
  kFsync,
  kRename,
  kOpen,
};
inline constexpr int kOpCount = 4;

// Wrappers with ::open/::write/::fsync/::rename semantics (errno set on
// failure). An armed failure plan makes the matching call fail with EIO
// without touching the file.
int Open(const char* path, int flags, mode_t mode);
ssize_t Write(int fd, const void* data, size_t size);
// Counted (and failed) under Op::kWrite — "write" covers both append styles.
ssize_t Pwrite(int fd, const void* data, size_t size, off_t offset);
int Fsync(int fd);
int Rename(const char* from, const char* to);

// Arms a failure plan: the `nth` (1-based) future call of `op` fails; with
// `sticky`, every call from the nth on fails. Overrides any env plan.
void SetFailure(Op op, uint64_t nth, bool sticky = false);
// Disarms injection (including an env-derived plan) and resets counters.
void ClearFailure();

// Calls of `op` observed since the last ClearFailure (or process start).
uint64_t CallCount(Op op);
// Calls of `op` that were failed by injection.
uint64_t InjectedFailureCount(Op op);

}  // namespace durable_io
}  // namespace fbdetect

#endif  // FBDETECT_SRC_TSDB_DURABLE_IO_H_
