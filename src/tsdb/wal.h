// Per-shard group-commit write-ahead log for the durable storage tier
// (DESIGN.md §15).
//
// The log is a sequence of CRC-framed commit groups. Writers buffer records
// in memory under the owning shard's mutex; a group commit serializes the
// buffer into ONE frame — header {magic, payload length, CRC32C of the
// payload} followed by the records — written with a single write() and an
// optional fsync(). Torn writes therefore have frame granularity: recovery
// replays whole valid frames and truncates the log at the first frame whose
// magic, length, or CRC does not check out, so the recovered state is always
// an exact prefix of committed groups (never a partial group).
//
// Record kinds:
//   kPoints       — accepted appends for one series: InternedMetricId +
//                   count + (timestamp, value-bits) pairs. Symbol handles are
//                   durable because the database persists its SymbolTable as
//                   an append-only names log replayed (in interning order)
//                   before any shard log.
//   kDropBefore   — a retention cutoff (TimeSeriesDatabase::Expire); replay
//                   applies DropBefore to every series of the shard at the
//                   recorded position in the record stream.
//   kSealBoundary — the boundary of the last durable SealBefore;
//                   informational (recovered as DurableStats metadata so a
//                   reopened database can report where its sealed history
//                   ends).
//
// Checkpointing: sealing persists chunks into the shard's chunk file, after
// which the log's history is redundant. Rewrite() atomically replaces the
// log (temp file + rename) with a single frame — the latest retention
// cutoff, the seal boundary, and a snapshot of every live tail — which
// bounds log length and recovery time by the working set, not the ingest
// history.
//
// Byte order is native (the log is host-local storage, not a wire format).
#ifndef FBDETECT_SRC_TSDB_WAL_H_
#define FBDETECT_SRC_TSDB_WAL_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/sim_time.h"
#include "src/common/status.h"
#include "src/tsdb/metric_id.h"

namespace fbdetect {

// CRC32C (Castagnoli), table-driven. Shared by the WAL and the chunk store.
uint32_t Crc32c(const uint8_t* data, size_t size, uint32_t seed = 0);

class WriteAheadLog {
 public:
  struct Stats {
    uint64_t group_commits = 0;    // Frames written (Commit + Rewrite).
    uint64_t rewrites = 0;         // Checkpoint rewrites.
    uint64_t bytes_written = 0;    // Frame bytes written since open.
    uint64_t file_bytes = 0;       // Current log size on disk.
    uint64_t replayed_points = 0;  // Points delivered by Open's replay.
    uint64_t truncated_bytes = 0;  // Torn tail dropped by Open.
  };

  // Replay callbacks, invoked in record order during Open. `symbol` is used
  // only by the database's names log (a WriteAheadLog with string records).
  struct ReplayHandler {
    std::function<void(const InternedMetricId&, std::span<const TimePoint>,
                       std::span<const double>)>
        points;
    std::function<void(TimePoint)> drop_before;
    std::function<void(TimePoint)> seal_boundary;
    std::function<void(std::string_view)> symbol;
  };

  WriteAheadLog() = default;
  ~WriteAheadLog();
  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  // Opens (creating if absent) the log at `path`, replays every valid frame
  // through `handler`, and truncates any torn tail so new frames append to a
  // clean prefix. A CRC-valid frame with malformed records is corruption
  // beyond what a torn write can produce and fails the open.
  Status Open(const std::string& path, const ReplayHandler& handler, bool fsync);

  bool is_open() const { return fd_ >= 0; }

  // --- Buffering (caller serializes; in practice the shard mutex) ---

  void BufferPoints(const InternedMetricId& id, std::span<const TimePoint> timestamps,
                    std::span<const double> values);
  void BufferDropBefore(TimePoint cutoff);
  void BufferSealBoundary(TimePoint boundary);
  void BufferSymbol(std::string_view name);

  size_t pending_bytes() const { return pending_.size(); }

  // Drops buffered-but-uncommitted records. A checkpoint builder calls this
  // first: replay order inside one frame is record order, so stale append
  // records ahead of the tail snapshots would replay as newer-than-snapshot
  // points and make the monotonic append gate reject the snapshots.
  void DiscardPending() { pending_.clear(); }

  // --- Committing ---

  // Writes the buffered records as one CRC-framed group (no-op when the
  // buffer is empty). Group commit: however many records accumulated since
  // the last commit cost one write() + one optional fsync().
  Status Commit();

  // Checkpoint: atomically replaces the whole log with the buffered records
  // (one frame) via temp file + rename. The buffer is consumed even on
  // failure paths that leave the old log in place.
  Status Rewrite();

  const Stats& stats() const { return stats_; }

 private:
  Status WriteFrame(int fd, bool do_fsync);

  std::string path_;
  int fd_ = -1;
  bool fsync_ = true;
  std::vector<uint8_t> pending_;
  Stats stats_;
};

}  // namespace fbdetect

#endif  // FBDETECT_SRC_TSDB_WAL_H_
