#include "src/tsdb/durable_io.h"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace fbdetect {
namespace durable_io {
namespace {

struct Plan {
  std::atomic<bool> armed{false};
  std::atomic<int> op{0};
  std::atomic<uint64_t> nth{0};
  std::atomic<bool> sticky{false};
};

Plan g_plan;
std::atomic<uint64_t> g_calls[kOpCount];
std::atomic<uint64_t> g_failures[kOpCount];
std::once_flag g_env_once;

void LoadEnvPlan() {
  const char* spec = std::getenv("FBD_FAIL_DURABLE_IO");
  if (spec == nullptr || spec[0] == '\0') {
    return;
  }
  const char* colon = std::strchr(spec, ':');
  if (colon == nullptr) {
    std::fprintf(stderr, "FBD_FAIL_DURABLE_IO: malformed spec \"%s\" (want op:n)\n", spec);
    return;
  }
  const std::string_view op_name(spec, static_cast<size_t>(colon - spec));
  Op op;
  if (op_name == "write") {
    op = Op::kWrite;
  } else if (op_name == "fsync") {
    op = Op::kFsync;
  } else if (op_name == "rename") {
    op = Op::kRename;
  } else if (op_name == "open") {
    op = Op::kOpen;
  } else {
    std::fprintf(stderr, "FBD_FAIL_DURABLE_IO: unknown op \"%.*s\"\n",
                 static_cast<int>(op_name.size()), op_name.data());
    return;
  }
  char* end = nullptr;
  const unsigned long long nth = std::strtoull(colon + 1, &end, 10);
  const bool sticky = end != nullptr && std::strcmp(end, ":sticky") == 0;
  if (nth == 0 || end == nullptr || (*end != '\0' && !sticky)) {
    std::fprintf(stderr, "FBD_FAIL_DURABLE_IO: malformed count in \"%s\"\n", spec);
    return;
  }
  SetFailure(op, nth, sticky);
}

// Counts the call and decides whether injection fails it (setting EIO).
bool ShouldFail(Op op) {
  std::call_once(g_env_once, LoadEnvPlan);
  const uint64_t call =
      g_calls[static_cast<int>(op)].fetch_add(1, std::memory_order_relaxed) + 1;
  if (!g_plan.armed.load(std::memory_order_relaxed) ||
      g_plan.op.load(std::memory_order_relaxed) != static_cast<int>(op)) {
    return false;
  }
  const uint64_t nth = g_plan.nth.load(std::memory_order_relaxed);
  const bool hit =
      g_plan.sticky.load(std::memory_order_relaxed) ? call >= nth : call == nth;
  if (hit) {
    g_failures[static_cast<int>(op)].fetch_add(1, std::memory_order_relaxed);
    errno = EIO;
  }
  return hit;
}

}  // namespace

int Open(const char* path, int flags, mode_t mode) {
  if (ShouldFail(Op::kOpen)) {
    return -1;
  }
  return ::open(path, flags, mode);
}

ssize_t Write(int fd, const void* data, size_t size) {
  if (ShouldFail(Op::kWrite)) {
    return -1;
  }
  return ::write(fd, data, size);
}

ssize_t Pwrite(int fd, const void* data, size_t size, off_t offset) {
  if (ShouldFail(Op::kWrite)) {
    return -1;
  }
  return ::pwrite(fd, data, size, offset);
}

int Fsync(int fd) {
  if (ShouldFail(Op::kFsync)) {
    return -1;
  }
  return ::fsync(fd);
}

int Rename(const char* from, const char* to) {
  if (ShouldFail(Op::kRename)) {
    return -1;
  }
  return ::rename(from, to);
}

void SetFailure(Op op, uint64_t nth, bool sticky) {
  g_plan.op.store(static_cast<int>(op), std::memory_order_relaxed);
  g_plan.nth.store(nth, std::memory_order_relaxed);
  g_plan.sticky.store(sticky, std::memory_order_relaxed);
  g_plan.armed.store(true, std::memory_order_relaxed);
  for (auto& count : g_calls) {
    count.store(0, std::memory_order_relaxed);
  }
  for (auto& count : g_failures) {
    count.store(0, std::memory_order_relaxed);
  }
}

void ClearFailure() {
  g_plan.armed.store(false, std::memory_order_relaxed);
  for (auto& count : g_calls) {
    count.store(0, std::memory_order_relaxed);
  }
  for (auto& count : g_failures) {
    count.store(0, std::memory_order_relaxed);
  }
}

uint64_t CallCount(Op op) {
  return g_calls[static_cast<int>(op)].load(std::memory_order_relaxed);
}

uint64_t InjectedFailureCount(Op op) {
  return g_failures[static_cast<int>(op)].load(std::memory_order_relaxed);
}

}  // namespace durable_io
}  // namespace fbdetect
