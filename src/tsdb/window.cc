#include "src/tsdb/window.h"

#include "src/common/check.h"

namespace fbdetect {

WindowExtract ExtractWindows(const TimeSeries& series, TimePoint as_of, const WindowSpec& spec) {
  FBD_CHECK(spec.historical > 0);
  FBD_CHECK(spec.analysis > 0);
  FBD_CHECK(spec.extended >= 0);
  WindowExtract extract;
  extract.as_of = as_of;
  extract.extended_begin = as_of - spec.extended;
  extract.analysis_begin = extract.extended_begin - spec.analysis;
  extract.historical_begin = extract.analysis_begin - spec.historical;

  extract.historical = series.ValuesBetween(extract.historical_begin, extract.analysis_begin);
  extract.analysis = series.ValuesBetween(extract.analysis_begin, extract.extended_begin);
  extract.extended = series.ValuesBetween(extract.extended_begin, as_of);

  extract.analysis_plus_extended = extract.analysis;
  extract.analysis_plus_extended.insert(extract.analysis_plus_extended.end(),
                                        extract.extended.begin(), extract.extended.end());

  const TimeSeries scan = series.Slice(extract.analysis_begin, as_of);
  extract.analysis_timestamps = scan.timestamps();
  return extract;
}

WindowView ExtractWindowView(const TimeSeries& series, TimePoint as_of, const WindowSpec& spec) {
  FBD_CHECK(spec.historical > 0);
  FBD_CHECK(spec.analysis > 0);
  FBD_CHECK(spec.extended >= 0);
  WindowView view;
  view.as_of = as_of;
  view.extended_begin = as_of - spec.extended;
  view.analysis_begin = view.extended_begin - spec.analysis;
  view.historical_begin = view.analysis_begin - spec.historical;

  // Window boundaries as index positions; adjacent windows share them, so
  // the three value spans tile one contiguous range of the series storage.
  const auto [hist_first, analysis_first] =
      series.SliceIndices(view.historical_begin, view.analysis_begin);
  const auto [unused_a, extended_first] =
      series.SliceIndices(view.analysis_begin, view.extended_begin);
  const auto [unused_e, last] = series.SliceIndices(view.extended_begin, as_of);

  const std::span<const double> values = series.value_span();
  view.historical = values.subspan(hist_first, analysis_first - hist_first);
  view.analysis = values.subspan(analysis_first, extended_first - analysis_first);
  view.extended = values.subspan(extended_first, last - extended_first);
  view.analysis_plus_extended = values.subspan(analysis_first, last - analysis_first);
  view.full = values.subspan(hist_first, last - hist_first);
  view.analysis_timestamps = std::span<const TimePoint>(series.timestamps())
                                 .subspan(analysis_first, last - analysis_first);
  return view;
}

}  // namespace fbdetect
