#include "src/tsdb/window.h"

#include "src/common/check.h"

namespace fbdetect {

WindowExtract ExtractWindows(const TimeSeries& series, TimePoint as_of, const WindowSpec& spec) {
  FBD_CHECK(spec.historical > 0);
  FBD_CHECK(spec.analysis > 0);
  FBD_CHECK(spec.extended >= 0);
  WindowExtract extract;
  extract.as_of = as_of;
  extract.extended_begin = as_of - spec.extended;
  extract.analysis_begin = extract.extended_begin - spec.analysis;
  extract.historical_begin = extract.analysis_begin - spec.historical;

  extract.historical = series.ValuesBetween(extract.historical_begin, extract.analysis_begin);
  extract.analysis = series.ValuesBetween(extract.analysis_begin, extract.extended_begin);
  extract.extended = series.ValuesBetween(extract.extended_begin, as_of);

  extract.analysis_plus_extended = extract.analysis;
  extract.analysis_plus_extended.insert(extract.analysis_plus_extended.end(),
                                        extract.extended.begin(), extract.extended.end());

  const TimeSeries scan = series.Slice(extract.analysis_begin, as_of);
  extract.analysis_timestamps = scan.timestamps();
  return extract;
}

}  // namespace fbdetect
