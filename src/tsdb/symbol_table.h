// String interning for metric identity components.
//
// FBDetect's ~800k series are keyed by (service, kind, entity, metadata)
// strings; hashing three heap strings on every TSDB write is the dominant
// ingestion cost at fleet scale. A SymbolTable maps each distinct component
// string to a dense uint32_t handle so the hot write path and the sharded
// storage operate on a 16-byte integer key (InternedMetricId) instead, while
// the canonical strings stay recoverable for reports and dedup n-grams.
//
// Thread-safety: all methods are safe to call concurrently (shared_mutex;
// lookups take the shared lock, first-time interns the exclusive lock). In
// steady state every symbol already exists and Intern degenerates to one
// shared-locked hash lookup. Symbols are never removed, so the references
// returned by Name() stay valid for the table's lifetime.
#ifndef FBDETECT_SRC_TSDB_SYMBOL_TABLE_H_
#define FBDETECT_SRC_TSDB_SYMBOL_TABLE_H_

#include <cstdint>
#include <deque>
#include <optional>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace fbdetect {

class SymbolTable {
 public:
  // The empty string is pre-interned as symbol 0, so "no entity" / "no
  // metadata" costs nothing to encode and decodes back to "".
  static constexpr uint32_t kEmptySymbol = 0;

  SymbolTable();
  SymbolTable(const SymbolTable&) = delete;
  SymbolTable& operator=(const SymbolTable&) = delete;

  // Returns the symbol for `name`, creating it on first sight.
  uint32_t Intern(std::string_view name);

  // Returns the symbol for `name` if it was interned before; never creates.
  std::optional<uint32_t> Find(std::string_view name) const;

  // The canonical string of a symbol. The reference is stable for the
  // lifetime of the table (symbols are never removed).
  const std::string& Name(uint32_t symbol) const;

  size_t size() const;

 private:
  mutable std::shared_mutex mutex_;
  // deque: stable references across growth, so Name() results and the
  // string_view keys in index_ survive later interns.
  std::deque<std::string> names_;
  std::unordered_map<std::string_view, uint32_t> index_;
};

}  // namespace fbdetect

#endif  // FBDETECT_SRC_TSDB_SYMBOL_TABLE_H_
