#include "src/tsdb/database.h"

#include <sys/stat.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "src/common/check.h"

namespace fbdetect {
namespace {

size_t RoundUpPow2(size_t value) {
  size_t pow2 = 1;
  while (pow2 < value) {
    pow2 <<= 1;
  }
  return pow2;
}

// Heap cost of a materialized TimeSeries (parallel timestamp/value vectors).
size_t MaterializedBytes(const TimeSeries& series) { return series.size() * 16; }

}  // namespace

// --- WriteBatch ---

WriteBatch::WriteBatch(TimeSeriesDatabase* db)
    : db_(db), per_shard_(db->shard_count()) {}

void WriteBatch::Add(const InternedMetricId& id, TimePoint timestamp, double value) {
  const auto [it, inserted] =
      column_index_.try_emplace(id, static_cast<uint32_t>(columns_.size()));
  if (inserted) {
    columns_.push_back(Column{id, {}, {}});
    per_shard_[db_->ShardIndex(id)].push_back(it->second);
  }
  Column& column = columns_[it->second];
  column.timestamps.push_back(timestamp);
  column.values.push_back(value);
  ++point_count_;
}

void WriteBatch::Add(const MetricId& id, TimePoint timestamp, double value) {
  Add(db_->Intern(id), timestamp, value);
}

void WriteBatch::MutateColumns(
    const std::function<void(const InternedMetricId&, std::vector<TimePoint>&,
                             std::vector<double>&)>& fn) {
  size_t points = 0;
  for (Column& column : columns_) {
    fn(column.id, column.timestamps, column.values);
    FBD_CHECK(column.timestamps.size() == column.values.size());
    points += column.timestamps.size();
  }
  point_count_ = points;
}

void WriteBatch::Commit() {
  if (point_count_ > 0) {
    db_->Apply(*this);
  }
  for (Column& column : columns_) {
    column.timestamps.clear();  // Keeps capacity (and the id mapping) for
    column.values.clear();      // the next fill.
  }
  point_count_ = 0;
}

// --- TimeSeriesDatabase ---

TimeSeriesDatabase::TimeSeriesDatabase(const TsdbOptions& options)
    : options_(options),
      shards_(RoundUpPow2(std::max<size_t>(1, options.shard_count))) {
  shard_mask_ = shards_.size() - 1;
  if (options_.durable.enabled()) {
    OpenDurable();
  }
}

TimeSeriesDatabase::~TimeSeriesDatabase() { SyncDurable(); }

bool TimeSeriesDatabase::HandleDurableError(const Status& status) {
  if (status.ok()) {
    return true;
  }
  durable_io_errors_.fetch_add(1, std::memory_order_relaxed);
  if (!durable_degraded_.exchange(true, std::memory_order_relaxed)) {
    std::fprintf(stderr,
                 "durable tier degraded to memory-only after I/O failure: %s\n",
                 status.message().c_str());
    std::fflush(stderr);
  }
  return false;
}

void TimeSeriesDatabase::OpenDurable() {
  const std::string& dir = options_.durable.directory;
  const bool fsync = options_.durable.fsync;
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    HandleDurableError(Status::Internal("mkdir failed for " + dir + ": " +
                                        std::strerror(errno)));
    return;
  }
  // Symbols first: replaying the names log in append (= interning) order
  // reproduces the identical dense ids every chunk and WAL record refers to.
  symbols_log_ = std::make_unique<WriteAheadLog>();
  WriteAheadLog::ReplayHandler symbol_handler;
  symbol_handler.symbol = [this](std::string_view name) { symbols_.Intern(name); };
  if (!HandleDurableError(symbols_log_->Open(dir + "/symbols.log", symbol_handler, fsync))) {
    return;
  }
  symbols_logged_ = symbols_.size();  // Includes the pre-interned "".

  const auto symbols_known = [this](const InternedMetricId& id) {
    const size_t n = symbols_.size();
    return id.service < n && id.entity < n && id.metadata < n;
  };
  bool recovered_any = symbols_logged_ > 1;
  for (size_t i = 0; i < shards_.size(); ++i) {
    Shard& shard = shards_[i];
    const std::string suffix = "." + std::to_string(i);
    shard.chunk_store = std::make_unique<ChunkStore>();
    shard.wal = std::make_unique<WriteAheadLog>();
    // Sealed history: restore chunk records in file order. Re-persisted
    // chunks (grown or retention-trimmed) appear later and supersede what
    // they overlap (TieredSeries::RestoreSealedChunk). Records whose symbols
    // the names log does not know cannot have been committed by a correct
    // writer (symbols are fsync'd first); skipping them is belt-and-braces.
    const Status chunks_opened = shard.chunk_store->Open(
        dir + "/chunks" + suffix,
        [this, &shard, &symbols_known](const ChunkStore::RestoredChunk& chunk) {
          if (!symbols_known(chunk.id) || chunk.count == 0) {
            return;
          }
          SeriesEntry& entry = EntryLocked(shard, chunk.id);
          entry.data.RestoreSealedChunk(chunk.payload_offset, chunk.payload_len,
                                        chunk.bit_count, chunk.count, chunk.first,
                                        chunk.last);
        },
        fsync);
    if (!HandleDurableError(chunks_opened)) {
      return;
    }
    // Then the log: the checkpoint frame (retention cutoff, seal boundary,
    // tail snapshots) followed by post-checkpoint appends. Replay is not
    // ingest — outcomes are not counted, and points at or before restored
    // sealed history (tail snapshots overlapping chunks) skip naturally.
    WriteAheadLog::ReplayHandler handler;
    handler.points = [this, &shard, &symbols_known](const InternedMetricId& id,
                                                    std::span<const TimePoint> timestamps,
                                                    std::span<const double> values) {
      if (!symbols_known(id)) {
        return;
      }
      SeriesEntry& entry = EntryLocked(shard, id);
      for (size_t k = 0; k < timestamps.size(); ++k) {
        (void)entry.data.TryAppend(timestamps[k], values[k]);
      }
    };
    handler.drop_before = [this, &shard](TimePoint cutoff) {
      for (auto& [id, entry] : shard.series) {
        entry.data.DropBefore(cutoff);
      }
      last_drop_cutoff_ = std::max(last_drop_cutoff_, cutoff);
      have_drop_cutoff_ = true;
    };
    handler.seal_boundary = [this](TimePoint boundary) {
      last_seal_boundary_ = std::max(last_seal_boundary_, boundary);
    };
    if (!HandleDurableError(shard.wal->Open(dir + "/wal" + suffix, handler, fsync))) {
      return;
    }
    // A replayed retention record can empty a series entirely.
    for (auto it = shard.series.begin(); it != shard.series.end();) {
      it = it->second.data.empty() ? shard.series.erase(it) : std::next(it);
    }
    const WriteAheadLog::Stats& wal_stats = shard.wal->stats();
    const ChunkStore::Stats& chunk_stats = shard.chunk_store->stats();
    recovered_points_ += wal_stats.replayed_points;
    recovered_chunks_ += chunk_stats.restored_chunks;
    recovered_truncated_bytes_ += wal_stats.truncated_bytes + chunk_stats.truncated_bytes;
    recovered_any = recovered_any || wal_stats.replayed_points > 0 ||
                    chunk_stats.restored_chunks > 0;
  }
  recoveries_ = recovered_any ? 1 : 0;
}

void TimeSeriesDatabase::CommitSymbols() {
  if (!symbols_log_ || !DurableActive()) {
    return;
  }
  std::lock_guard<std::mutex> lock(symbols_log_mutex_);
  const size_t total = symbols_.size();
  for (size_t i = symbols_logged_; i < total; ++i) {
    symbols_log_->BufferSymbol(symbols_.Name(static_cast<uint32_t>(i)));
  }
  symbols_logged_ = total;
  if (symbols_log_->pending_bytes() > 0) {
    HandleDurableError(symbols_log_->Commit());
  }
}

void TimeSeriesDatabase::MaybeGroupCommitLocked(Shard& shard) {
  if (shard.wal == nullptr || !DurableActive() ||
      shard.wal->pending_bytes() < options_.durable.group_commit_bytes) {
    return;
  }
  // Symbols must reach disk before any record that references them.
  CommitSymbols();
  HandleDurableError(shard.wal->Commit());
}

void TimeSeriesDatabase::SyncDurable() {
  if (!DurableActive()) {
    return;
  }
  CommitSymbols();
  for (Shard& shard : shards_) {
    if (!DurableActive()) {
      break;  // A commit above just degraded the tier.
    }
    std::lock_guard<std::mutex> lock(shard.mutex);
    if (shard.wal != nullptr && shard.wal->pending_bytes() > 0) {
      HandleDurableError(shard.wal->Commit());
    }
  }
}

InternedMetricId TimeSeriesDatabase::Intern(const MetricId& id) {
  return InternedMetricId{symbols_.Intern(id.service), id.kind,
                          symbols_.Intern(id.entity), symbols_.Intern(id.metadata)};
}

std::optional<InternedMetricId> TimeSeriesDatabase::TryIntern(
    const MetricId& id) const {
  const auto service = symbols_.Find(id.service);
  const auto entity = symbols_.Find(id.entity);
  const auto metadata = symbols_.Find(id.metadata);
  if (!service || !entity || !metadata) {
    return std::nullopt;
  }
  return InternedMetricId{*service, id.kind, *entity, *metadata};
}

MetricId TimeSeriesDatabase::Resolve(const InternedMetricId& id) const {
  return MetricId{symbols_.Name(id.service), id.kind, symbols_.Name(id.entity),
                  symbols_.Name(id.metadata)};
}

TimeSeriesDatabase::SeriesEntry& TimeSeriesDatabase::EntryLocked(
    Shard& shard, const InternedMetricId& id) {
  auto it = shard.series.find(id);
  if (it == shard.series.end()) {
    it = shard.series.emplace(id, SeriesEntry(options_.seal_chunk_points)).first;
    if (shard.chunk_store != nullptr) {
      it->second.data.set_chunk_source(shard.chunk_store.get());
    }
  }
  return it->second;
}

void TimeSeriesDatabase::Write(const MetricId& id, TimePoint timestamp, double value) {
  Write(Intern(id), timestamp, value);
}

bool TimeSeriesDatabase::AppendCounted(Shard& shard, SeriesEntry& entry,
                                       TimePoint timestamp, double value) {
  switch (entry.data.TryAppend(timestamp, value)) {
    case AppendOutcome::kAppended:
      ++shard.ingest.accepted;
      return true;
    case AppendOutcome::kDuplicate:
      ++shard.ingest.dropped_duplicate;
      ++entry.rejected_duplicate;
      return false;
    case AppendOutcome::kOutOfOrder:
      ++shard.ingest.dropped_out_of_order;
      ++entry.rejected_out_of_order;
      return false;
  }
  return false;  // Unreachable.
}

void TimeSeriesDatabase::NotifyAppendLocked(Shard& shard, const InternedMetricId& id,
                                            const SeriesEntry& entry,
                                            size_t tail_before) {
  const TimeSeries& tail = entry.data.tail();
  if (tail.size() <= tail_before) {
    return;  // Nothing accepted (appends go to the tail only).
  }
  const size_t count = tail.size() - tail_before;
  const auto timestamps =
      std::span<const TimePoint>(tail.timestamps()).subspan(tail_before, count);
  const auto values =
      std::span<const double>(tail.values()).subspan(tail_before, count);
  if (append_observer_ != nullptr) {
    append_observer_->OnAppend(id, timestamps, values);
  }
  // Degraded tier: stop buffering — nothing will ever commit the buffer, so
  // feeding it would grow pending bytes without bound.
  if (shard.wal != nullptr && DurableActive()) {
    shard.wal->BufferPoints(id, timestamps, values);
  }
}

void TimeSeriesDatabase::Write(const InternedMetricId& id, TimePoint timestamp,
                               double value) {
  Shard& shard = shards_[ShardIndex(id)];
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    SeriesEntry& entry = EntryLocked(shard, id);
    const size_t tail_before = entry.data.tail().size();
    if (AppendCounted(shard, entry, timestamp, value)) {
      ++entry.version;
      shard.generation.fetch_add(1, std::memory_order_relaxed);
      NotifyAppendLocked(shard, id, entry, tail_before);
      MaybeGroupCommitLocked(shard);
    }
  }
  MaybeEvictMaterialized();
}

void TimeSeriesDatabase::WriteSeries(const MetricId& id, TimeSeries series) {
  const InternedMetricId interned = Intern(id);
  Shard& shard = shards_[ShardIndex(interned)];
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    SeriesEntry& entry = EntryLocked(shard, interned);
    const size_t tail_before = entry.data.tail().size();
    bool stored = false;
    for (size_t i = 0; i < series.size(); ++i) {
      stored |= AppendCounted(shard, entry, series.timestamps()[i], series.values()[i]);
    }
    if (stored) {
      ++entry.version;
      shard.generation.fetch_add(1, std::memory_order_relaxed);
      NotifyAppendLocked(shard, interned, entry, tail_before);
      MaybeGroupCommitLocked(shard);
    }
  }
  MaybeEvictMaterialized();
}

void TimeSeriesDatabase::Apply(WriteBatch& batch) {
  FBD_CHECK(batch.db_ == this);
  for (size_t shard_index = 0; shard_index < batch.per_shard_.size(); ++shard_index) {
    const std::vector<uint32_t>& column_indices = batch.per_shard_[shard_index];
    if (column_indices.empty()) {
      continue;
    }
    Shard& shard = shards_[shard_index];
    std::lock_guard<std::mutex> lock(shard.mutex);
    bool changed = false;
    for (const uint32_t column_index : column_indices) {
      const WriteBatch::Column& column = batch.columns_[column_index];
      if (column.timestamps.empty()) {
        continue;  // Staged in an earlier fill of this batch, idle since.
      }
      SeriesEntry& entry = EntryLocked(shard, column.id);
      const size_t tail_before = entry.data.tail().size();
      bool stored = false;
      for (size_t i = 0; i < column.timestamps.size(); ++i) {
        stored |= AppendCounted(shard, entry, column.timestamps[i], column.values[i]);
      }
      if (stored) {
        ++entry.version;
        changed = true;
        NotifyAppendLocked(shard, column.id, entry, tail_before);
      }
    }
    if (changed) {
      shard.generation.fetch_add(1, std::memory_order_relaxed);
    }
    MaybeGroupCommitLocked(shard);
  }
  MaybeEvictMaterialized();
}

TimeSeriesDatabase::IngestStats TimeSeriesDatabase::ingest_stats() const {
  IngestStats total;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    total.accepted += shard.ingest.accepted;
    total.dropped_duplicate += shard.ingest.dropped_duplicate;
    total.dropped_out_of_order += shard.ingest.dropped_out_of_order;
  }
  return total;
}

void TimeSeriesDatabase::ForEachIngestReject(
    const std::function<void(const MetricId&, uint64_t, uint64_t)>& fn) const {
  struct Reject {
    MetricId id;
    uint64_t duplicate;
    uint64_t out_of_order;
  };
  std::vector<Reject> rejects;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (const auto& [id, entry] : shard.series) {
      if (entry.rejected_duplicate > 0 || entry.rejected_out_of_order > 0) {
        rejects.push_back(
            Reject{Resolve(id), entry.rejected_duplicate, entry.rejected_out_of_order});
      }
    }
  }
  std::sort(rejects.begin(), rejects.end(),
            [](const Reject& a, const Reject& b) { return a.id < b.id; });
  for (const Reject& reject : rejects) {
    fn(reject.id, reject.duplicate, reject.out_of_order);
  }
}

const TimeSeries* TimeSeriesDatabase::MaterializedLocked(const SeriesEntry& entry) const {
  if (!entry.materialized) {
    entry.materialized = std::make_unique<TimeSeries>();
  }
  if (entry.materialized_version != entry.version) {
    materialized_bytes_.fetch_sub(MaterializedBytes(*entry.materialized),
                                  std::memory_order_relaxed);
    entry.materialized->Clear();
    size_t mapped = 0;
    entry.data.MaterializeAll(*entry.materialized, &mapped);
    if (mapped > 0) {
      mapped_readback_decodes_.fetch_add(mapped, std::memory_order_relaxed);
    }
    materialized_bytes_.fetch_add(MaterializedBytes(*entry.materialized),
                                  std::memory_order_relaxed);
    entry.materialized_version = entry.version;
  }
  return entry.materialized.get();
}

const TimeSeries* TimeSeriesDatabase::Find(const MetricId& id) const {
  const auto interned = TryIntern(id);
  return interned ? Find(*interned) : nullptr;
}

const TimeSeries* TimeSeriesDatabase::Find(const InternedMetricId& id) const {
  const Shard& shard = shards_[ShardIndex(id)];
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.series.find(id);
  if (it == shard.series.end()) {
    return nullptr;
  }
  if (it->second.data.chunk_count() == 0) {
    return &it->second.data.tail();  // Zero-copy: no sealed history.
  }
  return MaterializedLocked(it->second);
}

bool TimeSeriesDatabase::Contains(const MetricId& id) const {
  const auto interned = TryIntern(id);
  return interned && Contains(*interned);
}

bool TimeSeriesDatabase::Contains(const InternedMetricId& id) const {
  const Shard& shard = shards_[ShardIndex(id)];
  std::lock_guard<std::mutex> lock(shard.mutex);
  return shard.series.contains(id);
}

const TimeSeries* TimeSeriesDatabase::SeriesForScan(const MetricId& id, TimePoint begin,
                                                    TimeSeries& scratch,
                                                    Status* status) const {
  const auto interned = TryIntern(id);
  if (!interned) {
    if (status != nullptr) {
      *status = Status::Ok();  // Absent, not corrupt.
    }
    return nullptr;
  }
  return SeriesForScan(*interned, begin, scratch, status);
}

const TimeSeries* TimeSeriesDatabase::SeriesForScan(const InternedMetricId& id,
                                                    TimePoint begin, TimeSeries& scratch,
                                                    Status* status) const {
  if (status != nullptr) {
    *status = Status::Ok();
  }
  const Shard& shard = shards_[ShardIndex(id)];
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.series.find(id);
  if (it == shard.series.end()) {
    scan_misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  const TieredSeries& data = it->second.data;
  if (data.TailCovers(begin)) {
    scan_tail_hits_.fetch_add(1, std::memory_order_relaxed);
    return &data.tail();  // Zero-copy hot path: the scan range is all raw.
  }
  scan_sealed_decodes_.fetch_add(1, std::memory_order_relaxed);
  scratch.Clear();
  size_t mapped = 0;
  if (status == nullptr) {
    data.MaterializeFrom(begin, scratch, &mapped);  // Aborts on corrupt history.
    if (mapped > 0) {
      mapped_readback_decodes_.fetch_add(mapped, std::memory_order_relaxed);
    }
    return &scratch;
  }
  *status = data.TryMaterializeFrom(begin, scratch, &mapped);
  if (mapped > 0) {
    mapped_readback_decodes_.fetch_add(mapped, std::memory_order_relaxed);
  }
  if (!status->ok()) {
    scan_decode_failures_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  return &scratch;
}

TimeSeriesDatabase::ScanStats TimeSeriesDatabase::scan_stats() const {
  ScanStats stats;
  stats.tail_hits = scan_tail_hits_.load(std::memory_order_relaxed);
  stats.sealed_decodes = scan_sealed_decodes_.load(std::memory_order_relaxed);
  stats.decode_failures = scan_decode_failures_.load(std::memory_order_relaxed);
  stats.misses = scan_misses_.load(std::memory_order_relaxed);
  stats.list_cache_hits = list_cache_hits_.load(std::memory_order_relaxed);
  stats.list_cache_misses = list_cache_misses_.load(std::memory_order_relaxed);
  stats.list_cache_shard_refreshes =
      list_cache_shard_refreshes_.load(std::memory_order_relaxed);
  return stats;
}

std::vector<MetricId> TimeSeriesDatabase::ListMetrics(const std::string& service) const {
  std::lock_guard<std::mutex> cache_lock(list_cache_mutex_);
  ListCacheEntry& cached = list_cache_[service];
  std::vector<uint64_t> generations(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    generations[i] = shards_[i].generation.load(std::memory_order_relaxed);
  }
  if (cached.shard_generations == generations) {
    list_cache_hits_.fetch_add(1, std::memory_order_relaxed);
    return cached.ids;
  }
  list_cache_misses_.fetch_add(1, std::memory_order_relaxed);
  const bool cold = cached.shard_generations.size() != shards_.size();
  if (cold) {
    cached.shard_generations.assign(shards_.size(), 0);
    cached.per_shard.assign(shards_.size(), {});
  }
  const auto service_symbol =
      service.empty() ? std::optional<uint32_t>(SymbolTable::kEmptySymbol)
                      : symbols_.Find(service);
  // Re-enumerate only shards whose generation moved since their slice was
  // built (all of them when cold); each slice is sorted on its own so the
  // merge below never re-sorts unchanged shards' ids.
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (!cold && cached.shard_generations[i] == generations[i]) {
      continue;
    }
    list_cache_shard_refreshes_.fetch_add(1, std::memory_order_relaxed);
    std::vector<MetricId>& slice = cached.per_shard[i];
    slice.clear();
    if (service_symbol) {
      const Shard& shard = shards_[i];
      std::lock_guard<std::mutex> lock(shard.mutex);
      for (const auto& [id, unused] : shard.series) {
        if (service.empty() || id.service == *service_symbol) {
          slice.push_back(Resolve(id));
        }
      }
      // Deterministic canonical order for reproducible pipeline runs;
      // MetricId's field-wise operator< avoids ToString() allocations.
      std::sort(slice.begin(), slice.end());
    }
  }
  // K-way merge of the sorted per-shard slices (shard count is small, so a
  // linear min-scan per output element is fine and allocation-free).
  cached.ids.clear();
  std::vector<size_t> cursor(shards_.size(), 0);
  for (;;) {
    size_t best = shards_.size();
    for (size_t i = 0; i < shards_.size(); ++i) {
      if (cursor[i] >= cached.per_shard[i].size()) {
        continue;
      }
      if (best == shards_.size() ||
          cached.per_shard[i][cursor[i]] < cached.per_shard[best][cursor[best]]) {
        best = i;
      }
    }
    if (best == shards_.size()) {
      break;
    }
    cached.ids.push_back(cached.per_shard[best][cursor[best]]);
    ++cursor[best];
  }
  cached.shard_generations = std::move(generations);
  return cached.ids;
}

std::vector<MetricId> TimeSeriesDatabase::ListMetricsOfKind(const std::string& service,
                                                            MetricKind kind) const {
  std::vector<MetricId> ids;
  for (MetricId& id : ListMetrics(service)) {
    if (id.kind == kind) {
      ids.push_back(std::move(id));
    }
  }
  return ids;
}

size_t TimeSeriesDatabase::metric_count() const {
  size_t count = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    count += shard.series.size();
  }
  return count;
}

size_t TimeSeriesDatabase::total_points() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (const auto& [unused, entry] : shard.series) {
      total += entry.data.size();
    }
  }
  return total;
}

TimeSeriesDatabase::MemoryStats TimeSeriesDatabase::memory_stats() const {
  MemoryStats stats;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (const auto& [unused, entry] : shard.series) {
      stats.raw_points += entry.data.tail().size();
      stats.sealed_points += entry.data.sealed_points();
      stats.sealed_bytes += entry.data.sealed_bytes();
      stats.resident_sealed_bytes += entry.data.resident_sealed_bytes();
    }
  }
  stats.mapped_sealed_bytes = stats.sealed_bytes - stats.resident_sealed_bytes;
  stats.materialized_bytes = materialized_bytes_.load(std::memory_order_relaxed);
  return stats;
}

void TimeSeriesDatabase::SealBefore(TimePoint boundary) {
  if (DurableActive()) {
    // New symbols must reach disk before chunk/WAL records referencing them.
    CommitSymbols();
  }
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    bool changed = false;
    for (auto& [unused, entry] : shard.series) {
      const size_t sealed_before = entry.data.sealed_points();
      entry.data.SealBefore(boundary);
      if (entry.data.sealed_points() != sealed_before) {
        ++entry.version;
        changed = true;
      }
    }
    if (changed) {
      shard.generation.fetch_add(1, std::memory_order_relaxed);
    }
    // Re-checked per shard: a failure below degrades the tier mid-loop, and
    // the remaining shards must still get their in-memory seal (above) while
    // skipping all durable work.
    if (!DurableActive() || shard.wal == nullptr) {
      continue;
    }
    // Persist every chunk holding points the store has not seen (new chunks,
    // chunks grown by this seal, chunks trimmed by retention) — one batch of
    // appends, one fsync per shard.
    for (auto& [id, entry] : shard.series) {
      for (size_t i = 0; i < entry.data.chunk_count() && DurableActive(); ++i) {
        if (!entry.data.ChunkNeedsPersist(i)) {
          continue;
        }
        const CompressedTimeSeries& data = entry.data.ChunkData(i);
        const TieredSeries::ChunkInfo info = entry.data.GetChunkInfo(i);
        uint64_t offset = 0;
        if (!HandleDurableError(shard.chunk_store->Append(
                id, data.bytes(), data.bit_count(), info.count, info.first,
                info.last, &offset))) {
          break;  // Not appended — leave the chunk marked non-durable.
        }
        entry.data.MarkChunkDurable(i, offset, static_cast<uint32_t>(data.byte_size()),
                                    data.bit_count());
      }
    }
    if (!DurableActive() ||
        !HandleDurableError(shard.chunk_store->Sync())) {
      // No checkpoint for this shard: the WAL keeps its committed appends, so
      // nothing already durable is discarded on the failure path.
      continue;
    }
    // Checkpoint: the sealed history is now in the chunk file, so the WAL
    // shrinks to {latest retention cutoff, seal boundary, tail snapshots} —
    // recovery cost is bounded by the working set, not the ingest history.
    // Uncommitted appends still in the buffer are subsumed by the chunk
    // records just synced plus the tail snapshots below; left in place they
    // would lead the checkpoint frame and, replaying as newer points, make
    // recovery reject the snapshots behind them.
    shard.wal->DiscardPending();
    if (have_drop_cutoff_) {
      shard.wal->BufferDropBefore(last_drop_cutoff_);
    }
    shard.wal->BufferSealBoundary(boundary);
    for (auto& [id, entry] : shard.series) {
      const TimeSeries& tail = entry.data.tail();
      if (!tail.empty()) {
        shard.wal->BufferPoints(id, tail.timestamps(), tail.values());
      }
    }
    HandleDurableError(shard.wal->Rewrite());
  }
  if (options_.durable.enabled()) {
    last_seal_boundary_ = std::max(last_seal_boundary_, boundary);
  }
  if (DurableActive()) {
    // Degraded: keep everything resident — eviction's mapped readback is only
    // guaranteed for chunks persisted before the failure.
    EnforceSealedBudget();
  }
  MaybeEvictMaterialized();
}

void TimeSeriesDatabase::Expire(TimePoint cutoff) {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (auto it = shard.series.begin(); it != shard.series.end();) {
      it->second.data.DropBefore(cutoff);
      ++it->second.version;
      if (it->second.data.empty()) {
        if (it->second.materialized) {
          materialized_bytes_.fetch_sub(MaterializedBytes(*it->second.materialized),
                                        std::memory_order_relaxed);
        }
        it = shard.series.erase(it);
      } else {
        ++it;
      }
    }
    shard.generation.fetch_add(1, std::memory_order_relaxed);
    if (DurableActive() && shard.wal != nullptr) {
      // Force-commit the cutoff (after any buffered appends): recovery must
      // never resurrect dropped points from stale checkpoint snapshots or
      // chunk records still in the chunk file.
      shard.wal->BufferDropBefore(cutoff);
      CommitSymbols();
      HandleDurableError(shard.wal->Commit());
    }
  }
  if (options_.durable.enabled()) {
    // Tracked even when degraded: the next successful checkpoint (if the
    // tier recovers in a future process) and SealBefore's snapshot both
    // consult the in-memory cutoff.
    last_drop_cutoff_ = std::max(last_drop_cutoff_, cutoff);
    have_drop_cutoff_ = true;
  }
  MaybeEvictMaterialized();
}

void TimeSeriesDatabase::EnforceSealedBudget() {
  const size_t budget = options_.durable.resident_sealed_budget_bytes;
  if (budget == 0) {
    return;
  }
  // Single-writer phase: collect, then evict, with no mutation in between —
  // chunk indices stay stable. Oldest chunks first, with a full identity
  // tiebreak so the eviction order (and thus the runtime counters) is
  // deterministic for a fixed ingest schedule.
  struct Candidate {
    TimePoint first;
    InternedMetricId id;
    uint32_t shard;
    uint32_t index;
  };
  size_t resident = 0;
  std::vector<Candidate> candidates;
  for (size_t s = 0; s < shards_.size(); ++s) {
    Shard& shard = shards_[s];
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (auto& [id, entry] : shard.series) {
      resident += entry.data.resident_sealed_bytes();
      for (size_t i = 0; i < entry.data.chunk_count(); ++i) {
        const TieredSeries::ChunkInfo info = entry.data.GetChunkInfo(i);
        if (info.resident && info.count > 0 && info.durable_count == info.count) {
          candidates.push_back(Candidate{info.first, id, static_cast<uint32_t>(s),
                                         static_cast<uint32_t>(i)});
        }
      }
    }
  }
  if (resident <= budget) {
    return;
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.first != b.first) return a.first < b.first;
              if (a.id.service != b.id.service) return a.id.service < b.id.service;
              if (a.id.kind != b.id.kind) return a.id.kind < b.id.kind;
              if (a.id.entity != b.id.entity) return a.id.entity < b.id.entity;
              if (a.id.metadata != b.id.metadata) return a.id.metadata < b.id.metadata;
              return a.index < b.index;
            });
  for (const Candidate& candidate : candidates) {
    if (resident <= budget) {
      break;
    }
    Shard& shard = shards_[candidate.shard];
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.series.find(candidate.id);
    if (it == shard.series.end()) {
      continue;
    }
    const size_t freed = it->second.data.EvictChunk(candidate.index);
    resident -= freed;
    chunks_evicted_.fetch_add(1, std::memory_order_relaxed);
    evicted_bytes_.fetch_add(freed, std::memory_order_relaxed);
    // No version/generation bump: eviction changes where bytes live, not
    // what the series contains — readers' caches and the generation-gated
    // scan must not observe it.
  }
}

void TimeSeriesDatabase::MaybeEvictMaterialized() {
  const size_t budget = options_.materialized_budget_bytes;
  if (budget == 0 || materialized_bytes_.load(std::memory_order_relaxed) <= budget) {
    return;
  }
  // Drop-all policy: sweeps are rare (write-phase boundary, over budget) and
  // the caches rebuild lazily on the next Find, so precision isn't worth
  // tracking per-entry recency.
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (auto& [unused, entry] : shard.series) {
      entry.materialized.reset();
      entry.materialized_version = 0;
    }
  }
  materialized_bytes_.store(0, std::memory_order_relaxed);
  materialized_evictions_.fetch_add(1, std::memory_order_relaxed);
}

uint64_t TimeSeriesDatabase::generation() const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.generation.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t TimeSeriesDatabase::SeriesVersion(const InternedMetricId& id) const {
  const Shard& shard = shards_[ShardIndex(id)];
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.series.find(id);
  return it == shard.series.end() ? 0 : it->second.version;
}

TimeSeriesDatabase::DurableStats TimeSeriesDatabase::durable_stats() const {
  DurableStats stats;
  stats.enabled = options_.durable.enabled();
  if (!stats.enabled) {
    return stats;
  }
  stats.io_errors = durable_io_errors_.load(std::memory_order_relaxed);
  stats.degraded = durable_degraded_.load(std::memory_order_relaxed);
  // Null checks: a degraded open may have left later shards (or even the
  // symbols log) unopened.
  if (symbols_log_) {
    std::lock_guard<std::mutex> lock(symbols_log_mutex_);
    const WriteAheadLog::Stats& log = symbols_log_->stats();
    stats.group_commits += log.group_commits;
    stats.log_bytes += log.file_bytes;
    stats.log_bytes_written += log.bytes_written;
  }
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    if (shard.wal != nullptr) {
      const WriteAheadLog::Stats& log = shard.wal->stats();
      stats.group_commits += log.group_commits;
      stats.checkpoint_rewrites += log.rewrites;
      stats.log_bytes += log.file_bytes;
      stats.log_bytes_written += log.bytes_written;
    }
    if (shard.chunk_store != nullptr) {
      const ChunkStore::Stats& chunks = shard.chunk_store->stats();
      stats.chunk_file_bytes += chunks.file_bytes;
      stats.chunks_persisted += chunks.appends;
    }
  }
  stats.chunks_evicted = chunks_evicted_.load(std::memory_order_relaxed);
  stats.evicted_bytes = evicted_bytes_.load(std::memory_order_relaxed);
  stats.mapped_readback_decodes =
      mapped_readback_decodes_.load(std::memory_order_relaxed);
  stats.materialized_evictions =
      materialized_evictions_.load(std::memory_order_relaxed);
  stats.recoveries = recoveries_.load(std::memory_order_relaxed);
  stats.recovered_points = recovered_points_.load(std::memory_order_relaxed);
  stats.recovered_chunks = recovered_chunks_.load(std::memory_order_relaxed);
  stats.recovered_truncated_bytes =
      recovered_truncated_bytes_.load(std::memory_order_relaxed);
  // Write-phase fields; reading them from the stats (read) phase is safe
  // because no writer is concurrent by the phase discipline.
  stats.last_seal_boundary = last_seal_boundary_;
  stats.last_drop_cutoff = last_drop_cutoff_;
  return stats;
}

}  // namespace fbdetect
