#include "src/tsdb/database.h"

#include <algorithm>

#include "src/common/check.h"

namespace fbdetect {
namespace {

size_t RoundUpPow2(size_t value) {
  size_t pow2 = 1;
  while (pow2 < value) {
    pow2 <<= 1;
  }
  return pow2;
}

}  // namespace

// --- WriteBatch ---

WriteBatch::WriteBatch(TimeSeriesDatabase* db)
    : db_(db), per_shard_(db->shard_count()) {}

void WriteBatch::Add(const InternedMetricId& id, TimePoint timestamp, double value) {
  const auto [it, inserted] =
      column_index_.try_emplace(id, static_cast<uint32_t>(columns_.size()));
  if (inserted) {
    columns_.push_back(Column{id, {}, {}});
    per_shard_[db_->ShardIndex(id)].push_back(it->second);
  }
  Column& column = columns_[it->second];
  column.timestamps.push_back(timestamp);
  column.values.push_back(value);
  ++point_count_;
}

void WriteBatch::Add(const MetricId& id, TimePoint timestamp, double value) {
  Add(db_->Intern(id), timestamp, value);
}

void WriteBatch::MutateColumns(
    const std::function<void(const InternedMetricId&, std::vector<TimePoint>&,
                             std::vector<double>&)>& fn) {
  size_t points = 0;
  for (Column& column : columns_) {
    fn(column.id, column.timestamps, column.values);
    FBD_CHECK(column.timestamps.size() == column.values.size());
    points += column.timestamps.size();
  }
  point_count_ = points;
}

void WriteBatch::Commit() {
  if (point_count_ > 0) {
    db_->Apply(*this);
  }
  for (Column& column : columns_) {
    column.timestamps.clear();  // Keeps capacity (and the id mapping) for
    column.values.clear();      // the next fill.
  }
  point_count_ = 0;
}

// --- TimeSeriesDatabase ---

TimeSeriesDatabase::TimeSeriesDatabase(const TsdbOptions& options)
    : options_(options),
      shards_(RoundUpPow2(std::max<size_t>(1, options.shard_count))) {
  shard_mask_ = shards_.size() - 1;
}

InternedMetricId TimeSeriesDatabase::Intern(const MetricId& id) {
  return InternedMetricId{symbols_.Intern(id.service), id.kind,
                          symbols_.Intern(id.entity), symbols_.Intern(id.metadata)};
}

std::optional<InternedMetricId> TimeSeriesDatabase::TryIntern(
    const MetricId& id) const {
  const auto service = symbols_.Find(id.service);
  const auto entity = symbols_.Find(id.entity);
  const auto metadata = symbols_.Find(id.metadata);
  if (!service || !entity || !metadata) {
    return std::nullopt;
  }
  return InternedMetricId{*service, id.kind, *entity, *metadata};
}

MetricId TimeSeriesDatabase::Resolve(const InternedMetricId& id) const {
  return MetricId{symbols_.Name(id.service), id.kind, symbols_.Name(id.entity),
                  symbols_.Name(id.metadata)};
}

TimeSeriesDatabase::SeriesEntry& TimeSeriesDatabase::EntryLocked(
    Shard& shard, const InternedMetricId& id) {
  auto it = shard.series.find(id);
  if (it == shard.series.end()) {
    it = shard.series.emplace(id, SeriesEntry(options_.seal_chunk_points)).first;
  }
  return it->second;
}

void TimeSeriesDatabase::Write(const MetricId& id, TimePoint timestamp, double value) {
  Write(Intern(id), timestamp, value);
}

bool TimeSeriesDatabase::AppendCounted(Shard& shard, SeriesEntry& entry,
                                       TimePoint timestamp, double value) {
  switch (entry.data.TryAppend(timestamp, value)) {
    case AppendOutcome::kAppended:
      ++shard.ingest.accepted;
      return true;
    case AppendOutcome::kDuplicate:
      ++shard.ingest.dropped_duplicate;
      ++entry.rejected_duplicate;
      return false;
    case AppendOutcome::kOutOfOrder:
      ++shard.ingest.dropped_out_of_order;
      ++entry.rejected_out_of_order;
      return false;
  }
  return false;  // Unreachable.
}

void TimeSeriesDatabase::NotifyAppendLocked(const InternedMetricId& id,
                                            const SeriesEntry& entry,
                                            size_t tail_before) const {
  if (append_observer_ == nullptr) {
    return;
  }
  const TimeSeries& tail = entry.data.tail();
  if (tail.size() <= tail_before) {
    return;  // Nothing accepted (appends go to the tail only).
  }
  const size_t count = tail.size() - tail_before;
  append_observer_->OnAppend(
      id, std::span<const TimePoint>(tail.timestamps()).subspan(tail_before, count),
      std::span<const double>(tail.values()).subspan(tail_before, count));
}

void TimeSeriesDatabase::Write(const InternedMetricId& id, TimePoint timestamp,
                               double value) {
  Shard& shard = shards_[ShardIndex(id)];
  std::lock_guard<std::mutex> lock(shard.mutex);
  SeriesEntry& entry = EntryLocked(shard, id);
  const size_t tail_before = entry.data.tail().size();
  if (AppendCounted(shard, entry, timestamp, value)) {
    ++entry.version;
    shard.generation.fetch_add(1, std::memory_order_relaxed);
    NotifyAppendLocked(id, entry, tail_before);
  }
}

void TimeSeriesDatabase::WriteSeries(const MetricId& id, TimeSeries series) {
  const InternedMetricId interned = Intern(id);
  Shard& shard = shards_[ShardIndex(interned)];
  std::lock_guard<std::mutex> lock(shard.mutex);
  SeriesEntry& entry = EntryLocked(shard, interned);
  const size_t tail_before = entry.data.tail().size();
  bool stored = false;
  for (size_t i = 0; i < series.size(); ++i) {
    stored |= AppendCounted(shard, entry, series.timestamps()[i], series.values()[i]);
  }
  if (stored) {
    ++entry.version;
    shard.generation.fetch_add(1, std::memory_order_relaxed);
    NotifyAppendLocked(interned, entry, tail_before);
  }
}

void TimeSeriesDatabase::Apply(WriteBatch& batch) {
  FBD_CHECK(batch.db_ == this);
  for (size_t shard_index = 0; shard_index < batch.per_shard_.size(); ++shard_index) {
    const std::vector<uint32_t>& column_indices = batch.per_shard_[shard_index];
    if (column_indices.empty()) {
      continue;
    }
    Shard& shard = shards_[shard_index];
    std::lock_guard<std::mutex> lock(shard.mutex);
    bool changed = false;
    for (const uint32_t column_index : column_indices) {
      const WriteBatch::Column& column = batch.columns_[column_index];
      if (column.timestamps.empty()) {
        continue;  // Staged in an earlier fill of this batch, idle since.
      }
      SeriesEntry& entry = EntryLocked(shard, column.id);
      const size_t tail_before = entry.data.tail().size();
      bool stored = false;
      for (size_t i = 0; i < column.timestamps.size(); ++i) {
        stored |= AppendCounted(shard, entry, column.timestamps[i], column.values[i]);
      }
      if (stored) {
        ++entry.version;
        changed = true;
        NotifyAppendLocked(column.id, entry, tail_before);
      }
    }
    if (changed) {
      shard.generation.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

TimeSeriesDatabase::IngestStats TimeSeriesDatabase::ingest_stats() const {
  IngestStats total;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    total.accepted += shard.ingest.accepted;
    total.dropped_duplicate += shard.ingest.dropped_duplicate;
    total.dropped_out_of_order += shard.ingest.dropped_out_of_order;
  }
  return total;
}

void TimeSeriesDatabase::ForEachIngestReject(
    const std::function<void(const MetricId&, uint64_t, uint64_t)>& fn) const {
  struct Reject {
    MetricId id;
    uint64_t duplicate;
    uint64_t out_of_order;
  };
  std::vector<Reject> rejects;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (const auto& [id, entry] : shard.series) {
      if (entry.rejected_duplicate > 0 || entry.rejected_out_of_order > 0) {
        rejects.push_back(
            Reject{Resolve(id), entry.rejected_duplicate, entry.rejected_out_of_order});
      }
    }
  }
  std::sort(rejects.begin(), rejects.end(),
            [](const Reject& a, const Reject& b) { return a.id < b.id; });
  for (const Reject& reject : rejects) {
    fn(reject.id, reject.duplicate, reject.out_of_order);
  }
}

const TimeSeries* TimeSeriesDatabase::MaterializedLocked(const SeriesEntry& entry) const {
  if (!entry.materialized) {
    entry.materialized = std::make_unique<TimeSeries>();
  }
  if (entry.materialized_version != entry.version) {
    entry.materialized->Clear();
    entry.data.MaterializeAll(*entry.materialized);
    entry.materialized_version = entry.version;
  }
  return entry.materialized.get();
}

const TimeSeries* TimeSeriesDatabase::Find(const MetricId& id) const {
  const auto interned = TryIntern(id);
  return interned ? Find(*interned) : nullptr;
}

const TimeSeries* TimeSeriesDatabase::Find(const InternedMetricId& id) const {
  const Shard& shard = shards_[ShardIndex(id)];
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.series.find(id);
  if (it == shard.series.end()) {
    return nullptr;
  }
  if (it->second.data.chunk_count() == 0) {
    return &it->second.data.tail();  // Zero-copy: no sealed history.
  }
  return MaterializedLocked(it->second);
}

bool TimeSeriesDatabase::Contains(const MetricId& id) const {
  const auto interned = TryIntern(id);
  return interned && Contains(*interned);
}

bool TimeSeriesDatabase::Contains(const InternedMetricId& id) const {
  const Shard& shard = shards_[ShardIndex(id)];
  std::lock_guard<std::mutex> lock(shard.mutex);
  return shard.series.contains(id);
}

const TimeSeries* TimeSeriesDatabase::SeriesForScan(const MetricId& id, TimePoint begin,
                                                    TimeSeries& scratch,
                                                    Status* status) const {
  const auto interned = TryIntern(id);
  if (!interned) {
    if (status != nullptr) {
      *status = Status::Ok();  // Absent, not corrupt.
    }
    return nullptr;
  }
  return SeriesForScan(*interned, begin, scratch, status);
}

const TimeSeries* TimeSeriesDatabase::SeriesForScan(const InternedMetricId& id,
                                                    TimePoint begin, TimeSeries& scratch,
                                                    Status* status) const {
  if (status != nullptr) {
    *status = Status::Ok();
  }
  const Shard& shard = shards_[ShardIndex(id)];
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.series.find(id);
  if (it == shard.series.end()) {
    scan_misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  const TieredSeries& data = it->second.data;
  if (data.TailCovers(begin)) {
    scan_tail_hits_.fetch_add(1, std::memory_order_relaxed);
    return &data.tail();  // Zero-copy hot path: the scan range is all raw.
  }
  scan_sealed_decodes_.fetch_add(1, std::memory_order_relaxed);
  scratch.Clear();
  if (status == nullptr) {
    data.MaterializeFrom(begin, scratch);  // Aborts on corrupt sealed history.
    return &scratch;
  }
  *status = data.TryMaterializeFrom(begin, scratch);
  if (!status->ok()) {
    scan_decode_failures_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  return &scratch;
}

TimeSeriesDatabase::ScanStats TimeSeriesDatabase::scan_stats() const {
  ScanStats stats;
  stats.tail_hits = scan_tail_hits_.load(std::memory_order_relaxed);
  stats.sealed_decodes = scan_sealed_decodes_.load(std::memory_order_relaxed);
  stats.decode_failures = scan_decode_failures_.load(std::memory_order_relaxed);
  stats.misses = scan_misses_.load(std::memory_order_relaxed);
  stats.list_cache_hits = list_cache_hits_.load(std::memory_order_relaxed);
  stats.list_cache_misses = list_cache_misses_.load(std::memory_order_relaxed);
  stats.list_cache_shard_refreshes =
      list_cache_shard_refreshes_.load(std::memory_order_relaxed);
  return stats;
}

std::vector<MetricId> TimeSeriesDatabase::ListMetrics(const std::string& service) const {
  std::lock_guard<std::mutex> cache_lock(list_cache_mutex_);
  ListCacheEntry& cached = list_cache_[service];
  std::vector<uint64_t> generations(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    generations[i] = shards_[i].generation.load(std::memory_order_relaxed);
  }
  if (cached.shard_generations == generations) {
    list_cache_hits_.fetch_add(1, std::memory_order_relaxed);
    return cached.ids;
  }
  list_cache_misses_.fetch_add(1, std::memory_order_relaxed);
  const bool cold = cached.shard_generations.size() != shards_.size();
  if (cold) {
    cached.shard_generations.assign(shards_.size(), 0);
    cached.per_shard.assign(shards_.size(), {});
  }
  const auto service_symbol =
      service.empty() ? std::optional<uint32_t>(SymbolTable::kEmptySymbol)
                      : symbols_.Find(service);
  // Re-enumerate only shards whose generation moved since their slice was
  // built (all of them when cold); each slice is sorted on its own so the
  // merge below never re-sorts unchanged shards' ids.
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (!cold && cached.shard_generations[i] == generations[i]) {
      continue;
    }
    list_cache_shard_refreshes_.fetch_add(1, std::memory_order_relaxed);
    std::vector<MetricId>& slice = cached.per_shard[i];
    slice.clear();
    if (service_symbol) {
      const Shard& shard = shards_[i];
      std::lock_guard<std::mutex> lock(shard.mutex);
      for (const auto& [id, unused] : shard.series) {
        if (service.empty() || id.service == *service_symbol) {
          slice.push_back(Resolve(id));
        }
      }
      // Deterministic canonical order for reproducible pipeline runs;
      // MetricId's field-wise operator< avoids ToString() allocations.
      std::sort(slice.begin(), slice.end());
    }
  }
  // K-way merge of the sorted per-shard slices (shard count is small, so a
  // linear min-scan per output element is fine and allocation-free).
  cached.ids.clear();
  std::vector<size_t> cursor(shards_.size(), 0);
  for (;;) {
    size_t best = shards_.size();
    for (size_t i = 0; i < shards_.size(); ++i) {
      if (cursor[i] >= cached.per_shard[i].size()) {
        continue;
      }
      if (best == shards_.size() ||
          cached.per_shard[i][cursor[i]] < cached.per_shard[best][cursor[best]]) {
        best = i;
      }
    }
    if (best == shards_.size()) {
      break;
    }
    cached.ids.push_back(cached.per_shard[best][cursor[best]]);
    ++cursor[best];
  }
  cached.shard_generations = std::move(generations);
  return cached.ids;
}

std::vector<MetricId> TimeSeriesDatabase::ListMetricsOfKind(const std::string& service,
                                                            MetricKind kind) const {
  std::vector<MetricId> ids;
  for (MetricId& id : ListMetrics(service)) {
    if (id.kind == kind) {
      ids.push_back(std::move(id));
    }
  }
  return ids;
}

size_t TimeSeriesDatabase::metric_count() const {
  size_t count = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    count += shard.series.size();
  }
  return count;
}

size_t TimeSeriesDatabase::total_points() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (const auto& [unused, entry] : shard.series) {
      total += entry.data.size();
    }
  }
  return total;
}

TimeSeriesDatabase::MemoryStats TimeSeriesDatabase::memory_stats() const {
  MemoryStats stats;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (const auto& [unused, entry] : shard.series) {
      stats.raw_points += entry.data.tail().size();
      stats.sealed_points += entry.data.sealed_points();
      stats.sealed_bytes += entry.data.sealed_bytes();
    }
  }
  return stats;
}

void TimeSeriesDatabase::SealBefore(TimePoint boundary) {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    bool changed = false;
    for (auto& [unused, entry] : shard.series) {
      const size_t sealed_before = entry.data.sealed_points();
      entry.data.SealBefore(boundary);
      if (entry.data.sealed_points() != sealed_before) {
        ++entry.version;
        changed = true;
      }
    }
    if (changed) {
      shard.generation.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

void TimeSeriesDatabase::Expire(TimePoint cutoff) {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (auto it = shard.series.begin(); it != shard.series.end();) {
      it->second.data.DropBefore(cutoff);
      ++it->second.version;
      if (it->second.data.empty()) {
        it = shard.series.erase(it);
      } else {
        ++it;
      }
    }
    shard.generation.fetch_add(1, std::memory_order_relaxed);
  }
}

uint64_t TimeSeriesDatabase::generation() const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.generation.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t TimeSeriesDatabase::SeriesVersion(const InternedMetricId& id) const {
  const Shard& shard = shards_[ShardIndex(id)];
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.series.find(id);
  return it == shard.series.end() ? 0 : it->second.version;
}

}  // namespace fbdetect
