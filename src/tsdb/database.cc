#include "src/tsdb/database.h"

#include <algorithm>

namespace fbdetect {

void TimeSeriesDatabase::Write(const MetricId& id, TimePoint timestamp, double value) {
  ++generation_;
  series_[id].Append(timestamp, value);
}

void TimeSeriesDatabase::WriteSeries(const MetricId& id, TimeSeries series) {
  ++generation_;
  auto it = series_.find(id);
  if (it == series_.end()) {
    series_.emplace(id, std::move(series));
    return;
  }
  for (size_t i = 0; i < series.size(); ++i) {
    it->second.Append(series.timestamps()[i], series.values()[i]);
  }
}

const TimeSeries* TimeSeriesDatabase::Find(const MetricId& id) const {
  const auto it = series_.find(id);
  return it == series_.end() ? nullptr : &it->second;
}

bool TimeSeriesDatabase::Contains(const MetricId& id) const { return series_.contains(id); }

std::vector<MetricId> TimeSeriesDatabase::ListMetrics(const std::string& service) const {
  std::vector<MetricId> ids;
  for (const auto& [id, unused] : series_) {
    if (service.empty() || id.service == service) {
      ids.push_back(id);
    }
  }
  // Deterministic order for reproducible pipeline runs; MetricId's
  // field-wise operator< avoids two ToString() allocations per comparison.
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::vector<MetricId> TimeSeriesDatabase::ListMetricsOfKind(const std::string& service,
                                                            MetricKind kind) const {
  std::vector<MetricId> ids;
  for (MetricId& id : ListMetrics(service)) {
    if (id.kind == kind) {
      ids.push_back(std::move(id));
    }
  }
  return ids;
}

size_t TimeSeriesDatabase::total_points() const {
  size_t total = 0;
  for (const auto& [unused, series] : series_) {
    total += series.size();
  }
  return total;
}

void TimeSeriesDatabase::Expire(TimePoint cutoff) {
  ++generation_;
  for (auto it = series_.begin(); it != series_.end();) {
    it->second.DropBefore(cutoff);
    if (it->second.empty()) {
      it = series_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace fbdetect
