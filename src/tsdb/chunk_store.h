// Per-shard durable chunk file for sealed Gorilla chunks (DESIGN.md §15).
//
// Sealed chunks are immutable once persisted, so the file is append-only: a
// sequence of CRC-framed records, each carrying one chunk's identity, range,
// and encoded Gorilla payload. Readback is served through a memory mapping of
// the file — decoding a non-resident chunk walks the mapped payload in place
// via CompressedChunkView, so evicted history costs page cache, not heap.
//
// Record layout (native byte order; host-local storage):
//   u32 magic 'FBCK'   u32 crc (over everything after the crc field)
//   u32 service  u32 kind  u32 entity  u32 metadata   (InternedMetricId)
//   u32 count    u32 payload_len   u64 bit_count
//   i64 first    i64 last
//   payload_len bytes of Gorilla stream
//
// Recovery scans records sequentially, validating magic + CRC, and truncates
// at the first invalid record (the torn tail of an interrupted persist).
// A chunk may be persisted more than once — SealBefore grows the newest chunk
// and retention can trim a chunk's front, and in both cases the grown/trimmed
// chunk is re-appended in full. Restore order is file order, so the LAST
// record for a given range wins; TieredSeries::RestoreSealedChunk implements
// the supersede rule (pop previously restored chunks the incoming record
// overlaps).
//
// Mapping growth: the file is mapped in generations; when the mapped span no
// longer covers the file, a new, larger mapping is created and the old one is
// kept (never munmap'd) until destruction. Spans handed out by Payload()
// therefore stay valid for the store's lifetime, which is what lets the scan
// path hold decoded-from views across remaps without coordination.
#ifndef FBDETECT_SRC_TSDB_CHUNK_STORE_H_
#define FBDETECT_SRC_TSDB_CHUNK_STORE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "src/common/sim_time.h"
#include "src/common/status.h"
#include "src/tsdb/metric_id.h"
#include "src/tsdb/tiered_series.h"

namespace fbdetect {

class ChunkStore : public ChunkPayloadSource {
 public:
  struct Stats {
    uint64_t appends = 0;          // Chunk records written since open.
    uint64_t append_bytes = 0;     // Record bytes written since open.
    uint64_t file_bytes = 0;       // Current chunk file size.
    uint64_t restored_chunks = 0;  // Records delivered by Open's restore.
    uint64_t truncated_bytes = 0;  // Torn tail dropped by Open.
    uint64_t remaps = 0;           // Mapping generations created.
  };

  // One restored chunk record, delivered in file order. `payload_offset` /
  // `payload_len` locate the encoded stream for later Payload() calls.
  struct RestoredChunk {
    InternedMetricId id;
    uint64_t payload_offset = 0;
    uint32_t payload_len = 0;
    uint64_t bit_count = 0;
    uint32_t count = 0;
    TimePoint first = 0;
    TimePoint last = 0;
  };
  using RestoreFn = std::function<void(const RestoredChunk&)>;

  ChunkStore() = default;
  ~ChunkStore() override;
  ChunkStore(const ChunkStore&) = delete;
  ChunkStore& operator=(const ChunkStore&) = delete;

  // Opens (creating if absent) the chunk file at `path`, validates records
  // sequentially, delivers each through `restore`, and truncates any torn
  // tail so new records append to a clean prefix.
  Status Open(const std::string& path, const RestoreFn& restore, bool fsync);

  bool is_open() const { return fd_ >= 0; }

  // Appends one chunk record; on success fills `payload_offset` with the
  // durable location of the payload (for later Payload() readback). Not
  // synced — callers batch appends and call Sync() once per seal.
  Status Append(const InternedMetricId& id, std::span<const uint8_t> payload,
                uint64_t bit_count, uint32_t count, TimePoint first, TimePoint last,
                uint64_t* payload_offset);

  // fsync's the chunk file (one call covers all Appends since the last) and
  // extends the mapping over the appended records. Write phase only — after
  // it returns, Payload() can serve the new records without mutating any
  // store state, which is what makes Payload() safe for concurrent readers.
  Status Sync();

  // Returns the mapped bytes of a payload written by Append (and Sync'd) or
  // recovered by Open. The span stays valid until the store is destroyed
  // (mappings are never unmapped on growth). Read-only — safe to call from
  // concurrent scan threads. Aborts if the range is outside the mapping.
  std::span<const uint8_t> Payload(uint64_t offset, uint32_t len) const;

  // ChunkPayloadSource for the shard's TieredSeries instances.
  std::span<const uint8_t> ChunkPayload(uint64_t offset, uint32_t len) override {
    return Payload(offset, len);
  }

  const Stats& stats() const { return stats_; }

 private:
  // Ensures the current mapping covers [0, end). May create a new mapping
  // generation; never invalidates previously returned spans.
  Status EnsureMapped(uint64_t end);

  std::string path_;
  int fd_ = -1;
  bool fsync_ = true;
  uint64_t append_offset_ = 0;

  struct Mapping {
    uint8_t* data = nullptr;
    size_t size = 0;
  };
  std::vector<Mapping> mappings_;  // All generations; only back() is current.
  Stats stats_;
};

}  // namespace fbdetect

#endif  // FBDETECT_SRC_TSDB_CHUNK_STORE_H_
