#include "src/fleet/fleet.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/common/thread_pool.h"

namespace fbdetect {

ServiceSimulator* FleetSimulator::AddService(const ServiceConfig& config) {
  FBD_CHECK(FindService(config.name) == nullptr);
  services_.push_back(std::make_unique<ServiceSimulator>(config));
  return services_.back().get();
}

ServiceSimulator* FleetSimulator::FindService(const std::string& name) {
  for (const auto& service : services_) {
    if (service->config().name == name) {
      return service.get();
    }
  }
  return nullptr;
}

int64_t FleetSimulator::InjectEvent(InjectedEvent event, Commit* commit) {
  ServiceSimulator* service = FindService(event.service);
  FBD_CHECK(service != nullptr);
  event.event_id = next_event_id_++;
  if (commit != nullptr) {
    commit->service = event.service;
    event.commit_id = change_log_.Add(*commit);
  }
  service->ScheduleEvent(event);
  ground_truth_.push_back(event);
  return event.event_id;
}

void FleetSimulator::Run(TimePoint begin, TimePoint end,
                         const FleetIngestOptions& options) {
  FBD_CHECK(end >= begin);
  FBD_CHECK(options.threads >= 1);
  // One task per service: services are independent RNG streams writing
  // disjoint series, so per-series content is independent of how tasks are
  // scheduled across threads. Each worker stages points into its own
  // WriteBatch and commits at the flush threshold, so shard locks are taken
  // per batch, not per point. Services may use different tick widths; fire
  // each on its own schedule.
  ThreadPool pool(static_cast<size_t>(options.threads - 1));
  pool.ParallelFor(services_.size(), [&](size_t index) {
    ServiceSimulator& service = *services_[index];
    const Duration tick = service.config().tick;
    WriteBatch batch(&db_);
    const auto flush = [&batch, &options] {
      if (options.fault_injector != nullptr) {
        options.fault_injector->Corrupt(batch);
      }
      batch.Commit();
    };
    for (TimePoint t = begin + tick; t <= end; t += tick) {
      service.Tick(t, batch);
      if (batch.point_count() >= options.flush_points) {
        flush();
      }
    }
    flush();
  });
}

}  // namespace fbdetect
