#include "src/fleet/fleet.h"

#include <algorithm>

#include "src/common/check.h"

namespace fbdetect {

ServiceSimulator* FleetSimulator::AddService(const ServiceConfig& config) {
  FBD_CHECK(FindService(config.name) == nullptr);
  services_.push_back(std::make_unique<ServiceSimulator>(config));
  return services_.back().get();
}

ServiceSimulator* FleetSimulator::FindService(const std::string& name) {
  for (const auto& service : services_) {
    if (service->config().name == name) {
      return service.get();
    }
  }
  return nullptr;
}

int64_t FleetSimulator::InjectEvent(InjectedEvent event, Commit* commit) {
  ServiceSimulator* service = FindService(event.service);
  FBD_CHECK(service != nullptr);
  event.event_id = next_event_id_++;
  if (commit != nullptr) {
    commit->service = event.service;
    event.commit_id = change_log_.Add(*commit);
  }
  service->ScheduleEvent(event);
  ground_truth_.push_back(event);
  return event.event_id;
}

void FleetSimulator::Run(TimePoint begin, TimePoint end) {
  FBD_CHECK(end >= begin);
  // Services may use different tick widths; fire each on its own schedule.
  for (const auto& service : services_) {
    const Duration tick = service->config().tick;
    for (TimePoint t = begin + tick; t <= end; t += tick) {
      service->Tick(t, db_);
    }
  }
}

}  // namespace fbdetect
