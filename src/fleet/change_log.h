// Synthetic code/configuration change log.
//
// Stands in for Meta's commit and config-change feeds (DESIGN.md §4). Each
// commit records the subroutines it touches and a textual description; the
// root-cause analyzer consumes exactly these fields. Scenario generators
// create a steady stream of benign commits plus one "culprit" commit per
// injected regression.
#ifndef FBDETECT_SRC_FLEET_CHANGE_LOG_H_
#define FBDETECT_SRC_FLEET_CHANGE_LOG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/sim_time.h"

namespace fbdetect {

enum class ChangeType : int {
  kCode = 0,
  kConfiguration,
};

struct Commit {
  int64_t id = -1;
  ChangeType type = ChangeType::kCode;
  std::string service;
  TimePoint time = 0;
  std::string title;
  std::string description;
  std::vector<std::string> touched_subroutines;
};

class ChangeLog {
 public:
  // Adds a commit and returns its assigned id.
  int64_t Add(Commit commit);

  // nullptr when absent.
  const Commit* Find(int64_t id) const;

  // Commits with begin <= time < end, for one service ("" = all), ascending.
  std::vector<const Commit*> CommitsBetween(const std::string& service, TimePoint begin,
                                            TimePoint end) const;

  size_t size() const { return commits_.size(); }
  const std::vector<Commit>& commits() const { return commits_; }

 private:
  std::vector<Commit> commits_;  // Kept sorted by time (appends enforce it).
};

}  // namespace fbdetect

#endif  // FBDETECT_SRC_FLEET_CHANGE_LOG_H_
