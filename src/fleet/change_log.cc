#include "src/fleet/change_log.h"

#include <algorithm>

#include "src/common/check.h"

namespace fbdetect {

int64_t ChangeLog::Add(Commit commit) {
  commit.id = static_cast<int64_t>(commits_.size());
  FBD_CHECK(commits_.empty() || commit.time >= commits_.back().time);
  commits_.push_back(std::move(commit));
  return commits_.back().id;
}

const Commit* ChangeLog::Find(int64_t id) const {
  if (id < 0 || static_cast<size_t>(id) >= commits_.size()) {
    return nullptr;
  }
  return &commits_[static_cast<size_t>(id)];
}

std::vector<const Commit*> ChangeLog::CommitsBetween(const std::string& service, TimePoint begin,
                                                     TimePoint end) const {
  std::vector<const Commit*> matches;
  const auto first = std::lower_bound(
      commits_.begin(), commits_.end(), begin,
      [](const Commit& commit, TimePoint t) { return commit.time < t; });
  for (auto it = first; it != commits_.end() && it->time < end; ++it) {
    if (service.empty() || it->service == service) {
      matches.push_back(&*it);
    }
  }
  return matches;
}

}  // namespace fbdetect
