#include "src/fleet/events.h"

namespace fbdetect {

const char* EventKindName(EventKind kind) {
  switch (kind) {
    case EventKind::kStepRegression:
      return "step_regression";
    case EventKind::kGradualRegression:
      return "gradual_regression";
    case EventKind::kCostShift:
      return "cost_shift";
    case EventKind::kTransientIssue:
      return "transient_issue";
    case EventKind::kSeasonalShift:
      return "seasonal_shift";
  }
  return "unknown";
}

const char* TransientKindName(TransientKind kind) {
  switch (kind) {
    case TransientKind::kServerFailure:
      return "server_failure";
    case TransientKind::kMaintenance:
      return "maintenance";
    case TransientKind::kLoadSpike:
      return "load_spike";
    case TransientKind::kRollingUpdate:
      return "rolling_update";
    case TransientKind::kCanaryTest:
      return "canary_test";
    case TransientKind::kTrafficShift:
      return "traffic_shift";
  }
  return "unknown";
}

}  // namespace fbdetect
