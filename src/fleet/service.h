// Simulator for one service of the fleet.
//
// Models what the paper's §2 generative analysis assumes: every server draws
// CPU usage from a clipped normal whose (μ, σ²) depends on its hardware
// generation; the service's code is a call graph of k subroutines whose gCPU
// is measured by the sampling profiler; load follows a diurnal pattern; and
// injected events (regressions, cost shifts, transients, seasonal shifts)
// perturb the generative parameters at their scheduled times.
//
// Per tick, the simulator writes one bucket of every enabled metric into the
// shared TimeSeriesDatabase:
//   * per-subroutine gCPU (stack-trace sampling path),
//   * process-level CPU (fleet average across servers and generations),
//   * service and per-endpoint throughput / latency / error rate,
//   * CT-supply max-throughput and CT-demand peak-request series.
#ifndef FBDETECT_SRC_FLEET_SERVICE_H_
#define FBDETECT_SRC_FLEET_SERVICE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/random.h"
#include "src/common/sim_time.h"
#include "src/fleet/events.h"
#include "src/profiling/call_graph.h"
#include "src/profiling/profiler.h"
#include "src/tracing/trace_generator.h"
#include "src/tsdb/database.h"

namespace fbdetect {

struct ServerGeneration {
  double cpu_mean = 0.5;       // Mean utilization in [0, 1].
  double cpu_variance = 0.01;  // Per-sample variance.
  double fraction = 1.0;       // Share of the service's servers.
};

struct ServiceConfig {
  std::string name = "service";
  std::string language = "cpp";
  int num_servers = 1000;
  std::vector<ServerGeneration> generations = {
      {0.40, 0.01, 0.5},
      {0.60, 0.02, 0.5},
  };
  RandomCallGraphOptions call_graph;
  SamplingConfig sampling;
  Duration tick = Minutes(10);

  // Load seasonality (affects throughput and process CPU).
  Duration seasonal_period = kDay;
  double seasonal_load_amplitude = 0.15;

  // Diurnal code-mix seasonality (affects gCPU of a subset of subroutines).
  int num_seasonal_subroutines = 20;
  double seasonal_mix_amplitude = 0.25;

  // Endpoint / service-level metrics.
  int num_endpoints = 8;
  double base_throughput_per_server = 100.0;  // Requests/s at load factor 1.
  double throughput_noise = 0.02;             // Relative standard deviation.
  double base_latency_ms = 50.0;
  double latency_noise = 0.05;
  double base_error_rate = 0.001;
  double error_rate_noise = 0.3;

  bool emit_gcpu = true;
  bool emit_process_cpu = true;
  bool emit_endpoint_metrics = true;
  bool emit_ct_metrics = false;  // CT-supply / CT-demand series.

  // End-to-end-traced endpoint cost (§3: endpoint-level regressions).
  // Requires tracing: each endpoint gets an entry subroutine and its
  // kEndpointCost series aggregates all spans of sampled request traces.
  bool emit_endpoint_cost = false;
  int traces_per_endpoint_per_tick = 25;
  double trace_async_probability = 0.25;

  // Per-data-type I/O to a downstream database (§3: TAO). One
  // kIoPerDataType series per entry; events target a type by setting
  // InjectedEvent::subroutine to "io/<data_type>".
  std::vector<std::string> io_data_types;
  double base_io_per_server = 50.0;  // Ops/s per data type at load 1.
  double io_noise = 0.02;

  // SetFrameMetadata annotations (§3): this many subroutines get an
  // annotation ("feature/group<i>"); one gCPU series per distinct value is
  // emitted when emit_metadata_gcpu is set.
  int num_annotated_subroutines = 0;
  int num_annotation_groups = 4;
  bool emit_metadata_gcpu = false;

  uint64_t seed = 1;
};

class ServiceSimulator {
 public:
  explicit ServiceSimulator(const ServiceConfig& config);

  // Schedules an event; its start may be in the past of future ticks but
  // transitions are applied as tick time crosses them.
  void ScheduleEvent(const InjectedEvent& event);

  // Advances to time `t` (one bucket) and stages all metrics into `batch`
  // (which the caller commits). The batched form is the ingestion hot path:
  // metric identities are interned once and reused, so each tick stages
  // packed integer keys without constructing MetricId strings.
  void Tick(TimePoint t, WriteBatch& batch);

  // Convenience form: one-shot batch committed before returning.
  void Tick(TimePoint t, TimeSeriesDatabase& db);

  const ServiceConfig& config() const { return config_; }
  const CallGraph& graph() const { return graph_; }
  CallGraph& mutable_graph() { return graph_; }
  const std::vector<InjectedEvent>& events() const { return events_; }

  // Current gCPU expectation of a subroutine (reach probability), for tests
  // and ground-truth computation.
  double ExpectedGcpu(const std::string& subroutine) const;

 private:
  // Applies start/end transitions for all events whose boundary lies in
  // (last_tick, t].
  void ApplyEventTransitions(TimePoint t);

  // Multiplicative per-node factor currently applied by events.
  void ApplyFactor(NodeId node, double factor);

  // Seasonal load factor at time t (mean 1).
  double LoadFactor(TimePoint t) const;

  // Recomputes effective self costs = base * event factor * seasonal mix.
  void RefreshGraphCosts(TimePoint t);

  // (Re)builds cached interned metric handles for `db`.
  void EnsureHandles(TimeSeriesDatabase& db);

  void EmitGcpu(TimePoint t, WriteBatch& batch);
  void EmitProcessCpu(TimePoint t, WriteBatch& batch);
  void EmitEndpointMetrics(TimePoint t, WriteBatch& batch);
  void EmitCtMetrics(TimePoint t, WriteBatch& batch);
  void EmitEndpointCost(TimePoint t, WriteBatch& batch);
  void EmitIoMetrics(TimePoint t, WriteBatch& batch);

  ServiceConfig config_;
  Rng rng_;
  CallGraph graph_;
  SamplingProfiler profiler_;

  std::vector<double> base_costs_;       // Immutable post-construction.
  std::vector<double> event_factor_;     // Cumulative event multiplier per node.
  std::vector<int> seasonal_phase_;      // Phase bucket per seasonal node (-1 = none).
  double seasonal_mix_amplitude_ = 0.0;  // May be changed by kSeasonalShift.

  double baseline_total_cost_ = 0.0;

  // Service-level effect multipliers from active transients.
  double throughput_factor_ = 1.0;
  double latency_factor_ = 1.0;
  double error_factor_ = 1.0;
  double cpu_factor_ = 1.0;

  std::vector<InjectedEvent> events_;
  std::vector<bool> event_started_;
  std::vector<bool> event_ended_;
  std::vector<double> gradual_applied_;  // Fraction of ramp already applied.

  std::unordered_map<std::string, double> io_factor_;  // Per-data-type multiplier.

  std::vector<double> endpoint_weights_;
  std::vector<NodeId> endpoint_entries_;  // Entry subroutine per endpoint.
  std::vector<std::string> endpoint_names_;  // "endpoint_<i>", built once.
  TimePoint last_tick_ = -1;

  // Interned metric handles, valid for `handles_db_` only; built lazily on
  // the first tick against a database so each tick stages integer keys.
  struct MetricHandles {
    InternedMetricId process_cpu;
    InternedMetricId service_throughput;
    InternedMetricId ct_supply;
    InternedMetricId ct_demand;
    std::vector<InternedMetricId> endpoint_throughput;
    std::vector<InternedMetricId> endpoint_latency;
    std::vector<InternedMetricId> endpoint_error;
    std::vector<InternedMetricId> endpoint_cost;
    std::vector<InternedMetricId> io;  // Parallel to config().io_data_types.
  };
  TimeSeriesDatabase* handles_db_ = nullptr;
  MetricHandles handles_;
};

}  // namespace fbdetect

#endif  // FBDETECT_SRC_FLEET_SERVICE_H_
