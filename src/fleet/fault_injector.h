// Deterministic fault injection for fleet telemetry (chaos harness).
//
// Production monitoring data is dirty in ways the synthetic fleet is not:
// collectors crash and drop samples, buffers retransmit (duplicates) or
// arrive late (out-of-order), counters reset, hosts flap in and out of the
// fleet, exporters emit NaN/Inf, and per-host clocks skew. The FaultInjector
// corrupts a WriteBatch between generation and Commit with exactly these
// faults, so the robustness tests and the chaos CI job can drive the full
// pipeline over realistically dirty data with known ground truth.
//
// Every decision is a pure hash of (seed, metric identity, timestamp) — no
// mutable RNG state — so the injected faults are byte-identical regardless
// of ingest thread count, flush cadence, or the order batches commit in.
// The FaultLedger records every injected fault by series and kind; tests
// reconcile it against the pipeline's QuarantineReport and the database's
// ingest-reject counters.
#ifndef FBDETECT_SRC_FLEET_FAULT_INJECTOR_H_
#define FBDETECT_SRC_FLEET_FAULT_INJECTOR_H_

#include <array>
#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

#include "src/common/sim_time.h"
#include "src/tsdb/database.h"
#include "src/tsdb/metric_id.h"

namespace fbdetect {

enum class FaultKind : int {
  kDrop = 0,       // Sample silently dropped (collector crash / packet loss).
  kNan,            // Value replaced with NaN.
  kInf,            // Value replaced with +Inf.
  kDuplicate,      // Point retransmitted with the same timestamp.
  kOutOfOrder,     // Stale point re-sent behind newer data.
  kCounterReset,   // Value negated (counter wrap / agent restart).
  kFlap,           // Host dark for a whole epoch: all samples dropped.
  kClockSkew,      // Constant per-host timestamp offset.
};

inline constexpr size_t kFaultKindCount = 8;

const char* FaultKindName(FaultKind kind);

struct FaultInjectorConfig {
  uint64_t seed = 1;

  // Fraction of series eligible for faults; the rest pass through untouched
  // (the robustness tests' clean control group).
  double series_fraction = 0.3;

  // Per-point probabilities, applied only within selected series.
  double drop_rate = 0.0;
  double nan_rate = 0.0;
  double inf_rate = 0.0;
  double duplicate_rate = 0.0;
  double out_of_order_rate = 0.0;

  // Counter resets: each reset_duration-wide epoch of a selected series goes
  // negative with probability reset_rate.
  double reset_rate = 0.0;
  Duration reset_duration = Hours(1);

  // Host flapping: each flap_epoch-wide epoch of a selected series goes
  // completely dark with probability flap_rate.
  double flap_rate = 0.0;
  Duration flap_epoch = Hours(6);

  // Clock skew: a selected series is additionally skewed with probability
  // skew_fraction; its every timestamp shifts by a constant offset in
  // [1, max_skew] seconds (constant per series, so order is preserved).
  double skew_fraction = 0.0;
  Duration max_skew = Minutes(3);

  // All eight fault kinds at per-point/per-epoch probability `rate`, over
  // the default 30% of series. AllKinds(0.10, seed) is the acceptance
  // configuration: 10% faults of every kind on the dirty subset.
  static FaultInjectorConfig AllKinds(double rate, uint64_t seed);
};

// Thread-safe per-series, per-kind fault counts. Ingest workers record
// concurrently; readers take a consistent snapshot after Run() returns.
class FaultLedger {
 public:
  void Record(const MetricId& metric, FaultKind kind, uint64_t count = 1);

  uint64_t Count(const MetricId& metric, FaultKind kind) const;
  uint64_t TotalByKind(FaultKind kind) const;
  uint64_t total() const;
  bool SeriesHasFault(const MetricId& metric) const;
  // Series with at least one recorded fault, in canonical MetricId order.
  std::vector<MetricId> FaultedSeries() const;

 private:
  mutable std::mutex mutex_;
  std::map<MetricId, std::array<uint64_t, kFaultKindCount>> counts_;
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultInjectorConfig config) : config_(config) {}

  // Corrupts every staged column of `batch` in place (drops, value
  // corruption, skew, appended duplicate/stale retransmits). Called by the
  // fleet simulator immediately before each Commit; safe to call from
  // several ingest workers on their private batches concurrently.
  void Corrupt(WriteBatch& batch);

  // Whether `metric` is in the faultable subset (pure hash; for tests).
  bool SeriesSelected(const MetricId& metric) const;

  const FaultLedger& ledger() const { return ledger_; }
  const FaultInjectorConfig& config() const { return config_; }

 private:
  FaultInjectorConfig config_;
  FaultLedger ledger_;
};

}  // namespace fbdetect

#endif  // FBDETECT_SRC_FLEET_FAULT_INJECTOR_H_
