#include "src/fleet/scenario.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace fbdetect {

std::vector<double> SimulateFleetAverage(const FleetAverageOptions& options, Rng& rng) {
  FBD_CHECK(!options.groups.empty());
  double total_servers = 0.0;
  for (const auto& group : options.groups) {
    FBD_CHECK(group.num_servers > 0.0);
    total_servers += group.num_servers;
  }
  std::vector<double> series(options.num_ticks, 0.0);
  for (size_t t = 0; t < options.num_ticks; ++t) {
    const bool post = t >= options.change_tick;
    double weighted = 0.0;
    for (const auto& group : options.groups) {
      const double mean = group.mean + (post ? group.regression : 0.0);
      const double sd = std::sqrt(group.variance / group.num_servers);
      const double draw =
          std::clamp(rng.Normal(mean, sd), options.clip_lo, options.clip_hi);
      weighted += draw * (group.num_servers / total_servers);
    }
    series[t] = weighted;
  }
  return series;
}

std::vector<double> SimulateSingleServerSeries(size_t num_ticks, double regression, Rng& rng) {
  std::vector<double> series(num_ticks, 0.0);
  const double sd = std::sqrt(0.01);
  for (size_t t = 0; t < num_ticks; ++t) {
    const double mean = 0.5 + (t >= num_ticks / 2 ? regression : 0.0);
    series[t] = rng.ClippedNormal(mean, sd, 0.0, 1.0);
  }
  return series;
}

namespace {

// Picks a subroutine that has non-negligible cost so injected effects are
// observable. Prefers mid-weight LEAF nodes: for a leaf, self cost equals
// subtree cost, so a relative self-cost change translates 1:1 into a
// relative gCPU change (interior nodes dilute the effect through their
// children). Heavy nodes make regressions trivial, feather-weight nodes make
// them invisible.
std::string PickTargetSubroutine(const ServiceSimulator& service, Rng& rng) {
  const CallGraph& graph = service.graph();
  const std::vector<double> reach = graph.ReachProbabilities();
  std::vector<NodeId> candidates;
  for (size_t i = 0; i < reach.size(); ++i) {
    if (reach[i] > 0.0005 && reach[i] < 0.15 &&
        graph.edges(static_cast<NodeId>(i)).empty()) {
      candidates.push_back(static_cast<NodeId>(i));
    }
  }
  if (candidates.empty()) {
    for (size_t i = 0; i < reach.size(); ++i) {
      if (reach[i] > 0.0005 && reach[i] < 0.15) {
        candidates.push_back(static_cast<NodeId>(i));
      }
    }
  }
  if (candidates.empty()) {
    for (size_t i = 0; i < reach.size(); ++i) {
      if (reach[i] > 0.0) {
        candidates.push_back(static_cast<NodeId>(i));
      }
    }
  }
  FBD_CHECK(!candidates.empty());
  return graph.node(candidates[rng.NextUint64(candidates.size())]).name;
}

// Picks a sibling (same class) of `name` for cost shifts; falls back to any
// other subroutine.
std::string PickShiftSibling(const ServiceSimulator& service, const std::string& name, Rng& rng) {
  const CallGraph& graph = service.graph();
  const NodeId id = graph.FindByName(name);
  FBD_CHECK(id != kInvalidNode);
  std::vector<NodeId> siblings = graph.NodesInClass(graph.node(id).class_name);
  std::erase(siblings, id);
  if (siblings.empty()) {
    for (size_t i = 0; i < graph.node_count(); ++i) {
      if (static_cast<NodeId>(i) != id) {
        siblings.push_back(static_cast<NodeId>(i));
      }
    }
  }
  FBD_CHECK(!siblings.empty());
  return graph.node(siblings[rng.NextUint64(siblings.size())]).name;
}

Commit MakeCulpritCommit(const std::string& subroutine, TimePoint time, EventKind kind,
                         Rng& rng) {
  Commit commit;
  commit.type = rng.NextBool(0.8) ? ChangeType::kCode : ChangeType::kConfiguration;
  commit.time = time;
  commit.touched_subroutines = {subroutine};
  switch (kind) {
    case EventKind::kStepRegression:
    case EventKind::kGradualRegression:
      commit.title = "Update logic in " + subroutine;
      commit.description = "Adds validation and extra processing to " + subroutine +
                           "; loosening constraints for " + subroutine + ".";
      break;
    case EventKind::kCostShift:
      commit.title = "Refactor " + subroutine;
      commit.description = "Moves helper code into " + subroutine + " without behavior change.";
      break;
    default:
      commit.title = "Touch " + subroutine;
      commit.description = "Routine maintenance of " + subroutine + ".";
      break;
  }
  return commit;
}

}  // namespace

Scenario GenerateScenario(FleetSimulator& fleet, const ScenarioOptions& options) {
  Rng rng(options.seed);

  ServiceConfig config;
  config.name = options.service_name;
  config.language = options.language;
  config.num_servers = options.num_servers;
  config.call_graph.num_subroutines = options.num_subroutines;
  config.sampling.samples_per_bucket = options.samples_per_bucket;
  config.sampling.bucket_width = options.tick;
  config.tick = options.tick;
  if (options.gcpu_only) {
    config.emit_process_cpu = false;
    config.emit_endpoint_metrics = false;
  }
  config.seed = rng.NextUint64();

  Scenario scenario;
  scenario.service = fleet.AddService(config);
  scenario.begin = 0;
  scenario.end = options.duration;

  // Events are placed after one full historical window's worth of warmup so
  // detectors always have a baseline; leave the final 10% clear so extended
  // windows can observe persistence.
  const TimePoint event_lo = options.duration * 2 / 5;
  const TimePoint event_hi = options.duration * 9 / 10;
  FBD_CHECK(event_hi > event_lo);
  auto random_time = [&]() {
    return event_lo + static_cast<TimePoint>(
                          rng.NextUint64(static_cast<uint64_t>(event_hi - event_lo)));
  };
  auto log_uniform = [&](double lo, double hi) {
    return std::exp(rng.Uniform(std::log(lo), std::log(hi)));
  };

  struct Pending {
    InjectedEvent event;
    bool has_commit = false;
    Commit commit;
  };
  std::vector<Pending> pending;

  for (int i = 0; i < options.num_step_regressions; ++i) {
    Pending p;
    p.event.kind = EventKind::kStepRegression;
    p.event.service = options.service_name;
    p.event.subroutine = PickTargetSubroutine(*scenario.service, rng);
    p.event.start = random_time();
    p.event.magnitude = log_uniform(options.min_regression_magnitude,
                                    options.max_regression_magnitude);
    p.has_commit = true;
    p.commit = MakeCulpritCommit(p.event.subroutine, p.event.start - Minutes(5),
                                 p.event.kind, rng);
    pending.push_back(std::move(p));
  }
  for (int i = 0; i < options.num_gradual_regressions; ++i) {
    Pending p;
    p.event.kind = EventKind::kGradualRegression;
    p.event.service = options.service_name;
    p.event.subroutine = PickTargetSubroutine(*scenario.service, rng);
    p.event.start = random_time();
    p.event.ramp = Days(3);
    p.event.magnitude = log_uniform(options.min_regression_magnitude,
                                    options.max_regression_magnitude);
    p.has_commit = true;
    p.commit = MakeCulpritCommit(p.event.subroutine, p.event.start - Minutes(5),
                                 p.event.kind, rng);
    pending.push_back(std::move(p));
  }
  for (int i = 0; i < options.num_cost_shifts; ++i) {
    Pending p;
    p.event.kind = EventKind::kCostShift;
    p.event.service = options.service_name;
    p.event.subroutine = PickTargetSubroutine(*scenario.service, rng);
    p.event.shift_source = PickShiftSibling(*scenario.service, p.event.subroutine, rng);
    p.event.start = random_time();
    p.event.magnitude = rng.Uniform(0.3, 0.9);  // Fraction of source cost moved.
    p.has_commit = true;
    p.commit = MakeCulpritCommit(p.event.subroutine, p.event.start - Minutes(5),
                                 p.event.kind, rng);
    pending.push_back(std::move(p));
  }
  for (int i = 0; i < options.num_transients; ++i) {
    Pending p;
    p.event.kind = EventKind::kTransientIssue;
    p.event.transient_kind = static_cast<TransientKind>(rng.NextUint64(6));
    p.event.service = options.service_name;
    if (p.event.transient_kind == TransientKind::kCanaryTest ||
        p.event.transient_kind == TransientKind::kTrafficShift) {
      p.event.subroutine = PickTargetSubroutine(*scenario.service, rng);
    }
    p.event.start = random_time();
    p.event.duration =
        options.min_transient_duration +
        static_cast<Duration>(rng.NextUint64(static_cast<uint64_t>(
            options.max_transient_duration - options.min_transient_duration)));
    p.event.magnitude = log_uniform(options.min_transient_magnitude,
                                    options.max_transient_magnitude);
    pending.push_back(std::move(p));
  }
  for (int i = 0; i < options.num_seasonal_shifts; ++i) {
    Pending p;
    p.event.kind = EventKind::kSeasonalShift;
    p.event.service = options.service_name;
    p.event.start = random_time();
    p.event.magnitude = rng.Uniform(0.1, 0.4);
    pending.push_back(std::move(p));
  }

  // Background commits: benign changes touching random subroutines.
  std::vector<Commit> background;
  for (int i = 0; i < options.num_background_commits; ++i) {
    Commit commit;
    commit.type = rng.NextBool(0.85) ? ChangeType::kCode : ChangeType::kConfiguration;
    commit.service = options.service_name;
    commit.time = static_cast<TimePoint>(
        rng.NextUint64(static_cast<uint64_t>(options.duration)));
    const std::string subroutine = PickTargetSubroutine(*scenario.service, rng);
    commit.title = "Improve documentation of " + subroutine;
    commit.description = "No functional change in " + subroutine + ".";
    commit.touched_subroutines = {subroutine};
    background.push_back(std::move(commit));
  }

  // The change log requires time-ordered appends: interleave culprit and
  // background commits by time, then inject events (event injection does not
  // care about ordering).
  std::sort(pending.begin(), pending.end(), [](const Pending& a, const Pending& b) {
    return a.commit.time < b.commit.time;
  });
  std::sort(background.begin(), background.end(),
            [](const Commit& a, const Commit& b) { return a.time < b.time; });
  size_t bi = 0;
  for (Pending& p : pending) {
    if (p.has_commit) {
      while (bi < background.size() && background[bi].time <= p.commit.time) {
        fleet.change_log().Add(std::move(background[bi]));
        ++bi;
      }
      fleet.InjectEvent(p.event, &p.commit);
    }
  }
  while (bi < background.size()) {
    fleet.change_log().Add(std::move(background[bi]));
    ++bi;
  }
  for (Pending& p : pending) {
    if (!p.has_commit) {
      fleet.InjectEvent(p.event);
    }
  }

  return scenario;
}

}  // namespace fbdetect
