// Ground-truth events injected into the simulated fleet.
//
// Each event models one of the phenomena the paper's detectors must handle:
//  * step / gradual regressions — true positives the pipeline must report;
//  * cost shifts — §5.4's false-positive source (refactoring moves self cost
//    between subroutines of the same class without changing the total);
//  * transient issues — §5.2.2's false-positive source (server failures,
//    maintenance, load spikes, rolling updates, canary tests, traffic
//    shifts), which self-recover after `duration`;
//  * seasonal shifts — changes in the diurnal mix that the seasonality
//    detector must not report.
// Events carry the id of the code/config commit that caused them (when one
// exists) so root-cause analysis can be scored against ground truth.
#ifndef FBDETECT_SRC_FLEET_EVENTS_H_
#define FBDETECT_SRC_FLEET_EVENTS_H_

#include <cstdint>
#include <string>

#include "src/common/sim_time.h"

namespace fbdetect {

enum class EventKind : int {
  kStepRegression = 0,
  kGradualRegression,
  kCostShift,
  kTransientIssue,
  kSeasonalShift,
};

enum class TransientKind : int {
  kServerFailure = 0,
  kMaintenance,
  kLoadSpike,
  kRollingUpdate,
  kCanaryTest,
  kTrafficShift,
};

const char* EventKindName(EventKind kind);
const char* TransientKindName(TransientKind kind);

struct InjectedEvent {
  int64_t event_id = -1;
  EventKind kind = EventKind::kStepRegression;
  TransientKind transient_kind = TransientKind::kLoadSpike;  // For transients.
  std::string service;
  std::string subroutine;         // Affected subroutine ("" = service level).
  std::string shift_source;       // Cost shift: subroutine the cost moves FROM.
  TimePoint start = 0;
  Duration duration = 0;          // 0 = permanent (regressions).
  Duration ramp = 0;              // Gradual regressions: time to full effect.
  double magnitude = 0.0;         // Relative self-cost (or load) multiplier - 1,
                                  // e.g. 0.05 = +5%.
  int64_t commit_id = -1;         // Culprit change; -1 when none exists.

  // True regressions are the events the pipeline is expected to report.
  bool IsTrueRegression() const {
    return kind == EventKind::kStepRegression || kind == EventKind::kGradualRegression;
  }
};

}  // namespace fbdetect

#endif  // FBDETECT_SRC_FLEET_EVENTS_H_
