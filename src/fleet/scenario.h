// Scenario generators: labelled synthetic workloads for the evaluation
// benches, plus the §2 feasibility-simulation helpers behind Figures 1–3.
#ifndef FBDETECT_SRC_FLEET_SCENARIO_H_
#define FBDETECT_SRC_FLEET_SCENARIO_H_

#include <string>
#include <vector>

#include "src/common/random.h"
#include "src/common/sim_time.h"
#include "src/fleet/fleet.h"

namespace fbdetect {

// ---------------------------------------------------------------------------
// §2 feasibility simulations (Figures 1(a), 2, 3).
// ---------------------------------------------------------------------------

struct FleetAverageOptions {
  // Each group of servers draws per-tick CPU from a clipped normal.
  struct Group {
    double num_servers = 250000;
    double mean = 0.40;          // Pre-regression mean.
    double variance = 0.01;
    double regression = 0.00003;  // Added to the mean after the change point.
  };
  std::vector<Group> groups = {
      {0.5, 0.40, 0.01, 0.00003},  // num_servers filled by caller.
      {0.5, 0.60, 0.02, 0.00007},
  };
  size_t num_ticks = 200;
  size_t change_tick = 100;  // First post-regression tick.
  double clip_lo = 0.0;
  double clip_hi = 1.0;
};

// Average of m per-server series: tick value ~ weighted mean over groups of
// Normal(mu_g, sigma_g^2 / m_g) (the Law-of-Large-Numbers closed form; the
// paper's Figure 2/3 construction). Returns num_ticks values.
std::vector<double> SimulateFleetAverage(const FleetAverageOptions& options, Rng& rng);

// Single-server series from Figure 1(a): mean 50%, variance 0.01, +0.005%
// regression halfway, clipped to [0, 1].
std::vector<double> SimulateSingleServerSeries(size_t num_ticks, double regression, Rng& rng);

// ---------------------------------------------------------------------------
// Labelled month-long scenarios for the pipeline benches (Tables 3/4, Fig 8).
// ---------------------------------------------------------------------------

struct ScenarioOptions {
  std::string service_name = "frontfaas_sim";
  std::string language = "php";
  int num_servers = 10000;
  int num_subroutines = 400;
  Duration duration = Days(30);
  Duration tick = Minutes(10);
  uint64_t samples_per_bucket = 2000000;

  int num_step_regressions = 12;
  int num_gradual_regressions = 4;
  int num_cost_shifts = 8;
  int num_transients = 60;
  int num_seasonal_shifts = 2;
  int num_background_commits = 300;  // Benign commits (no perf effect).

  // Regression magnitudes are log-uniform in [min, max] (relative change of
  // the target subroutine's self cost).
  double min_regression_magnitude = 0.05;
  double max_regression_magnitude = 0.60;

  double min_transient_magnitude = 0.05;
  double max_transient_magnitude = 0.50;
  Duration min_transient_duration = Minutes(20);
  Duration max_transient_duration = Hours(6);

  // When set, the service emits ONLY per-subroutine gCPU series — the clean
  // setup for FP/FN accounting, where a single absolute threshold applies to
  // every monitored series.
  bool gcpu_only = false;

  uint64_t seed = 42;
};

struct Scenario {
  ServiceSimulator* service = nullptr;  // Owned by the fleet.
  TimePoint begin = 0;
  TimePoint end = 0;
};

// Builds a service inside `fleet`, schedules the configured mix of events
// with culprit + background commits, and returns the handle. Call
// fleet.Run(scenario.begin, scenario.end) to materialize the data.
Scenario GenerateScenario(FleetSimulator& fleet, const ScenarioOptions& options);

}  // namespace fbdetect

#endif  // FBDETECT_SRC_FLEET_SCENARIO_H_
