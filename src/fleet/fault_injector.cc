#include "src/fleet/fault_injector.h"

#include <cmath>
#include <limits>
#include <string_view>
#include <utility>

#include "src/common/check.h"

namespace fbdetect {
namespace {

// FNV-1a over the metric identity strings; stable across processes and
// independent of symbol-table interning order.
uint64_t HashString(uint64_t h, std::string_view s) {
  for (const char c : s) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

// splitmix64 finalizer: turns structured inputs into well-mixed bits.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Uniform in [0, 1) from 53 mixed bits.
double UnitRoll(uint64_t h) {
  return static_cast<double>(Mix(h) >> 11) * 0x1.0p-53;
}

// Per-decision salts keep the rolls for different fault kinds independent.
enum Salt : uint64_t {
  kSaltSelect = 0x5e1ec7ull,
  kSaltSkewRoll = 0x5ce31ull,
  kSaltSkewAmount = 0x5ce32ull,
  kSaltDrop = 0xd301ull,
  kSaltNan = 0x4a41ull,
  kSaltInf = 0x1f41ull,
  kSaltDuplicate = 0xd0b1ull,
  kSaltOutOfOrder = 0x0301ull,
  kSaltReset = 0x4e5e7ull,
  kSaltFlap = 0xf1a9ull,
};

uint64_t SeriesHash(uint64_t seed, const MetricId& id) {
  uint64_t h = HashString(0xcbf29ce484222325ull ^ seed, id.service);
  h = Mix(h ^ static_cast<uint64_t>(id.kind));
  h = HashString(h, id.entity);
  h = HashString(h, id.metadata);
  return h;
}

}  // namespace

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDrop:
      return "drop";
    case FaultKind::kNan:
      return "nan";
    case FaultKind::kInf:
      return "inf";
    case FaultKind::kDuplicate:
      return "duplicate";
    case FaultKind::kOutOfOrder:
      return "out_of_order";
    case FaultKind::kCounterReset:
      return "counter_reset";
    case FaultKind::kFlap:
      return "flap";
    case FaultKind::kClockSkew:
      return "clock_skew";
  }
  return "unknown";
}

FaultInjectorConfig FaultInjectorConfig::AllKinds(double rate, uint64_t seed) {
  FaultInjectorConfig config;
  config.seed = seed;
  config.drop_rate = rate;
  config.nan_rate = rate;
  config.inf_rate = rate;
  config.duplicate_rate = rate;
  config.out_of_order_rate = rate;
  config.reset_rate = rate;
  config.flap_rate = rate;
  config.skew_fraction = rate;
  return config;
}

void FaultLedger::Record(const MetricId& metric, FaultKind kind, uint64_t count) {
  if (count == 0) {
    return;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = counts_.try_emplace(metric);
  if (inserted) {
    it->second.fill(0);
  }
  it->second[static_cast<size_t>(kind)] += count;
}

uint64_t FaultLedger::Count(const MetricId& metric, FaultKind kind) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counts_.find(metric);
  if (it == counts_.end()) {
    return 0;
  }
  return it->second[static_cast<size_t>(kind)];
}

uint64_t FaultLedger::TotalByKind(FaultKind kind) const {
  std::lock_guard<std::mutex> lock(mutex_);
  uint64_t total = 0;
  for (const auto& [metric, counts] : counts_) {
    total += counts[static_cast<size_t>(kind)];
  }
  return total;
}

uint64_t FaultLedger::total() const {
  std::lock_guard<std::mutex> lock(mutex_);
  uint64_t total = 0;
  for (const auto& [metric, counts] : counts_) {
    for (const uint64_t count : counts) {
      total += count;
    }
  }
  return total;
}

bool FaultLedger::SeriesHasFault(const MetricId& metric) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counts_.contains(metric);
}

std::vector<MetricId> FaultLedger::FaultedSeries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<MetricId> series;
  series.reserve(counts_.size());
  for (const auto& [metric, counts] : counts_) {
    series.push_back(metric);  // std::map iterates in canonical order.
  }
  return series;
}

bool FaultInjector::SeriesSelected(const MetricId& metric) const {
  const uint64_t h = SeriesHash(config_.seed, metric);
  return UnitRoll(h ^ kSaltSelect) < config_.series_fraction;
}

void FaultInjector::Corrupt(WriteBatch& batch) {
  const TimeSeriesDatabase* db = batch.db();
  FBD_CHECK(db != nullptr);
  std::vector<TimePoint> out_timestamps;
  std::vector<double> out_values;
  batch.MutateColumns([&](const InternedMetricId& interned,
                          std::vector<TimePoint>& timestamps,
                          std::vector<double>& values) {
    if (timestamps.empty()) {
      return;
    }
    const MetricId metric = db->Resolve(interned);
    const uint64_t series = SeriesHash(config_.seed, metric);
    if (UnitRoll(series ^ kSaltSelect) >= config_.series_fraction) {
      return;  // Clean control group: untouched.
    }

    // Constant per-series skew, decided once per series.
    Duration skew = 0;
    if (config_.skew_fraction > 0 &&
        UnitRoll(series ^ kSaltSkewRoll) < config_.skew_fraction) {
      const uint64_t span = static_cast<uint64_t>(std::max<Duration>(1, config_.max_skew));
      skew = static_cast<Duration>(Mix(series ^ kSaltSkewAmount) % span) + 1;
    }

    out_timestamps.clear();
    out_values.clear();
    out_timestamps.reserve(timestamps.size() + timestamps.size() / 4);
    out_values.reserve(values.size() + values.size() / 4);

    for (size_t i = 0; i < timestamps.size(); ++i) {
      const TimePoint t = timestamps[i];
      const uint64_t point = Mix(series ^ static_cast<uint64_t>(t));

      // Host flapping: whole epochs go dark.
      if (config_.flap_rate > 0) {
        const uint64_t epoch = static_cast<uint64_t>(t / std::max<Duration>(1, config_.flap_epoch));
        if (UnitRoll(Mix(series ^ epoch) ^ kSaltFlap) < config_.flap_rate) {
          ledger_.Record(metric, FaultKind::kFlap);
          continue;
        }
      }
      // Independent sample drops.
      if (config_.drop_rate > 0 && UnitRoll(point ^ kSaltDrop) < config_.drop_rate) {
        ledger_.Record(metric, FaultKind::kDrop);
        continue;
      }

      // Value corruption.
      double value = values[i];
      const uint64_t reset_epoch =
          static_cast<uint64_t>(t / std::max<Duration>(1, config_.reset_duration));
      if (config_.reset_rate > 0 &&
          UnitRoll(Mix(series ^ reset_epoch) ^ kSaltReset) < config_.reset_rate) {
        // Counter wrap / agent restart: the non-negative metric goes negative
        // for the whole reset epoch.
        value = -std::fabs(value) - 1.0;
        ledger_.Record(metric, FaultKind::kCounterReset);
      } else if (config_.nan_rate > 0 && UnitRoll(point ^ kSaltNan) < config_.nan_rate) {
        value = std::numeric_limits<double>::quiet_NaN();
        ledger_.Record(metric, FaultKind::kNan);
      } else if (config_.inf_rate > 0 && UnitRoll(point ^ kSaltInf) < config_.inf_rate) {
        value = std::numeric_limits<double>::infinity();
        ledger_.Record(metric, FaultKind::kInf);
      }

      TimePoint out_t = t;
      if (skew != 0) {
        out_t += skew;  // Constant offset: strictly-increasing order survives.
        ledger_.Record(metric, FaultKind::kClockSkew);
      }
      out_timestamps.push_back(out_t);
      out_values.push_back(value);

      // Retransmit faults ride behind the point they duplicate, so the
      // database provably rejects them (same or older than the newest stored
      // point) and ledger counts reconcile exactly with ingest rejects.
      if (config_.duplicate_rate > 0 &&
          UnitRoll(point ^ kSaltDuplicate) < config_.duplicate_rate) {
        out_timestamps.push_back(out_t);
        out_values.push_back(value);
        ledger_.Record(metric, FaultKind::kDuplicate);
      }
      if (config_.out_of_order_rate > 0 &&
          UnitRoll(point ^ kSaltOutOfOrder) < config_.out_of_order_rate) {
        out_timestamps.push_back(out_t - 1);
        out_values.push_back(value);
        ledger_.Record(metric, FaultKind::kOutOfOrder);
      }
    }
    timestamps.swap(out_timestamps);
    values.swap(out_values);
  });
}

}  // namespace fbdetect
