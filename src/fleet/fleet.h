// The fleet simulator: a set of services, a shared clock, a shared
// TimeSeriesDatabase, a ChangeLog, and the ground-truth event registry.
// Substitutes for Meta's production fleet (DESIGN.md §4).
#ifndef FBDETECT_SRC_FLEET_FLEET_H_
#define FBDETECT_SRC_FLEET_FLEET_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/sim_time.h"
#include "src/fleet/change_log.h"
#include "src/fleet/events.h"
#include "src/fleet/fault_injector.h"
#include "src/fleet/service.h"
#include "src/tsdb/database.h"

namespace fbdetect {

// Controls one Run() ingestion pass.
struct FleetIngestOptions {
  // Worker threads ticking services in parallel. Services are independent
  // RNG streams writing disjoint series, so results are byte-identical for
  // any thread count.
  int threads = 1;
  // Each worker commits its WriteBatch once it has staged this many points
  // (and at the end of its service's schedule).
  size_t flush_points = 4096;
  // When non-null, every staged batch is corrupted (FaultInjector::Corrupt)
  // immediately before commit — the chaos-testing path. Fault decisions are
  // pure hashes of (seed, series, timestamp), so the injected database
  // content stays byte-identical for any threads/flush_points combination.
  // Must outlive the Run() call; not owned.
  FaultInjector* fault_injector = nullptr;
};

class FleetSimulator {
 public:
  FleetSimulator() = default;
  // Configures the backing database (shard count, chunk sealing).
  explicit FleetSimulator(const TsdbOptions& tsdb_options) : db_(tsdb_options) {}
  FleetSimulator(const FleetSimulator&) = delete;
  FleetSimulator& operator=(const FleetSimulator&) = delete;

  // Adds a service; returns a stable pointer owned by the fleet.
  ServiceSimulator* AddService(const ServiceConfig& config);

  ServiceSimulator* FindService(const std::string& name);

  // Schedules an event on its service and registers it as ground truth.
  // When `commit` is non-null, the commit is added to the change log and the
  // event is linked to it. Returns the event id.
  int64_t InjectEvent(InjectedEvent event, Commit* commit = nullptr);

  // Runs all services from `begin` (exclusive of begin itself: the first tick
  // fires at begin + tick) through `end` inclusive, writing into db().
  void Run(TimePoint begin, TimePoint end) { Run(begin, end, FleetIngestOptions{}); }

  // As above, with batched ingestion across `options.threads` workers (one
  // task per service). Database content is identical for any thread count.
  void Run(TimePoint begin, TimePoint end, const FleetIngestOptions& options);

  TimeSeriesDatabase& db() { return db_; }
  const TimeSeriesDatabase& db() const { return db_; }
  ChangeLog& change_log() { return change_log_; }
  const ChangeLog& change_log() const { return change_log_; }
  const std::vector<InjectedEvent>& ground_truth() const { return ground_truth_; }
  const std::vector<std::unique_ptr<ServiceSimulator>>& services() const { return services_; }

 private:
  std::vector<std::unique_ptr<ServiceSimulator>> services_;
  TimeSeriesDatabase db_;
  ChangeLog change_log_;
  std::vector<InjectedEvent> ground_truth_;
  int64_t next_event_id_ = 0;
};

}  // namespace fbdetect

#endif  // FBDETECT_SRC_FLEET_FLEET_H_
