#include "src/fleet/service.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"
#include "src/common/logging.h"

namespace fbdetect {
namespace {

// Normalizes generation fractions so they sum to 1.
std::vector<ServerGeneration> NormalizeGenerations(std::vector<ServerGeneration> generations) {
  FBD_CHECK(!generations.empty());
  double total = 0.0;
  for (const ServerGeneration& g : generations) {
    FBD_CHECK(g.fraction >= 0.0);
    total += g.fraction;
  }
  FBD_CHECK(total > 0.0);
  for (ServerGeneration& g : generations) {
    g.fraction /= total;
  }
  return generations;
}

}  // namespace

ServiceSimulator::ServiceSimulator(const ServiceConfig& config)
    : config_(config),
      rng_(config.seed),
      graph_(GenerateRandomCallGraph(config.call_graph, rng_)),
      profiler_(config.name, config.sampling),
      seasonal_mix_amplitude_(config.seasonal_mix_amplitude) {
  config_.generations = NormalizeGenerations(config_.generations);
  FBD_CHECK(config_.tick > 0);
  FBD_CHECK(config_.num_servers > 0);

  const size_t n = graph_.node_count();
  base_costs_.resize(n);
  for (size_t i = 0; i < n; ++i) {
    base_costs_[i] = graph_.node(static_cast<NodeId>(i)).self_cost;
  }
  event_factor_.assign(n, 1.0);
  seasonal_phase_.assign(n, -1);
  // Choose the diurnal-mix subroutines deterministically from the seed.
  const int seasonal = std::min<int>(config_.num_seasonal_subroutines, static_cast<int>(n));
  for (int i = 0; i < seasonal; ++i) {
    const size_t node = rng_.NextUint64(n);
    seasonal_phase_[node] = static_cast<int>(rng_.NextUint64(8));
  }
  baseline_total_cost_ = graph_.TotalCost();

  endpoint_weights_.resize(static_cast<size_t>(std::max(1, config_.num_endpoints)));
  double weight_total = 0.0;
  for (double& w : endpoint_weights_) {
    w = rng_.Uniform(0.5, 2.0);
    weight_total += w;
  }
  for (double& w : endpoint_weights_) {
    w /= weight_total;
  }

  // Endpoint entry subroutines for end-to-end tracing: round-robin over the
  // graph's roots so each endpoint exercises a distinct entry path.
  const std::vector<NodeId>& roots = graph_.roots();
  endpoint_entries_.resize(endpoint_weights_.size());
  for (size_t e = 0; e < endpoint_entries_.size(); ++e) {
    endpoint_entries_[e] = roots.empty() ? kInvalidNode : roots[e % roots.size()];
  }

  // SetFrameMetadata annotations on random subroutines.
  const int annotated = std::min<int>(config_.num_annotated_subroutines, static_cast<int>(n));
  for (int i = 0; i < annotated; ++i) {
    const NodeId node = static_cast<NodeId>(rng_.NextUint64(n));
    graph_.mutable_node(node).metadata =
        "feature/group" + std::to_string(i % std::max(1, config_.num_annotation_groups));
  }

  for (const std::string& data_type : config_.io_data_types) {
    io_factor_[data_type] = 1.0;
  }

  endpoint_names_.reserve(endpoint_weights_.size());
  for (size_t e = 0; e < endpoint_weights_.size(); ++e) {
    endpoint_names_.push_back("endpoint_" + std::to_string(e));
  }
}

void ServiceSimulator::EnsureHandles(TimeSeriesDatabase& db) {
  if (handles_db_ == &db) {
    return;
  }
  handles_db_ = &db;
  handles_ = MetricHandles{};
  handles_.process_cpu = db.Intern(MetricId{config_.name, MetricKind::kCpu, {}, {}});
  handles_.service_throughput =
      db.Intern(MetricId{config_.name, MetricKind::kThroughput, {}, {}});
  handles_.ct_supply = db.Intern(MetricId{config_.name, MetricKind::kMaxThroughput, {}, {}});
  handles_.ct_demand = db.Intern(MetricId{config_.name, MetricKind::kPeakDemand, {}, {}});
  for (const std::string& endpoint : endpoint_names_) {
    handles_.endpoint_throughput.push_back(
        db.Intern(MetricId{config_.name, MetricKind::kThroughput, endpoint, {}}));
    handles_.endpoint_latency.push_back(
        db.Intern(MetricId{config_.name, MetricKind::kLatency, endpoint, {}}));
    handles_.endpoint_error.push_back(
        db.Intern(MetricId{config_.name, MetricKind::kErrorRate, endpoint, {}}));
    handles_.endpoint_cost.push_back(
        db.Intern(MetricId{config_.name, MetricKind::kEndpointCost, endpoint, {}}));
  }
  for (const std::string& data_type : config_.io_data_types) {
    handles_.io.push_back(
        db.Intern(MetricId{config_.name, MetricKind::kIoPerDataType, data_type, {}}));
  }
}

void ServiceSimulator::ScheduleEvent(const InjectedEvent& event) {
  FBD_CHECK(event.service == config_.name);
  events_.push_back(event);
  event_started_.push_back(false);
  event_ended_.push_back(false);
  gradual_applied_.push_back(0.0);
}

void ServiceSimulator::ApplyFactor(NodeId node, double factor) {
  event_factor_[static_cast<size_t>(node)] *= factor;
}

void ServiceSimulator::ApplyEventTransitions(TimePoint t) {
  for (size_t i = 0; i < events_.size(); ++i) {
    const InjectedEvent& event = events_[i];
    const NodeId target =
        event.subroutine.empty() ? kInvalidNode : graph_.FindByName(event.subroutine);

    // Start transition.
    if (!event_started_[i] && t >= event.start) {
      event_started_[i] = true;
      switch (event.kind) {
        case EventKind::kStepRegression:
          if (target != kInvalidNode) {
            ApplyFactor(target, 1.0 + event.magnitude);
          } else if (event.subroutine.rfind("io/", 0) == 0) {
            // Per-data-type I/O regression (TAO-style, §3): target the
            // downstream ops rate of one data type.
            io_factor_[event.subroutine.substr(3)] *= 1.0 + event.magnitude;
          } else {
            // Service-level regression: per-request CPU rises. Incoming
            // traffic (throughput/demand) is exogenous and unaffected;
            // capacity effects surface via the CT max-throughput series,
            // which divides by cpu_factor_.
            cpu_factor_ *= 1.0 + event.magnitude;
          }
          break;
        case EventKind::kGradualRegression:
          // Handled incrementally below.
          break;
        case EventKind::kCostShift: {
          const NodeId source = graph_.FindByName(event.shift_source);
          if (source != kInvalidNode && target != kInvalidNode) {
            // Move `magnitude` fraction of the source's base cost to target.
            const double source_cost =
                base_costs_[static_cast<size_t>(source)] * event_factor_[static_cast<size_t>(source)];
            const double moved = event.magnitude * source_cost;
            const double target_cost =
                base_costs_[static_cast<size_t>(target)] * event_factor_[static_cast<size_t>(target)];
            if (source_cost > 0.0) {
              event_factor_[static_cast<size_t>(source)] *= (source_cost - moved) / source_cost;
            }
            if (target_cost > 0.0) {
              event_factor_[static_cast<size_t>(target)] *= (target_cost + moved) / target_cost;
            } else {
              // Target had no cost: give it the moved amount via base adjust.
              base_costs_[static_cast<size_t>(target)] = moved;
              event_factor_[static_cast<size_t>(target)] = 1.0;
            }
          }
          break;
        }
        case EventKind::kTransientIssue:
          switch (event.transient_kind) {
            case TransientKind::kServerFailure:
            case TransientKind::kMaintenance:
            case TransientKind::kRollingUpdate:
              throughput_factor_ *= 1.0 - event.magnitude;
              latency_factor_ *= 1.0 + event.magnitude;
              break;
            case TransientKind::kLoadSpike:
              throughput_factor_ *= 1.0 + event.magnitude;
              cpu_factor_ *= 1.0 + event.magnitude;
              latency_factor_ *= 1.0 + 0.5 * event.magnitude;
              break;
            case TransientKind::kCanaryTest:
            case TransientKind::kTrafficShift:
              if (target != kInvalidNode) {
                ApplyFactor(target, 1.0 + event.magnitude);
              }
              error_factor_ *= 1.0 + event.magnitude;
              break;
          }
          break;
        case EventKind::kSeasonalShift:
          seasonal_mix_amplitude_ *= 1.0 + event.magnitude;
          break;
      }
    }

    // Gradual ramp: apply the remaining fraction of the ramp seen this tick.
    if (event.kind == EventKind::kGradualRegression && event_started_[i] &&
        gradual_applied_[i] < 1.0 && target != kInvalidNode) {
      const Duration ramp = std::max<Duration>(event.ramp, config_.tick);
      const double progress =
          std::clamp(static_cast<double>(t - event.start) / static_cast<double>(ramp), 0.0, 1.0);
      if (progress > gradual_applied_[i]) {
        // Target cumulative factor at `progress` is (1+m)^progress.
        const double target_factor = std::pow(1.0 + event.magnitude, progress);
        const double current_factor = std::pow(1.0 + event.magnitude, gradual_applied_[i]);
        ApplyFactor(target, target_factor / current_factor);
        gradual_applied_[i] = progress;
      }
    }

    // End transition (transients revert their effects).
    if (event_started_[i] && !event_ended_[i] && event.duration > 0 &&
        t >= event.start + event.duration) {
      event_ended_[i] = true;
      if (event.kind == EventKind::kTransientIssue) {
        switch (event.transient_kind) {
          case TransientKind::kServerFailure:
          case TransientKind::kMaintenance:
          case TransientKind::kRollingUpdate:
            throughput_factor_ /= 1.0 - event.magnitude;
            latency_factor_ /= 1.0 + event.magnitude;
            break;
          case TransientKind::kLoadSpike:
            throughput_factor_ /= 1.0 + event.magnitude;
            cpu_factor_ /= 1.0 + event.magnitude;
            latency_factor_ /= 1.0 + 0.5 * event.magnitude;
            break;
          case TransientKind::kCanaryTest:
          case TransientKind::kTrafficShift:
            if (target != kInvalidNode) {
              ApplyFactor(target, 1.0 / (1.0 + event.magnitude));
            }
            error_factor_ /= 1.0 + event.magnitude;
            break;
        }
      }
    }
  }
}

double ServiceSimulator::LoadFactor(TimePoint t) const {
  if (config_.seasonal_load_amplitude <= 0.0 || config_.seasonal_period <= 0) {
    return 1.0;
  }
  const double phase =
      2.0 * M_PI * static_cast<double>(t % config_.seasonal_period) /
      static_cast<double>(config_.seasonal_period);
  return 1.0 + config_.seasonal_load_amplitude * std::sin(phase);
}

void ServiceSimulator::RefreshGraphCosts(TimePoint t) {
  const size_t n = graph_.node_count();
  for (size_t i = 0; i < n; ++i) {
    double cost = base_costs_[i] * event_factor_[i];
    if (seasonal_phase_[i] >= 0 && config_.seasonal_period > 0) {
      const double phase = 2.0 * M_PI *
                               (static_cast<double>(t % config_.seasonal_period) /
                                static_cast<double>(config_.seasonal_period)) +
                           static_cast<double>(seasonal_phase_[i]) * (M_PI / 4.0);
      cost *= 1.0 + seasonal_mix_amplitude_ * std::sin(phase);
      cost = std::max(cost, 0.0);
    }
    graph_.mutable_node(static_cast<NodeId>(i)).self_cost = cost;
  }
}

void ServiceSimulator::EmitGcpu(TimePoint t, WriteBatch& batch) {
  profiler_.WriteGcpuBucket(graph_, t, rng_, batch);
}

void ServiceSimulator::EmitProcessCpu(TimePoint t, WriteBatch& batch) {
  // Fleet-average CPU: weighted across generations; the average of m clipped
  // normals is approximated by Normal(mu, sigma^2/m) (Law of Large Numbers,
  // Appendix A.1).
  const double load = LoadFactor(t);
  // Subroutine-level regressions raise total CPU proportionally to the total
  // graph cost change.
  const double graph_ratio =
      baseline_total_cost_ > 0.0 ? graph_.TotalCost() / baseline_total_cost_ : 1.0;
  double average = 0.0;
  for (const ServerGeneration& generation : config_.generations) {
    const double servers =
        std::max(1.0, generation.fraction * static_cast<double>(config_.num_servers));
    const double mean = generation.cpu_mean * load * cpu_factor_ * graph_ratio;
    const double sd = std::sqrt(generation.cpu_variance / servers);
    average += generation.fraction * std::clamp(rng_.Normal(mean, sd), 0.0, 1.0);
  }
  batch.Add(handles_.process_cpu, t, average);
}

void ServiceSimulator::EmitEndpointMetrics(TimePoint t, WriteBatch& batch) {
  const double load = LoadFactor(t);
  const double total_throughput = config_.base_throughput_per_server *
                                  static_cast<double>(config_.num_servers) * load *
                                  throughput_factor_;
  batch.Add(handles_.service_throughput, t,
            std::max(0.0, rng_.Normal(total_throughput,
                                      total_throughput * config_.throughput_noise)));

  for (size_t e = 0; e < endpoint_weights_.size(); ++e) {
    const double tp = total_throughput * endpoint_weights_[e];
    batch.Add(handles_.endpoint_throughput[e], t,
              std::max(0.0, rng_.Normal(tp, tp * config_.throughput_noise)));

    const double latency = config_.base_latency_ms * latency_factor_ *
                           (1.0 + 0.2 * (load - 1.0));
    batch.Add(handles_.endpoint_latency[e], t,
              std::max(0.0, rng_.Normal(latency, latency * config_.latency_noise)));

    const double errors = config_.base_error_rate * error_factor_;
    batch.Add(handles_.endpoint_error[e], t,
              std::max(0.0, rng_.Normal(errors, errors * config_.error_rate_noise)));
  }
}

void ServiceSimulator::EmitCtMetrics(TimePoint t, WriteBatch& batch) {
  // CT-supply: per-server maximum throughput from periodic load tests. It is
  // inversely proportional to per-request CPU cost.
  const double graph_ratio =
      baseline_total_cost_ > 0.0 ? graph_.TotalCost() / baseline_total_cost_ : 1.0;
  const double max_tp =
      config_.base_throughput_per_server * 1.5 / (cpu_factor_ * graph_ratio);
  batch.Add(handles_.ct_supply, t, std::max(0.0, rng_.Normal(max_tp, max_tp * 0.03)));

  // CT-demand: total peak requests across all servers.
  const double demand = config_.base_throughput_per_server *
                        static_cast<double>(config_.num_servers) * LoadFactor(t) *
                        throughput_factor_;
  batch.Add(handles_.ct_demand, t, std::max(0.0, rng_.Normal(demand, demand * 0.03)));
}

void ServiceSimulator::EmitEndpointCost(TimePoint t, WriteBatch& batch) {
  TraceGeneratorOptions options;
  options.async_probability = config_.trace_async_probability;
  const TraceGenerator generator(&graph_, options);
  const int traces = std::max(1, config_.traces_per_endpoint_per_tick);
  for (size_t e = 0; e < endpoint_entries_.size(); ++e) {
    if (endpoint_entries_[e] == kInvalidNode) {
      continue;
    }
    const double cost =
        generator.MeanEndpointCost(endpoint_names_[e], endpoint_entries_[e], traces, rng_);
    batch.Add(handles_.endpoint_cost[e], t, cost);
  }
}

void ServiceSimulator::EmitIoMetrics(TimePoint t, WriteBatch& batch) {
  const double load = LoadFactor(t);
  for (size_t i = 0; i < config_.io_data_types.size(); ++i) {
    const double rate = config_.base_io_per_server * static_cast<double>(config_.num_servers) *
                        load * io_factor_[config_.io_data_types[i]];
    batch.Add(handles_.io[i], t, std::max(0.0, rng_.Normal(rate, rate * config_.io_noise)));
  }
}

void ServiceSimulator::Tick(TimePoint t, WriteBatch& batch) {
  FBD_CHECK(t > last_tick_);
  EnsureHandles(*batch.db());
  ApplyEventTransitions(t);
  RefreshGraphCosts(t);
  if (config_.emit_gcpu) {
    EmitGcpu(t, batch);
  }
  if (config_.emit_metadata_gcpu) {
    profiler_.WriteMetadataGcpuBucket(graph_, t, rng_, batch);
  }
  if (config_.emit_process_cpu) {
    EmitProcessCpu(t, batch);
  }
  if (config_.emit_endpoint_metrics) {
    EmitEndpointMetrics(t, batch);
  }
  if (config_.emit_ct_metrics) {
    EmitCtMetrics(t, batch);
  }
  if (config_.emit_endpoint_cost) {
    EmitEndpointCost(t, batch);
  }
  if (!config_.io_data_types.empty()) {
    EmitIoMetrics(t, batch);
  }
  last_tick_ = t;
}

void ServiceSimulator::Tick(TimePoint t, TimeSeriesDatabase& db) {
  WriteBatch batch(&db);
  Tick(t, batch);
  batch.Commit();
}

double ServiceSimulator::ExpectedGcpu(const std::string& subroutine) const {
  const NodeId id = graph_.FindByName(subroutine);
  if (id == kInvalidNode) {
    return 0.0;
  }
  return graph_.ReachProbabilities()[static_cast<size_t>(id)];
}

}  // namespace fbdetect
