// Invariant-checking macros in the style of Fuchsia/absl CHECK.
//
// FBD_CHECK(cond) aborts with a diagnostic when `cond` is false, in every
// build mode. FBD_DCHECK(cond) is compiled out of release builds and is meant
// for hot paths. Both evaluate their condition exactly once.
#ifndef FBDETECT_SRC_COMMON_CHECK_H_
#define FBDETECT_SRC_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace fbdetect {

[[noreturn]] inline void CheckFailed(const char* file, int line, const char* expr) {
  std::fprintf(stderr, "FBD_CHECK failed at %s:%d: %s\n", file, line, expr);
  std::fflush(stderr);
  std::abort();
}

}  // namespace fbdetect

#define FBD_CHECK(cond)                                 \
  do {                                                  \
    if (!(cond)) {                                      \
      ::fbdetect::CheckFailed(__FILE__, __LINE__, #cond); \
    }                                                   \
  } while (0)

#ifdef NDEBUG
#define FBD_DCHECK(cond) \
  do {                   \
  } while (0)
#else
#define FBD_DCHECK(cond) FBD_CHECK(cond)
#endif

#endif  // FBDETECT_SRC_COMMON_CHECK_H_
