// Minimal leveled logger used across the library.
//
// Logging is off by default below kWarning so that benchmarks and tests stay
// quiet; callers (examples, CLI harnesses) can lower the threshold.
#ifndef FBDETECT_SRC_COMMON_LOGGING_H_
#define FBDETECT_SRC_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace fbdetect {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
};

// Returns the current global threshold; messages below it are dropped.
LogLevel GetLogLevel();

// Sets the global threshold. Thread-safe (relaxed atomic).
void SetLogLevel(LogLevel level);

// Writes one formatted line to stderr. Prefer the FBD_LOG macro.
void LogMessage(LogLevel level, const char* file, int line, const std::string& message);

// Internal helper: builds the message via an ostringstream then emits it on
// destruction, so call sites can stream arbitrary values.
class LogStream {
 public:
  LogStream(LogLevel level, const char* file, int line) : level_(level), file_(file), line_(line) {}
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;
  ~LogStream() { LogMessage(level_, file_, line_, stream_.str()); }

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace fbdetect

#define FBD_LOG(level) ::fbdetect::LogStream(::fbdetect::LogLevel::level, __FILE__, __LINE__)

#endif  // FBDETECT_SRC_COMMON_LOGGING_H_
