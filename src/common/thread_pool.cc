#include "src/common/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <utility>

namespace fbdetect {

namespace {

uint64_t NowNanos() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
}

}  // namespace

ThreadPool::Stats ThreadPool::stats() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return stats_;
}

ThreadPool::ThreadPool(size_t num_threads) {
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::DrainBatch(uint64_t batch, const std::function<void(size_t)>& task) {
  while (true) {
    size_t index;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      // The batch guard keeps a straggler that wakes late from executing (or
      // double-counting) indices of a NEWER batch with the OLD task.
      if (batch_id_ != batch || next_index_ >= num_tasks_) {
        return;
      }
      index = next_index_++;
    }
    try {
      task(index);
    } catch (...) {
      // Keep the first exception; later ones of the same batch are dropped.
      // The index still counts as completed so the join never deadlocks.
      std::unique_lock<std::mutex> lock(mutex_);
      if (batch_id_ == batch && batch_exception_ == nullptr) {
        batch_exception_ = std::current_exception();
      }
    }
    bool last = false;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      last = batch_id_ == batch && ++completed_ == num_tasks_;
    }
    if (last) {
      done_cv_.notify_all();
    }
  }
}

void ThreadPool::WorkerLoop() {
  uint64_t seen_batch = 0;
  while (true) {
    const std::function<void(size_t)>* task = nullptr;
    uint64_t batch = 0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this, seen_batch]() {
        return stop_ || (task_ != nullptr && batch_id_ != seen_batch);
      });
      if (stop_) {
        return;
      }
      batch = batch_id_;
      task = task_;
    }
    seen_batch = batch;
    DrainBatch(batch, *task);
  }
}

void ThreadPool::ParallelFor(size_t num_tasks, const std::function<void(size_t)>& task) {
  if (num_tasks == 0) {
    return;
  }
  const uint64_t batch_start = NowNanos();
  if (workers_.empty() || num_tasks == 1) {
    // Same exception contract as the threaded path: the first throw is
    // captured, every other index still runs, and the exception surfaces at
    // the end of the batch.
    std::exception_ptr exception;
    for (size_t i = 0; i < num_tasks; ++i) {
      try {
        task(i);
      } catch (...) {
        if (exception == nullptr) {
          exception = std::current_exception();
        }
      }
    }
    {
      std::unique_lock<std::mutex> lock(mutex_);
      ++stats_.batches;
      stats_.tasks += num_tasks;
      stats_.max_batch_tasks = std::max<uint64_t>(stats_.max_batch_tasks, num_tasks);
      stats_.wall_ns += NowNanos() - batch_start;
    }
    if (exception != nullptr) {
      std::rethrow_exception(exception);
    }
    return;
  }
  uint64_t batch = 0;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    task_ = &task;
    next_index_ = 0;
    num_tasks_ = num_tasks;
    completed_ = 0;
    batch_exception_ = nullptr;
    batch = ++batch_id_;
  }
  work_cv_.notify_all();
  // The caller participates, so a batch always makes progress even while the
  // workers are still waking up.
  DrainBatch(batch, task);
  std::exception_ptr exception;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [this]() { return completed_ == num_tasks_; });
    task_ = nullptr;
    exception = std::exchange(batch_exception_, nullptr);
    ++stats_.batches;
    stats_.tasks += num_tasks;
    stats_.max_batch_tasks = std::max<uint64_t>(stats_.max_batch_tasks, num_tasks);
    stats_.wall_ns += NowNanos() - batch_start;
  }
  if (exception != nullptr) {
    std::rethrow_exception(exception);
  }
}

}  // namespace fbdetect
