#include "src/common/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <utility>

namespace fbdetect {

namespace {

uint64_t NowNanos() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now().time_since_epoch())
                                   .count());
}

}  // namespace

ThreadPool::Stats ThreadPool::stats() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return stats_;
}

ThreadPool::ThreadPool(size_t num_threads) {
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::DrainBatch(Batch& batch) {
  while (true) {
    // Uncontended atomic claim; indices past num_tasks mean the batch is
    // drained (the counter overshoots by at most one per participant).
    const size_t index = batch.next.fetch_add(1, std::memory_order_relaxed);
    if (index >= batch.num_tasks) {
      return;
    }
    try {
      (*batch.task)(index);
    } catch (...) {
      // Keep the first exception; later ones of the same batch are dropped.
      // The index still counts as completed so the join never deadlocks.
      std::unique_lock<std::mutex> lock(batch.exception_mutex);
      if (batch.exception == nullptr) {
        batch.exception = std::current_exception();
      }
    }
    if (batch.completed.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        batch.num_tasks) {
      // Notify under the pool mutex so the wakeup cannot slip between the
      // caller's predicate check and its wait.
      std::unique_lock<std::mutex> lock(mutex_);
      done_cv_.notify_all();
    }
  }
}

void ThreadPool::WorkerLoop() {
  uint64_t seen_serial = 0;
  while (true) {
    std::shared_ptr<Batch> batch;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this, seen_serial]() {
        return stop_ || (batch_ != nullptr && batch_serial_ != seen_serial);
      });
      if (stop_) {
        return;
      }
      batch = batch_;
      seen_serial = batch_serial_;
    }
    // The shared_ptr keeps the batch block alive even if this worker wakes
    // so late that ParallelFor already joined and published a newer batch;
    // the stale batch's counter is exhausted, so DrainBatch returns without
    // running anything.
    DrainBatch(*batch);
  }
}

void ThreadPool::ParallelFor(size_t num_tasks, const std::function<void(size_t)>& task) {
  if (num_tasks == 0) {
    return;
  }
  const uint64_t batch_start = NowNanos();
  if (workers_.empty() || num_tasks == 1) {
    // Same exception contract as the threaded path: the first throw is
    // captured, every other index still runs, and the exception surfaces at
    // the end of the batch.
    std::exception_ptr exception;
    for (size_t i = 0; i < num_tasks; ++i) {
      try {
        task(i);
      } catch (...) {
        if (exception == nullptr) {
          exception = std::current_exception();
        }
      }
    }
    {
      std::unique_lock<std::mutex> lock(mutex_);
      ++stats_.batches;
      stats_.tasks += num_tasks;
      stats_.max_batch_tasks = std::max<uint64_t>(stats_.max_batch_tasks, num_tasks);
      stats_.wall_ns += NowNanos() - batch_start;
    }
    if (exception != nullptr) {
      std::rethrow_exception(exception);
    }
    return;
  }
  std::shared_ptr<Batch> batch = std::make_shared<Batch>(&task, num_tasks);
  {
    std::unique_lock<std::mutex> lock(mutex_);
    batch_ = batch;
    ++batch_serial_;
  }
  work_cv_.notify_all();
  // The caller participates, so a batch always makes progress even while the
  // workers are still waking up.
  DrainBatch(*batch);
  std::exception_ptr exception;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&batch]() {
      return batch->completed.load(std::memory_order_acquire) == batch->num_tasks;
    });
    // `task` (a caller reference) may dangle after this function returns, so
    // the batch must be unpublished before then; stragglers that still hold
    // the shared_ptr see an exhausted counter and never touch `task`.
    batch_ = nullptr;
    ++stats_.batches;
    stats_.tasks += num_tasks;
    stats_.max_batch_tasks = std::max<uint64_t>(stats_.max_batch_tasks, num_tasks);
    stats_.wall_ns += NowNanos() - batch_start;
  }
  {
    std::unique_lock<std::mutex> lock(batch->exception_mutex);
    exception = std::exchange(batch->exception, nullptr);
  }
  if (exception != nullptr) {
    std::rethrow_exception(exception);
  }
}

}  // namespace fbdetect
