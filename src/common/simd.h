// Runtime-dispatched SIMD kernels for the scan/funnel hot loops.
//
// Four loops dominate the single-core scan cost (see DESIGN.md §13): Gorilla
// chunk decode, Pearson sum/moment accumulation, SOM best-matching-unit
// distance, and the sanitizer's value-classification/grid passes. Each gets
// a kernel here with three implementations selected once at startup:
//
//   * scalar  — the semantic oracle. Every other implementation must produce
//               byte-identical output (tests/simd_kernels_test.cc enforces
//               this property on random + adversarial inputs).
//   * AVX2    — x86-64; compiled in simd_avx2.cc with -mavx2 and selected
//               only when the CPU reports the feature at runtime.
//   * NEON    — aarch64; compile-time feature (baseline on AArch64).
//
// Determinism across instruction sets is by construction, not by tolerance:
// every floating-point kernel has ONE defined reduction order which all
// implementations reproduce exactly. One carve-out: when a reduction is
// NaN-poisoned, only NaN-ness is defined, not the payload or sign bit —
// IEEE addition is bit-commutative except for which operand's NaN payload
// survives, and the compiler may commute the scalar oracle's adds. Every
// consumer observes NaN only through isfinite()/ordered comparisons, so the
// carve-out is unobservable in detection results.
//
//   * sum_pair / centered_moments accumulate into 4 virtual lanes (element i
//     goes to lane i % 4) combined as (l0 + l1) + (l2 + l3). The scalar
//     implementation keeps 4 explicit accumulators; AVX2 maps the lanes onto
//     one 4 x f64 vector. No FMA anywhere — fused multiply-adds round once
//     where mul+add rounds twice, so a fused kernel could never be
//     bit-identical with a non-FMA fallback (the build also pins
//     -ffp-contract=off so the compiler cannot fuse the scalar oracle).
//   * squared_distances keeps each cell's accumulation in ascending
//     dimension order — the historical serial order — and vectorizes ACROSS
//     cells (lane = cell) instead of across dimensions.
//   * The integer kernels (prefix sums, gap scan, classification counts) are
//     exact in any association and need no ordering contract.
//
// Dispatch: Active() picks the best table the CPU supports, unless the
// environment variable FBD_DISABLE_SIMD is set to a non-empty value other
// than "0", which forces the scalar table (the CI forced-scalar leg).
#ifndef FBDETECT_SRC_COMMON_SIMD_H_
#define FBDETECT_SRC_COMMON_SIMD_H_

#include <cstddef>
#include <cstdint>

namespace fbdetect {
namespace simd {

enum class Isa {
  kScalar,
  kAvx2,
  kNeon,
};

const char* IsaName(Isa isa);

// Kernel function table. All pointers are non-null in every table.
struct Kernels {
  // Lane-striped sums of x[0..n) and y[0..n) (reduction order documented
  // above). Either pointer may alias; n == 0 yields 0.0 sums.
  void (*sum_pair)(const double* x, const double* y, size_t n, double* sum_x,
                   double* sum_y);

  // Lane-striped centered second moments around (mean_x, mean_y):
  // sxy = sum (x-mx)(y-my), sxx = sum (x-mx)^2, syy = sum (y-my)^2.
  void (*centered_moments)(const double* x, const double* y, size_t n, double mean_x,
                           double mean_y, double* sxy, double* sxx, double* syy);

  // For each cell c in [0, cells): out_d2[c] = sum over d of
  // (weights[c*dims + d] - item[d])^2, accumulated in ascending d order
  // (bit-exact with the historical serial SOM distance).
  void (*squared_distances)(const double* weights, size_t cells, size_t dims,
                            const double* item, double* out_d2);

  // Counts values that are not finite, and values that are finite and
  // strictly negative (the sanitizer applies the negative count only to
  // non-negative metric kinds). Exact integer semantics.
  void (*classify_values)(const double* values, size_t n, uint64_t* non_finite,
                          uint64_t* negative);

  // Smallest strictly positive gap timestamps[i] - timestamps[i-1], or 0
  // when none exists (n < 2 or no positive gap). The sanitizer's grid
  // inference.
  int64_t (*min_positive_gap)(const int64_t* timestamps, size_t n);

  // Inclusive prefix sum with wrap-around (two's-complement) semantics:
  // out[i] = seed + in[0] + ... + in[i]. In-place (out == in) is allowed.
  // Gorilla decode applies this twice: delta-of-deltas -> deltas -> stamps.
  void (*prefix_sum_i64)(const int64_t* in, size_t n, int64_t seed, int64_t* out);

  // Inclusive prefix XOR re-interpreted as doubles:
  // bits_i = seed ^ in[0] ^ ... ^ in[i]; out[i] = bit_cast<double>(bits_i).
  // Gorilla value decode.
  void (*prefix_xor_to_doubles)(const uint64_t* in, size_t n, uint64_t seed,
                                double* out);
};

// The scalar oracle table.
const Kernels& Scalar();

// Best table this CPU supports, ignoring FBD_DISABLE_SIMD (property tests
// compare this against Scalar() regardless of the environment).
const Kernels& BestAvailable();
Isa BestAvailableIsa();

// The dispatch result honoring FBD_DISABLE_SIMD, resolved once per process.
const Kernels& Active();
Isa ActiveIsa();

namespace internal {
// Defined in simd_avx2.cc (x86-64 only; null elsewhere). The caller is
// responsible for the runtime CPU feature check.
const Kernels* Avx2Kernels();
}  // namespace internal

}  // namespace simd
}  // namespace fbdetect

#endif  // FBDETECT_SRC_COMMON_SIMD_H_
