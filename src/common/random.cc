#include "src/common/random.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace fbdetect {
namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : state_) {
    word = SplitMix64(sm);
  }
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextUint64(uint64_t bound) {
  FBD_CHECK(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    const uint64_t r = NextUint64();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

double Rng::NextDouble() {
  // 53 random mantissa bits -> uniform double in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

double Rng::NextGaussian() {
  if (has_spare_gaussian_) {
    has_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  const double u2 = NextDouble();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * M_PI * u2;
  spare_gaussian_ = radius * std::sin(angle);
  has_spare_gaussian_ = true;
  return radius * std::cos(angle);
}

double Rng::Normal(double mean, double stddev) { return mean + stddev * NextGaussian(); }

double Rng::ClippedNormal(double mean, double stddev, double lo, double hi) {
  return std::clamp(Normal(mean, stddev), lo, hi);
}

double Rng::LogNormal(double mu, double sigma) { return std::exp(Normal(mu, sigma)); }

bool Rng::NextBool(double probability_true) { return NextDouble() < probability_true; }

double Rng::Exponential(double rate) {
  FBD_CHECK(rate > 0.0);
  double u = 0.0;
  do {
    u = NextDouble();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

int Rng::Poisson(double mean) {
  FBD_CHECK(mean >= 0.0);
  if (mean == 0.0) {
    return 0;
  }
  if (mean > 64.0) {
    // Normal approximation keeps this O(1) for large means.
    const int draw = static_cast<int>(std::lround(Normal(mean, std::sqrt(mean))));
    return std::max(0, draw);
  }
  const double limit = std::exp(-mean);
  double product = NextDouble();
  int count = 0;
  while (product > limit) {
    ++count;
    product *= NextDouble();
  }
  return count;
}

size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  FBD_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    FBD_DCHECK(w >= 0.0);
    total += w;
  }
  FBD_CHECK(total > 0.0);
  double target = NextDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) {
      return i;
    }
  }
  return weights.size() - 1;
}

Rng Rng::Fork() { return Rng(NextUint64()); }

}  // namespace fbdetect
