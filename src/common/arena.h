// A bump allocator for funnel and decode scratch.
//
// The parallel funnel allocates short-lived scratch (decode buffers, BMU
// distance rows, aligned-pair gathers) on every task; with 8 workers those
// allocations contend on the global malloc arena and fragment it. This arena
// hands out memory by bumping a pointer through geometrically-growing blocks
// and frees nothing until a scope rewinds — allocation is ~4 instructions
// and thread-private.
//
// Lifetime rules (see DESIGN.md §13):
// * One arena per thread (Arena::ThreadLocal()), or one owned per worker.
// * Scratch is claimed through an ArenaScope, which records the arena's
//   position on entry and rewinds it on destruction. Scopes nest like stack
//   frames: inner scopes must be destroyed before outer ones (guaranteed by
//   C++ scoping when ArenaScope lives on the stack).
// * Spans returned by MakeSpan are invalidated by the scope's destruction.
//   Never store them beyond the scope, never hand them to another thread.
// * The arena never runs destructors; element types must be trivial.
#ifndef FBDETECT_SRC_COMMON_ARENA_H_
#define FBDETECT_SRC_COMMON_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

#include "src/common/check.h"

namespace fbdetect {

class Arena {
 public:
  // Block sizes are chosen for funnel scratch: a 1440-point analysis window
  // decodes into ~23 KiB of timestamps + values, so the first block already
  // fits several series.
  static constexpr size_t kMinBlockBytes = 64 * 1024;
  static constexpr size_t kAlignment = 64;  // Cache line / AVX-512 friendly.

  Arena() = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  // The calling thread's private arena. Safe to use from pool workers and
  // the calling thread of ParallelFor alike; each sees its own instance.
  static Arena& ThreadLocal() {
    static thread_local Arena arena;
    return arena;
  }

  // Uninitialized storage for `bytes`, 64-byte aligned.
  void* AllocateBytes(size_t bytes) {
    bytes = (bytes + kAlignment - 1) & ~(kAlignment - 1);
    if (blocks_.empty() || used_ + bytes > blocks_.back().size) {
      NextBlock(bytes);
    }
    void* ptr = blocks_.back().base + used_;
    used_ += bytes;
    return ptr;
  }

  // A zero-initialized span of `count` elements. T must be trivially
  // copyable and trivially destructible: the arena never runs destructors.
  template <typename T>
  std::span<T> MakeSpan(size_t count) {
    std::span<T> span = MakeUninitializedSpan<T>(count);
    if (!span.empty()) {
      std::memset(static_cast<void*>(span.data()), 0, count * sizeof(T));
    }
    return span;
  }

  // Uninitialized variant for buffers the caller fully overwrites.
  template <typename T>
  std::span<T> MakeUninitializedSpan(size_t count) {
    static_assert(std::is_trivially_copyable_v<T>);
    static_assert(std::is_trivially_destructible_v<T>);
    if (count == 0) {
      return {};
    }
    return {static_cast<T*>(AllocateBytes(count * sizeof(T))), count};
  }

  // Total bytes currently reserved from malloc (telemetry / tests).
  size_t reserved_bytes() const { return reserved_; }

 private:
  friend class ArenaScope;

  struct Block {
    std::unique_ptr<uint8_t[]> storage;
    uint8_t* base = nullptr;  // 64-byte-aligned start within `storage`.
    size_t size = 0;          // Usable bytes after alignment.
  };

  struct Mark {
    size_t block_count;
    size_t used;
  };

  Mark Position() const { return {blocks_.size(), used_}; }

  void Rewind(Mark mark) {
    FBD_DCHECK(mark.block_count <= blocks_.size());
    // Blocks grown since the mark are dropped; the geometric growth schedule
    // means the next scope that needs that much lands in one fresh block.
    while (blocks_.size() > mark.block_count) {
      reserved_ -= blocks_.back().size;
      blocks_.pop_back();
    }
    used_ = mark.used;
  }

  void NextBlock(size_t min_bytes) {
    size_t bytes = blocks_.empty() ? kMinBlockBytes : blocks_.back().size * 2;
    if (bytes < min_bytes) {
      bytes = min_bytes;
    }
    Block block;
    block.storage = std::make_unique<uint8_t[]>(bytes + kAlignment);
    const uintptr_t aligned =
        (reinterpret_cast<uintptr_t>(block.storage.get()) + kAlignment - 1) &
        ~(uintptr_t{kAlignment} - 1);
    block.base = reinterpret_cast<uint8_t*>(aligned);
    block.size = bytes;
    blocks_.push_back(std::move(block));
    used_ = 0;
    reserved_ += bytes;
  }

  std::vector<Block> blocks_;
  size_t used_ = 0;  // Bump offset into blocks_.back().
  size_t reserved_ = 0;
};

// RAII mark/rewind over an Arena. All spans made through the scope (or from
// the arena while the scope is alive) die when the scope does.
class ArenaScope {
 public:
  explicit ArenaScope(Arena& arena) : arena_(arena), mark_(arena.Position()) {}
  ~ArenaScope() { arena_.Rewind(mark_); }

  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

  template <typename T>
  std::span<T> MakeSpan(size_t count) {
    return arena_.MakeSpan<T>(count);
  }

  template <typename T>
  std::span<T> MakeUninitializedSpan(size_t count) {
    return arena_.MakeUninitializedSpan<T>(count);
  }

 private:
  Arena& arena_;
  Arena::Mark mark_;
};

}  // namespace fbdetect

#endif  // FBDETECT_SRC_COMMON_ARENA_H_
