// Deterministic random number generation for simulations.
//
// Every stochastic component of the repository draws from an explicitly
// seeded Rng so that experiments reproduce bit-for-bit. The generator is
// xoshiro256** seeded via SplitMix64, which gives high-quality streams from
// arbitrary 64-bit seeds and is much faster than std::mt19937_64.
#ifndef FBDETECT_SRC_COMMON_RANDOM_H_
#define FBDETECT_SRC_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace fbdetect {

// SplitMix64 step; used for seeding and for cheap stateless hashing.
uint64_t SplitMix64(uint64_t& state);

class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Uniform over the full 64-bit range.
  uint64_t NextUint64();

  // Uniform in [0, bound). bound must be > 0.
  uint64_t NextUint64(uint64_t bound);

  // Uniform in [0, 1).
  double NextDouble();

  // Uniform in [lo, hi).
  double Uniform(double lo, double hi);

  // Standard normal via Box–Muller (cached spare value).
  double NextGaussian();

  // Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  // Normal clipped to [lo, hi] (resamples the tails by clamping, matching the
  // paper's "capping sample values within [0, 1]" methodology in §2).
  double ClippedNormal(double mean, double stddev, double lo, double hi);

  // Log-normal with the given parameters of the underlying normal.
  double LogNormal(double mu, double sigma);

  // Bernoulli trial.
  bool NextBool(double probability_true);

  // Exponential with the given rate (> 0).
  double Exponential(double rate);

  // Poisson-distributed count (Knuth for small means, normal approx above 64).
  int Poisson(double mean);

  // Picks an index in [0, weights.size()) proportionally to weights.
  // All weights must be >= 0 and at least one must be > 0.
  size_t WeightedIndex(const std::vector<double>& weights);

  // Derives an independent child generator; useful to give each simulated
  // server or service its own stream without correlated draws.
  Rng Fork();

 private:
  uint64_t state_[4];
  double spare_gaussian_ = 0.0;
  bool has_spare_gaussian_ = false;
};

}  // namespace fbdetect

#endif  // FBDETECT_SRC_COMMON_RANDOM_H_
