#include "src/common/simd.h"

#include <cmath>
#include <cstdlib>
#include <cstring>

#if defined(__aarch64__) && defined(__ARM_NEON)
#include <arm_neon.h>
#define FBD_SIMD_HAS_NEON 1
#else
#define FBD_SIMD_HAS_NEON 0
#endif

namespace fbdetect {
namespace simd {
namespace {

double BitsToDouble(uint64_t bits) {
  double value = 0.0;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

// ---------------------------------------------------------------------------
// Scalar kernels — the semantic oracles. The FP kernels implement the
// 4-virtual-lane striped reduction documented in simd.h with explicit
// accumulators; the compiler cannot reassociate or fuse them (no fast-math,
// -ffp-contract=off).
// ---------------------------------------------------------------------------

void ScalarSumPair(const double* x, const double* y, size_t n, double* sum_x,
                   double* sum_y) {
  double ax[4] = {0.0, 0.0, 0.0, 0.0};
  double ay[4] = {0.0, 0.0, 0.0, 0.0};
  for (size_t i = 0; i < n; ++i) {
    ax[i % 4] += x[i];
    ay[i % 4] += y[i];
  }
  *sum_x = (ax[0] + ax[1]) + (ax[2] + ax[3]);
  *sum_y = (ay[0] + ay[1]) + (ay[2] + ay[3]);
}

void ScalarCenteredMoments(const double* x, const double* y, size_t n, double mean_x,
                           double mean_y, double* sxy, double* sxx, double* syy) {
  double axy[4] = {0.0, 0.0, 0.0, 0.0};
  double axx[4] = {0.0, 0.0, 0.0, 0.0};
  double ayy[4] = {0.0, 0.0, 0.0, 0.0};
  for (size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mean_x;
    const double dy = y[i] - mean_y;
    const size_t lane = i % 4;
    axy[lane] += dx * dy;
    axx[lane] += dx * dx;
    ayy[lane] += dy * dy;
  }
  *sxy = (axy[0] + axy[1]) + (axy[2] + axy[3]);
  *sxx = (axx[0] + axx[1]) + (axx[2] + axx[3]);
  *syy = (ayy[0] + ayy[1]) + (ayy[2] + ayy[3]);
}

void ScalarSquaredDistances(const double* weights, size_t cells, size_t dims,
                            const double* item, double* out_d2) {
  for (size_t c = 0; c < cells; ++c) {
    const double* row = weights + c * dims;
    double d2 = 0.0;
    for (size_t d = 0; d < dims; ++d) {
      const double diff = row[d] - item[d];
      d2 += diff * diff;
    }
    out_d2[c] = d2;
  }
}

void ScalarClassifyValues(const double* values, size_t n, uint64_t* non_finite,
                          uint64_t* negative) {
  uint64_t nf = 0;
  uint64_t neg = 0;
  for (size_t i = 0; i < n; ++i) {
    if (!std::isfinite(values[i])) {
      ++nf;
    } else if (values[i] < 0.0) {
      ++neg;
    }
  }
  *non_finite = nf;
  *negative = neg;
}

int64_t ScalarMinPositiveGap(const int64_t* timestamps, size_t n) {
  int64_t dt = 0;
  for (size_t i = 1; i < n; ++i) {
    const int64_t gap = timestamps[i] - timestamps[i - 1];
    if (gap > 0 && (dt == 0 || gap < dt)) {
      dt = gap;
    }
  }
  return dt;
}

void ScalarPrefixSumI64(const int64_t* in, size_t n, int64_t seed, int64_t* out) {
  // Unsigned internally: corrupt Gorilla streams can overflow a signed
  // running sum, which would be UB; two's-complement wrap matches the
  // decoder's documented overflow-safe semantics.
  uint64_t acc = static_cast<uint64_t>(seed);
  for (size_t i = 0; i < n; ++i) {
    acc += static_cast<uint64_t>(in[i]);
    out[i] = static_cast<int64_t>(acc);
  }
}

void ScalarPrefixXorToDoubles(const uint64_t* in, size_t n, uint64_t seed,
                              double* out) {
  uint64_t acc = seed;
  for (size_t i = 0; i < n; ++i) {
    acc ^= in[i];
    out[i] = BitsToDouble(acc);
  }
}

constexpr Kernels kScalarKernels = {
    &ScalarSumPair,         &ScalarCenteredMoments,  &ScalarSquaredDistances,
    &ScalarClassifyValues,  &ScalarMinPositiveGap,   &ScalarPrefixSumI64,
    &ScalarPrefixXorToDoubles,
};

// ---------------------------------------------------------------------------
// NEON kernels (aarch64 baseline; no runtime check needed). 2 x f64 vectors:
// the 4 virtual lanes map onto two vector accumulators, combined in the
// contract's (l0 + l1) + (l2 + l3) order. The trickier kernels (cross-cell
// distance transpose, prefix scans) stay scalar on NEON — the big wins there
// are the x86 fleet's.
// ---------------------------------------------------------------------------
#if FBD_SIMD_HAS_NEON

void NeonSumPair(const double* x, const double* y, size_t n, double* sum_x,
                 double* sum_y) {
  float64x2_t ax01 = vdupq_n_f64(0.0);  // Lanes 0, 1.
  float64x2_t ax23 = vdupq_n_f64(0.0);  // Lanes 2, 3.
  float64x2_t ay01 = vdupq_n_f64(0.0);
  float64x2_t ay23 = vdupq_n_f64(0.0);
  const size_t n4 = n & ~size_t{3};
  for (size_t i = 0; i < n4; i += 4) {
    ax01 = vaddq_f64(ax01, vld1q_f64(x + i));
    ax23 = vaddq_f64(ax23, vld1q_f64(x + i + 2));
    ay01 = vaddq_f64(ay01, vld1q_f64(y + i));
    ay23 = vaddq_f64(ay23, vld1q_f64(y + i + 2));
  }
  double lx[4] = {vgetq_lane_f64(ax01, 0), vgetq_lane_f64(ax01, 1),
                  vgetq_lane_f64(ax23, 0), vgetq_lane_f64(ax23, 1)};
  double ly[4] = {vgetq_lane_f64(ay01, 0), vgetq_lane_f64(ay01, 1),
                  vgetq_lane_f64(ay23, 0), vgetq_lane_f64(ay23, 1)};
  for (size_t i = n4; i < n; ++i) {
    lx[i % 4] += x[i];
    ly[i % 4] += y[i];
  }
  *sum_x = (lx[0] + lx[1]) + (lx[2] + lx[3]);
  *sum_y = (ly[0] + ly[1]) + (ly[2] + ly[3]);
}

void NeonCenteredMoments(const double* x, const double* y, size_t n, double mean_x,
                         double mean_y, double* sxy, double* sxx, double* syy) {
  const float64x2_t mx = vdupq_n_f64(mean_x);
  const float64x2_t my = vdupq_n_f64(mean_y);
  float64x2_t xy01 = vdupq_n_f64(0.0), xy23 = vdupq_n_f64(0.0);
  float64x2_t xx01 = vdupq_n_f64(0.0), xx23 = vdupq_n_f64(0.0);
  float64x2_t yy01 = vdupq_n_f64(0.0), yy23 = vdupq_n_f64(0.0);
  const size_t n4 = n & ~size_t{3};
  for (size_t i = 0; i < n4; i += 4) {
    const float64x2_t dx01 = vsubq_f64(vld1q_f64(x + i), mx);
    const float64x2_t dx23 = vsubq_f64(vld1q_f64(x + i + 2), mx);
    const float64x2_t dy01 = vsubq_f64(vld1q_f64(y + i), my);
    const float64x2_t dy23 = vsubq_f64(vld1q_f64(y + i + 2), my);
    // vaddq of vmulq, NOT vfmaq: the contract forbids fusion.
    xy01 = vaddq_f64(xy01, vmulq_f64(dx01, dy01));
    xy23 = vaddq_f64(xy23, vmulq_f64(dx23, dy23));
    xx01 = vaddq_f64(xx01, vmulq_f64(dx01, dx01));
    xx23 = vaddq_f64(xx23, vmulq_f64(dx23, dx23));
    yy01 = vaddq_f64(yy01, vmulq_f64(dy01, dy01));
    yy23 = vaddq_f64(yy23, vmulq_f64(dy23, dy23));
  }
  double lxy[4] = {vgetq_lane_f64(xy01, 0), vgetq_lane_f64(xy01, 1),
                   vgetq_lane_f64(xy23, 0), vgetq_lane_f64(xy23, 1)};
  double lxx[4] = {vgetq_lane_f64(xx01, 0), vgetq_lane_f64(xx01, 1),
                   vgetq_lane_f64(xx23, 0), vgetq_lane_f64(xx23, 1)};
  double lyy[4] = {vgetq_lane_f64(yy01, 0), vgetq_lane_f64(yy01, 1),
                   vgetq_lane_f64(yy23, 0), vgetq_lane_f64(yy23, 1)};
  for (size_t i = n4; i < n; ++i) {
    const double dx = x[i] - mean_x;
    const double dy = y[i] - mean_y;
    const size_t lane = i % 4;
    lxy[lane] += dx * dy;
    lxx[lane] += dx * dx;
    lyy[lane] += dy * dy;
  }
  *sxy = (lxy[0] + lxy[1]) + (lxy[2] + lxy[3]);
  *sxx = (lxx[0] + lxx[1]) + (lxx[2] + lxx[3]);
  *syy = (lyy[0] + lyy[1]) + (lyy[2] + lyy[3]);
}

constexpr Kernels kNeonKernels = {
    &NeonSumPair,           &NeonCenteredMoments,    &ScalarSquaredDistances,
    &ScalarClassifyValues,  &ScalarMinPositiveGap,   &ScalarPrefixSumI64,
    &ScalarPrefixXorToDoubles,
};

#endif  // FBD_SIMD_HAS_NEON

bool SimdDisabledByEnv() {
  const char* env = std::getenv("FBD_DISABLE_SIMD");
  return env != nullptr && env[0] != '\0' && !(env[0] == '0' && env[1] == '\0');
}

struct Dispatch {
  const Kernels* best = &kScalarKernels;
  Isa best_isa = Isa::kScalar;
  const Kernels* active = &kScalarKernels;
  Isa active_isa = Isa::kScalar;
};

Dispatch ResolveDispatch() {
  Dispatch dispatch;
#if FBD_SIMD_HAS_NEON
  dispatch.best = &kNeonKernels;
  dispatch.best_isa = Isa::kNeon;
#else
  if (const Kernels* avx2 = internal::Avx2Kernels(); avx2 != nullptr) {
    dispatch.best = avx2;
    dispatch.best_isa = Isa::kAvx2;
  }
#endif
  if (SimdDisabledByEnv()) {
    dispatch.active = &kScalarKernels;
    dispatch.active_isa = Isa::kScalar;
  } else {
    dispatch.active = dispatch.best;
    dispatch.active_isa = dispatch.best_isa;
  }
  return dispatch;
}

const Dispatch& GetDispatch() {
  static const Dispatch dispatch = ResolveDispatch();
  return dispatch;
}

}  // namespace

const char* IsaName(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return "scalar";
    case Isa::kAvx2:
      return "avx2";
    case Isa::kNeon:
      return "neon";
  }
  return "unknown";
}

const Kernels& Scalar() { return kScalarKernels; }

const Kernels& BestAvailable() { return *GetDispatch().best; }

Isa BestAvailableIsa() { return GetDispatch().best_isa; }

const Kernels& Active() { return *GetDispatch().active; }

Isa ActiveIsa() { return GetDispatch().active_isa; }

}  // namespace simd
}  // namespace fbdetect
