// The simulation time model.
//
// All time-series data in the repository is indexed by TimePoint — seconds
// since an arbitrary epoch. The fleet simulator advances in fixed ticks and
// every detector config (Table 1) expresses windows and re-run intervals as
// Duration values. Keeping these as plain int64 seconds (rather than
// std::chrono) makes arithmetic in the detection algorithms direct and keeps
// serialized output human-readable.
#ifndef FBDETECT_SRC_COMMON_SIM_TIME_H_
#define FBDETECT_SRC_COMMON_SIM_TIME_H_

#include <cstdint>

namespace fbdetect {

using TimePoint = int64_t;  // Seconds since simulation epoch.
using Duration = int64_t;   // Seconds.

inline constexpr Duration kSecond = 1;
inline constexpr Duration kMinute = 60;
inline constexpr Duration kHour = 60 * kMinute;
inline constexpr Duration kDay = 24 * kHour;
inline constexpr Duration kWeek = 7 * kDay;

constexpr Duration Minutes(int64_t n) { return n * kMinute; }
constexpr Duration Hours(int64_t n) { return n * kHour; }
constexpr Duration Days(int64_t n) { return n * kDay; }

}  // namespace fbdetect

#endif  // FBDETECT_SRC_COMMON_SIM_TIME_H_
