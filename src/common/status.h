// Recoverable-error type for data-dependent failures.
//
// FBD_CHECK stays the right tool for programmer errors (broken invariants,
// out-of-contract arguments): those abort in every build mode. Data errors —
// corrupt Gorilla streams, out-of-order telemetry from a misbehaving host,
// decode failures on deserialized storage — must NOT abort a fleet-wide scan,
// so the APIs on those paths return a Status and let the caller quarantine
// the offending series instead (DESIGN.md §11).
//
// Status is cheap in the success case: StatusCode::kOk carries an empty
// message and no allocation happens until an error is constructed.
#ifndef FBDETECT_SRC_COMMON_STATUS_H_
#define FBDETECT_SRC_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace fbdetect {

enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument,   // Malformed request or configuration.
  kOutOfOrder,        // Timestamp at or before an already-stored point.
  kDataLoss,          // Corrupt or truncated stored data (e.g. Gorilla chunk).
  kFailedPrecondition,  // Operation not valid in the current state.
  kInternal,          // Caught exception or invariant salvage on a data path.
};

const char* StatusCodeName(StatusCode code);

class Status {
 public:
  Status() = default;  // OK.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status OutOfOrder(std::string message) {
    return Status(StatusCode::kOutOfOrder, std::move(message));
  }
  static Status DataLoss(std::string message) {
    return Status(StatusCode::kDataLoss, std::move(message));
  }
  static Status FailedPrecondition(std::string message) {
    return Status(StatusCode::kFailedPrecondition, std::move(message));
  }
  static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) {
      return "OK";
    }
    std::string out = StatusCodeName(code_);
    if (!message_.empty()) {
      out += ": ";
      out += message_;
    }
    return out;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kOutOfOrder:
      return "OUT_OF_ORDER";
    case StatusCode::kDataLoss:
      return "DATA_LOSS";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

// Early-returns the enclosing function with the error when `expr` is not OK.
#define FBD_RETURN_IF_ERROR(expr)              \
  do {                                         \
    ::fbdetect::Status fbd_status_ = (expr);   \
    if (!fbd_status_.ok()) {                   \
      return fbd_status_;                      \
    }                                          \
  } while (0)

}  // namespace fbdetect

#endif  // FBDETECT_SRC_COMMON_STATUS_H_
