#include "src/common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstring>

namespace fbdetect {
namespace {

std::atomic<int> g_log_level{static_cast<int>(LogLevel::kWarning)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

// Trims a path down to its basename so log lines stay short.
const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed)); }

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

void LogMessage(LogLevel level, const char* file, int line, const std::string& message) {
  if (static_cast<int>(level) < g_log_level.load(std::memory_order_relaxed)) {
    return;
  }
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level), Basename(file), line, message.c_str());
}

}  // namespace fbdetect
