// AVX2 implementations of the simd.h kernel table. This translation unit is
// the only one compiled with -mavx2 (set per-file in CMake), so AVX2 code
// never leaks into a binary that must run on older cores; Avx2Kernels()
// additionally gates on the runtime CPUID check before exposing the table.
//
// Every kernel reproduces the scalar oracle's result bit for bit: the FP
// reductions map the contract's 4 virtual lanes onto one 4 x f64 vector (and
// combine (l0 + l1) + (l2 + l3)), the SOM distance vectorizes across cells
// via 4x4 transposes so each cell keeps its serial per-dimension order, and
// the integer kernels are exact in any association. No FMA: _mm256_add_pd of
// _mm256_mul_pd rounds exactly like scalar mul+add, fused ops do not.
#include "src/common/simd.h"

#if defined(__AVX2__)

#include <immintrin.h>

#include <cmath>
#include <cstring>

namespace fbdetect {
namespace simd {
namespace {

double BitsToDouble(uint64_t bits) {
  double value = 0.0;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

void Avx2SumPair(const double* x, const double* y, size_t n, double* sum_x,
                 double* sum_y) {
  __m256d ax = _mm256_setzero_pd();
  __m256d ay = _mm256_setzero_pd();
  const size_t n4 = n & ~size_t{3};
  for (size_t i = 0; i < n4; i += 4) {
    ax = _mm256_add_pd(ax, _mm256_loadu_pd(x + i));
    ay = _mm256_add_pd(ay, _mm256_loadu_pd(y + i));
  }
  alignas(32) double lx[4];
  alignas(32) double ly[4];
  _mm256_store_pd(lx, ax);
  _mm256_store_pd(ly, ay);
  for (size_t i = n4; i < n; ++i) {
    lx[i % 4] += x[i];
    ly[i % 4] += y[i];
  }
  *sum_x = (lx[0] + lx[1]) + (lx[2] + lx[3]);
  *sum_y = (ly[0] + ly[1]) + (ly[2] + ly[3]);
}

void Avx2CenteredMoments(const double* x, const double* y, size_t n, double mean_x,
                         double mean_y, double* sxy, double* sxx, double* syy) {
  const __m256d mx = _mm256_set1_pd(mean_x);
  const __m256d my = _mm256_set1_pd(mean_y);
  __m256d axy = _mm256_setzero_pd();
  __m256d axx = _mm256_setzero_pd();
  __m256d ayy = _mm256_setzero_pd();
  const size_t n4 = n & ~size_t{3};
  for (size_t i = 0; i < n4; i += 4) {
    const __m256d dx = _mm256_sub_pd(_mm256_loadu_pd(x + i), mx);
    const __m256d dy = _mm256_sub_pd(_mm256_loadu_pd(y + i), my);
    axy = _mm256_add_pd(axy, _mm256_mul_pd(dx, dy));
    axx = _mm256_add_pd(axx, _mm256_mul_pd(dx, dx));
    ayy = _mm256_add_pd(ayy, _mm256_mul_pd(dy, dy));
  }
  alignas(32) double lxy[4];
  alignas(32) double lxx[4];
  alignas(32) double lyy[4];
  _mm256_store_pd(lxy, axy);
  _mm256_store_pd(lxx, axx);
  _mm256_store_pd(lyy, ayy);
  for (size_t i = n4; i < n; ++i) {
    const double dx = x[i] - mean_x;
    const double dy = y[i] - mean_y;
    const size_t lane = i % 4;
    lxy[lane] += dx * dy;
    lxx[lane] += dx * dx;
    lyy[lane] += dy * dy;
  }
  *sxy = (lxy[0] + lxy[1]) + (lxy[2] + lxy[3]);
  *sxx = (lxx[0] + lxx[1]) + (lxx[2] + lxx[3]);
  *syy = (lyy[0] + lyy[1]) + (lyy[2] + lyy[3]);
}

void Avx2SquaredDistances(const double* weights, size_t cells, size_t dims,
                          const double* item, double* out_d2) {
  const size_t cells4 = cells & ~size_t{3};
  const size_t dims4 = dims & ~size_t{3};
  for (size_t c = 0; c < cells4; c += 4) {
    const double* r0 = weights + (c + 0) * dims;
    const double* r1 = weights + (c + 1) * dims;
    const double* r2 = weights + (c + 2) * dims;
    const double* r3 = weights + (c + 3) * dims;
    __m256d acc = _mm256_setzero_pd();
    for (size_t d = 0; d < dims4; d += 4) {
      // Transpose a 4x4 block so vector lane k holds cell c+k: the
      // accumulation per lane then visits dimensions in the same ascending
      // order as the serial distance, keeping the result bit-exact.
      const __m256d a = _mm256_loadu_pd(r0 + d);
      const __m256d b = _mm256_loadu_pd(r1 + d);
      const __m256d cc = _mm256_loadu_pd(r2 + d);
      const __m256d dd = _mm256_loadu_pd(r3 + d);
      const __m256d t0 = _mm256_unpacklo_pd(a, b);    // a0 b0 a2 b2
      const __m256d t1 = _mm256_unpackhi_pd(a, b);    // a1 b1 a3 b3
      const __m256d t2 = _mm256_unpacklo_pd(cc, dd);  // c0 d0 c2 d2
      const __m256d t3 = _mm256_unpackhi_pd(cc, dd);  // c1 d1 c3 d3
      const __m256d col0 = _mm256_permute2f128_pd(t0, t2, 0x20);
      const __m256d col1 = _mm256_permute2f128_pd(t1, t3, 0x20);
      const __m256d col2 = _mm256_permute2f128_pd(t0, t2, 0x31);
      const __m256d col3 = _mm256_permute2f128_pd(t1, t3, 0x31);
      __m256d diff = _mm256_sub_pd(col0, _mm256_set1_pd(item[d + 0]));
      acc = _mm256_add_pd(acc, _mm256_mul_pd(diff, diff));
      diff = _mm256_sub_pd(col1, _mm256_set1_pd(item[d + 1]));
      acc = _mm256_add_pd(acc, _mm256_mul_pd(diff, diff));
      diff = _mm256_sub_pd(col2, _mm256_set1_pd(item[d + 2]));
      acc = _mm256_add_pd(acc, _mm256_mul_pd(diff, diff));
      diff = _mm256_sub_pd(col3, _mm256_set1_pd(item[d + 3]));
      acc = _mm256_add_pd(acc, _mm256_mul_pd(diff, diff));
    }
    alignas(32) double d2[4];
    _mm256_store_pd(d2, acc);
    for (size_t d = dims4; d < dims; ++d) {
      const double v = item[d];
      double diff = r0[d] - v;
      d2[0] += diff * diff;
      diff = r1[d] - v;
      d2[1] += diff * diff;
      diff = r2[d] - v;
      d2[2] += diff * diff;
      diff = r3[d] - v;
      d2[3] += diff * diff;
    }
    _mm256_storeu_pd(out_d2 + c, _mm256_load_pd(d2));
  }
  for (size_t c = cells4; c < cells; ++c) {
    const double* row = weights + c * dims;
    double d2 = 0.0;
    for (size_t d = 0; d < dims; ++d) {
      const double diff = row[d] - item[d];
      d2 += diff * diff;
    }
    out_d2[c] = d2;
  }
}

void Avx2ClassifyValues(const double* values, size_t n, uint64_t* non_finite,
                        uint64_t* negative) {
  const __m256d zero = _mm256_setzero_pd();
  const __m256d abs_mask =
      _mm256_castsi256_pd(_mm256_set1_epi64x(0x7fffffffffffffffLL));
  const __m256d inf = _mm256_castsi256_pd(_mm256_set1_epi64x(0x7ff0000000000000LL));
  uint64_t nf = 0;
  uint64_t neg = 0;
  const size_t n4 = n & ~size_t{3};
  for (size_t i = 0; i < n4; i += 4) {
    const __m256d v = _mm256_loadu_pd(values + i);
    // Non-finite = NaN (unordered with itself) or +/-Inf (|v| == Inf).
    const __m256d unordered = _mm256_cmp_pd(v, v, _CMP_UNORD_Q);
    const __m256d is_inf =
        _mm256_cmp_pd(_mm256_and_pd(v, abs_mask), inf, _CMP_EQ_OQ);
    const __m256d nf_mask = _mm256_or_pd(unordered, is_inf);
    // LT_OQ is false for NaN, and -Inf is masked out below, matching the
    // scalar else-if (negatives are only counted among finite values).
    const __m256d lt = _mm256_cmp_pd(v, zero, _CMP_LT_OQ);
    const __m256d neg_mask = _mm256_andnot_pd(nf_mask, lt);
    nf += static_cast<uint64_t>(__builtin_popcount(
        static_cast<unsigned>(_mm256_movemask_pd(nf_mask))));
    neg += static_cast<uint64_t>(__builtin_popcount(
        static_cast<unsigned>(_mm256_movemask_pd(neg_mask))));
  }
  for (size_t i = n4; i < n; ++i) {
    if (!std::isfinite(values[i])) {
      ++nf;
    } else if (values[i] < 0.0) {
      ++neg;
    }
  }
  *non_finite = nf;
  *negative = neg;
}

int64_t Avx2MinPositiveGap(const int64_t* timestamps, size_t n) {
  if (n < 2) {
    return 0;
  }
  int64_t best = 0;
  const __m256i zero = _mm256_setzero_si256();
  __m256i vbest = _mm256_set1_epi64x(0);
  __m256i vhave = _mm256_setzero_si256();  // Per-lane "best is valid" flag.
  size_t i = 1;
  for (; i + 3 < n; i += 4) {
    const __m256i cur =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(timestamps + i));
    const __m256i prev =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(timestamps + i - 1));
    const __m256i gap = _mm256_sub_epi64(cur, prev);
    const __m256i positive = _mm256_cmpgt_epi64(gap, zero);
    // Adopt `gap` where it is positive AND (no best yet OR gap < best).
    const __m256i smaller = _mm256_cmpgt_epi64(vbest, gap);
    const __m256i no_best = _mm256_andnot_si256(vhave, positive);
    const __m256i adopt =
        _mm256_and_si256(positive, _mm256_or_si256(smaller, no_best));
    vbest = _mm256_blendv_epi8(vbest, gap, adopt);
    vhave = _mm256_or_si256(vhave, adopt);
  }
  alignas(32) int64_t lanes[4];
  alignas(32) int64_t have[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), vbest);
  _mm256_store_si256(reinterpret_cast<__m256i*>(have), vhave);
  for (int lane = 0; lane < 4; ++lane) {
    if (have[lane] != 0 && (best == 0 || lanes[lane] < best)) {
      best = lanes[lane];
    }
  }
  for (; i < n; ++i) {
    const int64_t gap = timestamps[i] - timestamps[i - 1];
    if (gap > 0 && (best == 0 || gap < best)) {
      best = gap;
    }
  }
  return best;
}

// No AVX2 prefix_sum_i64 / prefix_xor_to_doubles: an in-register 4 x i64
// scan (permute4x64 + blend to shift lanes, plus a broadcast carry between
// blocks) was measured at 0.3-0.5x the scalar loop on this path. The scalar
// chain retires one add/xor per cycle, while every cross-lane permute on the
// scan's critical path costs 3 cycles — for 64-bit elements the shuffles
// cannot be amortized. The table delegates both to the scalar oracle
// (bench_simd_kernels records the honest 1.0x).

}  // namespace

namespace internal {

const Kernels* Avx2Kernels() {
  static const Kernels kAvx2Kernels = {
      &Avx2SumPair,
      &Avx2CenteredMoments,
      &Avx2SquaredDistances,
      &Avx2ClassifyValues,
      &Avx2MinPositiveGap,
      Scalar().prefix_sum_i64,
      Scalar().prefix_xor_to_doubles,
  };
  return __builtin_cpu_supports("avx2") ? &kAvx2Kernels : nullptr;
}

}  // namespace internal

}  // namespace simd
}  // namespace fbdetect

#else  // !defined(__AVX2__)

namespace fbdetect {
namespace simd {
namespace internal {

const Kernels* Avx2Kernels() { return nullptr; }

}  // namespace internal
}  // namespace simd
}  // namespace fbdetect

#endif  // defined(__AVX2__)
