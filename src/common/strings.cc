#include "src/common/strings.h"

#include <cctype>

namespace fbdetect {

std::vector<std::string> SplitString(std::string_view input, char delimiter) {
  std::vector<std::string> pieces;
  size_t start = 0;
  while (start <= input.size()) {
    const size_t end = input.find(delimiter, start);
    const size_t len = (end == std::string_view::npos ? input.size() : end) - start;
    if (len > 0) {
      pieces.emplace_back(input.substr(start, len));
    }
    if (end == std::string_view::npos) {
      break;
    }
    start = end + 1;
  }
  return pieces;
}

std::string JoinStrings(const std::vector<std::string>& pieces, std::string_view separator) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) {
      out.append(separator);
    }
    out.append(pieces[i]);
  }
  return out;
}

std::string ToLowerAscii(std::string_view input) {
  std::string out(input);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

std::vector<std::string> TokenizeIdentifier(std::string_view text) {
  std::vector<std::string> tokens;
  std::string current;
  auto flush = [&tokens, &current]() {
    if (!current.empty()) {
      tokens.push_back(current);
      current.clear();
    }
  };
  for (size_t i = 0; i < text.size(); ++i) {
    const unsigned char c = static_cast<unsigned char>(text[i]);
    if (std::isalpha(c)) {
      // A transition from lower to upper case starts a new camelCase token.
      if (std::isupper(c) && !current.empty() &&
          std::islower(static_cast<unsigned char>(current.back()))) {
        flush();
      }
      current.push_back(static_cast<char>(std::tolower(c)));
    } else if (std::isdigit(c)) {
      current.push_back(static_cast<char>(c));
    } else {
      flush();
    }
  }
  flush();
  return tokens;
}

std::vector<std::string> CharNgrams(std::string_view input, int n) {
  std::vector<std::string> grams;
  const std::string lowered = ToLowerAscii(input);
  if (lowered.empty()) {
    return grams;
  }
  if (static_cast<int>(lowered.size()) <= n) {
    grams.push_back(lowered);
    return grams;
  }
  grams.reserve(lowered.size() - static_cast<size_t>(n) + 1);
  for (size_t i = 0; i + static_cast<size_t>(n) <= lowered.size(); ++i) {
    grams.push_back(lowered.substr(i, static_cast<size_t>(n)));
  }
  return grams;
}

}  // namespace fbdetect
