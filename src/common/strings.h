// Small string utilities shared across modules: splitting, joining, case
// folding, identifier tokenization (camelCase / snake_case aware), and
// character n-grams for TF-IDF features.
#ifndef FBDETECT_SRC_COMMON_STRINGS_H_
#define FBDETECT_SRC_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace fbdetect {

// Splits on any occurrence of `delimiter`; empty pieces are dropped.
std::vector<std::string> SplitString(std::string_view input, char delimiter);

// Joins pieces with the given separator.
std::string JoinStrings(const std::vector<std::string>& pieces, std::string_view separator);

// ASCII lower-casing.
std::string ToLowerAscii(std::string_view input);

// True if `text` starts with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

// Tokenizes an identifier or free text into lower-case word tokens.
// Understands camelCase, snake_case, ::, ., /, and whitespace boundaries, so
// "TaoClient::fetchUserById" -> {"tao", "client", "fetch", "user", "by", "id"}.
std::vector<std::string> TokenizeIdentifier(std::string_view text);

// Character n-grams of the lower-cased input (used for metric-ID TF-IDF with
// 2- and 3-gram lengths, per §5.5.1). Inputs shorter than `n` yield the whole
// string as a single gram.
std::vector<std::string> CharNgrams(std::string_view input, int n);

}  // namespace fbdetect

#endif  // FBDETECT_SRC_COMMON_STRINGS_H_
