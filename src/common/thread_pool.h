// A fixed-size worker pool with a shared task counter, built for the
// pipeline's per-re-run scan fan-out (§5.1): `RunPeriod` issues many `RunAt`
// calls, and spawning/joining fresh std::threads per run dominates small
// scans. The pool spawns its workers once; each ParallelFor call hands out
// task indices [0, num_tasks) to the workers AND the calling thread, and
// returns when every index has been executed.
//
// ParallelFor is synchronous and not reentrant: one batch runs at a time,
// and tasks must not call ParallelFor on the same pool.
//
// Exception contract: a task that throws does not abort the process, deadlock
// the batch, or poison the pool. The first exception of a batch is captured;
// the remaining task indices still run to completion (tasks are independent),
// and the captured exception is rethrown on the calling thread when
// ParallelFor joins. The pool is reusable afterwards.
#ifndef FBDETECT_SRC_COMMON_THREAD_POOL_H_
#define FBDETECT_SRC_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace fbdetect {

class ThreadPool {
 public:
  // Spawns `num_threads` workers. 0 is valid: ParallelFor then runs every
  // task on the calling thread (useful for single-threaded configurations).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t size() const { return workers_.size(); }

  // Lifetime usage statistics, for the observability layer. Maintained with
  // per-batch (not per-task) bookkeeping, so the accounting cost is two
  // clock reads per ParallelFor call. Values depend on batch shapes and
  // scheduling, so consumers must export them as runtime (non-deterministic)
  // telemetry.
  struct Stats {
    uint64_t batches = 0;          // ParallelFor calls (serial path included).
    uint64_t tasks = 0;            // Total task indices executed.
    uint64_t max_batch_tasks = 0;  // Deepest queue handed to one batch.
    uint64_t wall_ns = 0;          // Wall time spent inside ParallelFor.
  };
  Stats stats() const;

  // Runs task(0) .. task(num_tasks - 1) across the pool workers and the
  // calling thread; returns once all have completed. Task indices are handed
  // out dynamically, so callers that need determinism must make each task's
  // RESULT depend only on its index (e.g. write into a per-index slot).
  // If any task throws, the batch still completes and the FIRST captured
  // exception is rethrown here.
  void ParallelFor(size_t num_tasks, const std::function<void(size_t)>& task);

 private:
  void WorkerLoop();
  // Pulls and runs task indices of batch `batch` until none remain (or a
  // newer batch superseded it).
  void DrainBatch(uint64_t batch, const std::function<void(size_t)>& task);

  std::vector<std::thread> workers_;

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;   // Signals workers: new batch or stop.
  std::condition_variable done_cv_;   // Signals ParallelFor: batch finished.
  const std::function<void(size_t)>* task_ = nullptr;  // Null = no batch.
  size_t next_index_ = 0;     // Next task index to hand out.
  size_t num_tasks_ = 0;      // Size of the current batch.
  size_t completed_ = 0;      // Tasks finished in the current batch.
  uint64_t batch_id_ = 0;     // Bumped per batch so workers detect new work.
  // First exception thrown by a task of the current batch; rethrown at the
  // ParallelFor join point. Guarded by mutex_.
  std::exception_ptr batch_exception_;
  bool stop_ = false;
  Stats stats_;  // Guarded by mutex_.
};

// Convenience for the funnel's slot-indexed stages: runs fn(0) .. fn(n - 1)
// on `pool` plus the calling thread in statically strided lanes, or serially
// when `pool` is null/empty or n < 2. fn must write results only into
// per-index slots, which makes the output byte-identical for any pool size.
// Subject to ParallelFor's reentrancy rule: fn must not use the same pool.
inline void ParallelIndexFor(size_t n, ThreadPool* pool,
                             const std::function<void(size_t)>& fn) {
  if (pool == nullptr || pool->size() == 0 || n < 2) {
    for (size_t i = 0; i < n; ++i) {
      fn(i);
    }
    return;
  }
  const size_t lanes = pool->size() + 1 < n ? pool->size() + 1 : n;
  pool->ParallelFor(lanes, [&](size_t lane) {
    for (size_t i = lane; i < n; i += lanes) {
      fn(i);
    }
  });
}

}  // namespace fbdetect

#endif  // FBDETECT_SRC_COMMON_THREAD_POOL_H_
