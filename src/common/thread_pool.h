// A fixed-size worker pool with a shared task counter, built for the
// pipeline's per-re-run scan fan-out (§5.1): `RunPeriod` issues many `RunAt`
// calls, and spawning/joining fresh std::threads per run dominates small
// scans. The pool spawns its workers once; each ParallelFor call hands out
// task indices [0, num_tasks) to the workers AND the calling thread, and
// returns when every index has been executed.
//
// Each batch lives in its own heap-allocated state block (shared_ptr-owned
// by the pool and every participating thread): index handout and completion
// are single atomic operations, so the per-task cost is two uncontended
// fetch_adds instead of the historical three mutex round-trips — the
// difference between the funnel scaling at 0.89x and scaling up on 8
// threads. A straggler worker that wakes after a batch finished only ever
// touches its own (still-alive) batch block.
//
// ParallelFor is synchronous and not reentrant: one batch runs at a time,
// and tasks must not call ParallelFor on the same pool.
//
// Exception contract: a task that throws does not abort the process, deadlock
// the batch, or poison the pool. The first exception of a batch is captured;
// the remaining task indices still run to completion (tasks are independent),
// and the captured exception is rethrown on the calling thread when
// ParallelFor joins. The pool is reusable afterwards.
#ifndef FBDETECT_SRC_COMMON_THREAD_POOL_H_
#define FBDETECT_SRC_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace fbdetect {

class ThreadPool {
 public:
  // Spawns `num_threads` workers. 0 is valid: ParallelFor then runs every
  // task on the calling thread (useful for single-threaded configurations).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t size() const { return workers_.size(); }

  // Lifetime usage statistics, for the observability layer. Maintained with
  // per-batch (not per-task) bookkeeping, so the accounting cost is two
  // clock reads per ParallelFor call. Values depend on batch shapes and
  // scheduling, so consumers must export them as runtime (non-deterministic)
  // telemetry.
  struct Stats {
    uint64_t batches = 0;          // ParallelFor calls (serial path included).
    uint64_t tasks = 0;            // Total task indices executed.
    uint64_t max_batch_tasks = 0;  // Deepest queue handed to one batch.
    uint64_t wall_ns = 0;          // Wall time spent inside ParallelFor.
  };
  Stats stats() const;

  // Runs task(0) .. task(num_tasks - 1) across the pool workers and the
  // calling thread; returns once all have completed. Task indices are handed
  // out dynamically, so callers that need determinism must make each task's
  // RESULT depend only on its index (e.g. write into a per-index slot).
  // If any task throws, the batch still completes and the FIRST captured
  // exception is rethrown here.
  void ParallelFor(size_t num_tasks, const std::function<void(size_t)>& task);

 private:
  // Per-batch state. Heap-allocated and shared_ptr-held by every thread that
  // participates, so a worker waking late can safely discover the batch is
  // already drained without racing batch teardown or a successor batch.
  struct Batch {
    Batch(const std::function<void(size_t)>* task_fn, size_t count)
        : task(task_fn), num_tasks(count) {}

    const std::function<void(size_t)>* task;  // Outlives the batch (see join).
    const size_t num_tasks;
    std::atomic<size_t> next{0};       // Next task index to hand out.
    std::atomic<size_t> completed{0};  // Tasks finished.
    std::mutex exception_mutex;        // Guards `exception` (cold path).
    std::exception_ptr exception;      // First task exception of the batch.
  };

  void WorkerLoop();
  // Pulls and runs task indices of `batch` until none remain.
  void DrainBatch(Batch& batch);

  std::vector<std::thread> workers_;

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;  // Signals workers: new batch or stop.
  std::condition_variable done_cv_;  // Signals ParallelFor: batch finished.
  std::shared_ptr<Batch> batch_;     // Null = no batch in flight.
  uint64_t batch_serial_ = 0;        // Bumped per batch so workers detect new work.
  bool stop_ = false;
  Stats stats_;  // Guarded by mutex_.
};

// Convenience for the funnel's slot-indexed stages: runs fn(0) .. fn(n - 1)
// on `pool` plus the calling thread in statically strided lanes, or serially
// when `pool` is null/empty or the batch is too small to amortize a pool
// dispatch. `min_items_per_lane` is the granularity floor: the batch fans
// out over at most n / min_items_per_lane lanes, and falls back to the
// serial path when fewer than 2 lanes result. Cheap per-item stages (a SOM
// BMU search is ~1 microsecond) pass a floor of 8-16 so tiny survivor
// batches skip the wake/join cost entirely; expensive stages keep the
// default of 1.
//
// The lane -> index mapping is static (lane k runs indices k, k + lanes,
// ...), and fn must write results only into per-index slots, which makes the
// output byte-identical for any pool size and any granularity floor.
// Subject to ParallelFor's reentrancy rule: fn must not use the same pool.
inline void ParallelIndexFor(size_t n, ThreadPool* pool,
                             const std::function<void(size_t)>& fn,
                             size_t min_items_per_lane = 1) {
  size_t lanes = 0;
  if (pool != nullptr && pool->size() > 0 && n >= 2) {
    const size_t grain = min_items_per_lane == 0 ? 1 : min_items_per_lane;
    const size_t max_lanes = pool->size() + 1;
    lanes = n / grain;
    if (lanes > max_lanes) {
      lanes = max_lanes;
    }
  }
  if (lanes < 2) {
    for (size_t i = 0; i < n; ++i) {
      fn(i);
    }
    return;
  }
  pool->ParallelFor(lanes, [&](size_t lane) {
    for (size_t i = lane; i < n; i += lanes) {
      fn(i);
    }
  });
}

}  // namespace fbdetect

#endif  // FBDETECT_SRC_COMMON_THREAD_POOL_H_
