#include "src/stats/descriptive.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace fbdetect {

double Mean(std::span<const double> values) {
  if (values.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (double v : values) {
    sum += v;
  }
  return sum / static_cast<double>(values.size());
}

double SampleVariance(std::span<const double> values) {
  if (values.size() < 2) {
    return 0.0;
  }
  const double mean = Mean(values);
  double sum_sq = 0.0;
  for (double v : values) {
    const double d = v - mean;
    sum_sq += d * d;
  }
  return sum_sq / static_cast<double>(values.size() - 1);
}

double PopulationVariance(std::span<const double> values) {
  if (values.empty()) {
    return 0.0;
  }
  const double mean = Mean(values);
  double sum_sq = 0.0;
  for (double v : values) {
    const double d = v - mean;
    sum_sq += d * d;
  }
  return sum_sq / static_cast<double>(values.size());
}

double SampleStdDev(std::span<const double> values) { return std::sqrt(SampleVariance(values)); }

double Median(std::span<const double> values) { return Percentile(values, 50.0); }

double Percentile(std::span<const double> values, double p) {
  if (values.empty()) {
    return 0.0;
  }
  FBD_CHECK(p >= 0.0 && p <= 100.0);
  // NaN breaks std::sort's strict weak ordering (UB); the percentile is
  // defined over the finite samples only, 0.0 when none remain.
  std::vector<double> sorted;
  sorted.reserve(values.size());
  for (const double v : values) {
    if (std::isfinite(v)) {
      sorted.push_back(v);
    }
  }
  if (sorted.empty()) {
    return 0.0;
  }
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) {
    return sorted[0];
  }
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double MedianAbsoluteDeviation(std::span<const double> values, bool normalized) {
  if (values.empty()) {
    return 0.0;
  }
  const double med = Median(values);
  std::vector<double> deviations;
  deviations.reserve(values.size());
  for (double v : values) {
    deviations.push_back(std::fabs(v - med));
  }
  const double mad = Median(deviations);
  // 1.4826 makes the MAD a consistent estimator of sigma for normal data.
  return normalized ? mad * 1.4826 : mad;
}

double Min(std::span<const double> values) {
  if (values.empty()) {
    return 0.0;
  }
  return *std::min_element(values.begin(), values.end());
}

double Max(std::span<const double> values) {
  if (values.empty()) {
    return 0.0;
  }
  return *std::max_element(values.begin(), values.end());
}

double Sum(std::span<const double> values) {
  double sum = 0.0;
  for (double v : values) {
    sum += v;
  }
  return sum;
}

bool HasNonFinite(std::span<const double> values) {
  for (double v : values) {
    if (!std::isfinite(v)) {
      return true;
    }
  }
  return false;
}

}  // namespace fbdetect
