// Trend statistics used by the went-away detector (§5.2.2):
// * Mann–Kendall test for monotonic trends, with the normal approximation of
//   the S statistic (tie-corrected variance).
// * Theil–Sen slope estimator — the median of pairwise slopes — plus an
//   intercept estimate, robust to outliers.
#ifndef FBDETECT_SRC_STATS_TREND_H_
#define FBDETECT_SRC_STATS_TREND_H_

#include <span>

namespace fbdetect {

enum class TrendDirection {
  kNone,
  kIncreasing,
  kDecreasing,
};

struct MannKendallResult {
  long long s_statistic = 0;
  double z_score = 0.0;
  double p_value = 1.0;  // Two-sided.
  TrendDirection direction = TrendDirection::kNone;
  // True when the two-sided p-value is below the alpha passed to the test.
  bool significant = false;
};

// Mann–Kendall trend test at significance level `alpha`. Needs >= 4 points;
// shorter inputs return a non-significant result.
MannKendallResult MannKendallTest(std::span<const double> values, double alpha);

struct TheilSenResult {
  double slope = 0.0;      // Per unit index.
  double intercept = 0.0;  // Median of (y_i - slope * i).
  bool valid = false;      // False for fewer than 2 points.
};

// Theil–Sen estimator over values indexed 0..n-1. O(n^2) pair enumeration;
// inputs here are detection windows (hundreds to a few thousand points).
TheilSenResult TheilSenEstimate(std::span<const double> values);

}  // namespace fbdetect

#endif  // FBDETECT_SRC_STATS_TREND_H_
