// Online (streaming) statistics.
//
// WelfordAccumulator maintains count/mean/M2 with Welford's numerically
// stable update and supports merging (Chan et al.), which the fleet
// aggregation path uses to combine per-server statistics without keeping all
// raw samples in memory.
//
// RollingMoments maintains the same moments over a sliding time window:
// every Add evicts points older than (newest - window) with the reverse
// Welford update, so windowed mean/variance are available in amortized O(1)
// per point. The streaming detector state (src/core/detector_state.h) keeps
// one per scanned series.
#ifndef FBDETECT_SRC_STATS_ACCUMULATOR_H_
#define FBDETECT_SRC_STATS_ACCUMULATOR_H_

#include <cstdint>
#include <deque>
#include <utility>

namespace fbdetect {

class WelfordAccumulator {
 public:
  // Non-finite values are ignored (they would poison mean/M2 permanently)
  // and tallied in ignored_non_finite() instead.
  void Add(double value);

  // Merges another accumulator into this one (parallel-variance formula).
  void Merge(const WelfordAccumulator& other);

  // Accepted samples only; non-finite inputs are excluded.
  int64_t count() const { return count_; }
  int64_t ignored_non_finite() const { return ignored_non_finite_; }
  double mean() const { return mean_; }

  // Unbiased sample variance (n-1); 0.0 if fewer than 2 samples.
  double sample_variance() const;

  // Population variance (n); 0.0 if no samples.
  double population_variance() const;

  double min() const { return min_; }
  double max() const { return max_; }

 private:
  int64_t count_ = 0;
  int64_t ignored_non_finite_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Welford moments over a sliding window of the most recent `window` time
// units. Timestamps are the caller's clock (the TSDB's TimePoint seconds)
// and must be fed in non-decreasing order; each Add first evicts every
// stored point older than (timestamp - window). Non-finite values are
// excluded from the moments (and counted), mirroring WelfordAccumulator.
class RollingMoments {
 public:
  explicit RollingMoments(int64_t window) : window_(window) {}

  // Adds one point and evicts everything older than timestamp - window.
  // Amortized O(1): every point is pushed and popped exactly once.
  void Add(int64_t timestamp, double value);

  int64_t count() const { return count_; }
  int64_t ignored_non_finite() const { return ignored_non_finite_; }
  double mean() const { return mean_; }

  // Unbiased sample variance (n-1); 0.0 if fewer than 2 samples.
  double sample_variance() const;

 private:
  void Remove(double value);

  int64_t window_;
  // (timestamp, value) in arrival order; non-finite values are stored (they
  // occupy window slots and must age out) but excluded from the moments.
  std::deque<std::pair<int64_t, double>> points_;
  int64_t count_ = 0;
  int64_t ignored_non_finite_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace fbdetect

#endif  // FBDETECT_SRC_STATS_ACCUMULATOR_H_
