// Online (streaming) statistics.
//
// WelfordAccumulator maintains count/mean/M2 with Welford's numerically
// stable update and supports merging (Chan et al.), which the fleet
// aggregation path uses to combine per-server statistics without keeping all
// raw samples in memory.
#ifndef FBDETECT_SRC_STATS_ACCUMULATOR_H_
#define FBDETECT_SRC_STATS_ACCUMULATOR_H_

#include <cstdint>

namespace fbdetect {

class WelfordAccumulator {
 public:
  // Non-finite values are ignored (they would poison mean/M2 permanently)
  // and tallied in ignored_non_finite() instead.
  void Add(double value);

  // Merges another accumulator into this one (parallel-variance formula).
  void Merge(const WelfordAccumulator& other);

  // Accepted samples only; non-finite inputs are excluded.
  int64_t count() const { return count_; }
  int64_t ignored_non_finite() const { return ignored_non_finite_; }
  double mean() const { return mean_; }

  // Unbiased sample variance (n-1); 0.0 if fewer than 2 samples.
  double sample_variance() const;

  // Population variance (n); 0.0 if no samples.
  double population_variance() const;

  double min() const { return min_; }
  double max() const { return max_; }

 private:
  int64_t count_ = 0;
  int64_t ignored_non_finite_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace fbdetect

#endif  // FBDETECT_SRC_STATS_ACCUMULATOR_H_
