// Discrete Fourier machinery.
//
// * FourierMagnitudes / DominantFrequency — the handful of DFT coefficient
//   magnitudes SOMDedup uses as clustering features (§5.5.1); computed
//   naively since only a few coefficients are needed.
// * Fft — an iterative radix-2 in-place FFT (power-of-two sizes). The
//   seasonality detector's autocorrelation function is computed through it
//   via the Wiener–Khinchin theorem (power spectrum -> inverse FFT), turning
//   the per-candidate O(n^2) ACF scan into O(n log n).
#ifndef FBDETECT_SRC_STATS_FOURIER_H_
#define FBDETECT_SRC_STATS_FOURIER_H_

#include <complex>
#include <span>
#include <vector>

namespace fbdetect {

// Magnitudes of DFT coefficients 1..num_coefficients of the mean-removed
// series, each normalized by n. O(n * num_coefficients) — the callers only
// need a handful of coefficients, so no FFT machinery is warranted.
std::vector<double> FourierMagnitudes(std::span<const double> values, size_t num_coefficients);

// Index (1-based frequency bin) of the strongest coefficient among 1..n/2;
// 0 for series shorter than 4 points or constant series.
size_t DominantFrequency(std::span<const double> values);

// Smallest power of two >= n (and >= 1).
size_t NextPowerOfTwo(size_t n);

// In-place iterative radix-2 Cooley-Tukey FFT. data.size() must be a power
// of two (FBD_CHECKed). `inverse` computes the inverse transform including
// the 1/n scaling, so Fft(Fft(x), inverse=true) == x up to round-off.
void Fft(std::vector<std::complex<double>>& data, bool inverse);

// Raw autocovariance sums of the mean-removed series via Wiener–Khinchin:
//   result[k] = sum_{i=0}^{n-1-k} (v[i] - mean) * (v[i+k] - mean)
// for k = 0..max_lag (inclusive; clamped to n-1). Zero-padding to a
// power-of-two >= 2n makes the circular correlation equal the linear one.
// O(n log n); used by AutocorrelationFunction.
std::vector<double> AutocovarianceSumsFft(std::span<const double> values, size_t max_lag);

}  // namespace fbdetect

#endif  // FBDETECT_SRC_STATS_FOURIER_H_
