// Discrete Fourier features for SOMDedup (§5.5.1): the magnitudes of the
// first few DFT coefficients summarize a series' shape cheaply and are part
// of the clustering feature vector.
#ifndef FBDETECT_SRC_STATS_FOURIER_H_
#define FBDETECT_SRC_STATS_FOURIER_H_

#include <span>
#include <vector>

namespace fbdetect {

// Magnitudes of DFT coefficients 1..num_coefficients of the mean-removed
// series, each normalized by n. O(n * num_coefficients) — the callers only
// need a handful of coefficients, so no FFT machinery is warranted.
std::vector<double> FourierMagnitudes(std::span<const double> values, size_t num_coefficients);

// Index (1-based frequency bin) of the strongest coefficient among 1..n/2;
// 0 for series shorter than 4 points or constant series.
size_t DominantFrequency(std::span<const double> values);

}  // namespace fbdetect

#endif  // FBDETECT_SRC_STATS_FOURIER_H_
