#include "src/stats/text.h"

#include <cmath>
#include <unordered_set>

#include "src/common/check.h"
#include "src/common/strings.h"

namespace fbdetect {
namespace {

// FNV-1a over the gram bytes; stable across platforms and runs.
uint64_t HashGram(std::string_view gram) {
  uint64_t hash = 1469598103934665603ULL;
  for (char c : gram) {
    hash ^= static_cast<uint8_t>(c);
    hash *= 1099511628211ULL;
  }
  return hash;
}

std::vector<std::string> GramsOf(std::string_view text) {
  std::vector<std::string> grams = CharNgrams(text, 2);
  std::vector<std::string> trigrams = CharNgrams(text, 3);
  grams.insert(grams.end(), trigrams.begin(), trigrams.end());
  return grams;
}

}  // namespace

TermVector BuildTermVector(const std::vector<std::string>& tokens) {
  TermVector vector;
  for (const std::string& token : tokens) {
    vector[token] += 1.0;
  }
  return vector;
}

double CosineSimilarity(const TermVector& a, const TermVector& b) {
  if (a.empty() || b.empty()) {
    return 0.0;
  }
  const TermVector& smaller = a.size() <= b.size() ? a : b;
  const TermVector& larger = a.size() <= b.size() ? b : a;
  double dot = 0.0;
  for (const auto& [term, weight] : smaller) {
    const auto it = larger.find(term);
    if (it != larger.end()) {
      dot += weight * it->second;
    }
  }
  if (dot == 0.0) {
    return 0.0;
  }
  double norm_a = 0.0;
  for (const auto& [term, weight] : a) {
    norm_a += weight * weight;
  }
  double norm_b = 0.0;
  for (const auto& [term, weight] : b) {
    norm_b += weight * weight;
  }
  return dot / (std::sqrt(norm_a) * std::sqrt(norm_b));
}

double TextCosineSimilarity(std::string_view a, std::string_view b) {
  return CosineSimilarity(BuildTermVector(TokenizeIdentifier(a)),
                          BuildTermVector(TokenizeIdentifier(b)));
}

TfIdfHasher::TfIdfHasher(size_t dimensions) : dimensions_(dimensions) {
  FBD_CHECK(dimensions > 0);
}

void TfIdfHasher::Fit(const std::vector<std::string>& corpus) {
  corpus_size_ = corpus.size();
  document_frequency_.clear();
  for (const std::string& document : corpus) {
    std::unordered_set<std::string> seen;
    for (std::string& gram : GramsOf(document)) {
      seen.insert(std::move(gram));
    }
    for (const std::string& gram : seen) {
      ++document_frequency_[gram];
    }
  }
}

std::vector<double> TfIdfHasher::Embed(std::string_view text) const {
  std::vector<double> embedding(dimensions_, 0.0);
  std::unordered_map<std::string, double> counts;
  for (std::string& gram : GramsOf(text)) {
    counts[std::move(gram)] += 1.0;
  }
  for (const auto& [gram, count] : counts) {
    double weight = count;
    if (corpus_size_ > 0) {
      const auto it = document_frequency_.find(gram);
      const double df = it != document_frequency_.end() ? static_cast<double>(it->second) : 0.0;
      // Smoothed IDF so unseen grams still contribute.
      weight *= std::log((1.0 + static_cast<double>(corpus_size_)) / (1.0 + df)) + 1.0;
    }
    embedding[Bucket(gram)] += weight;
  }
  // L2-normalize so SOM distances compare shapes, not string lengths.
  double norm = 0.0;
  for (double v : embedding) {
    norm += v * v;
  }
  if (norm > 0.0) {
    norm = std::sqrt(norm);
    for (double& v : embedding) {
      v /= norm;
    }
  }
  return embedding;
}

size_t TfIdfHasher::Bucket(const std::string& gram) const {
  return static_cast<size_t>(HashGram(gram) % dimensions_);
}

}  // namespace fbdetect
