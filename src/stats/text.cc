#include "src/stats/text.h"

#include <algorithm>
#include <cctype>
#include <cmath>

#include "src/common/check.h"
#include "src/common/strings.h"

namespace fbdetect {
namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

inline char LowerAscii(char c) {
  return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
}

// FNV-1a over the gram bytes; stable across platforms and runs.
uint64_t HashGram(std::string_view gram) {
  uint64_t hash = kFnvOffset;
  for (char c : gram) {
    hash ^= static_cast<uint8_t>(c);
    hash *= kFnvPrime;
  }
  return hash;
}

// FNV-1a of the lower-cased window [begin, begin + n) of `text`; hashes the
// same bytes CharNgrams would have materialized.
uint64_t HashLoweredWindow(std::string_view text, size_t begin, size_t n) {
  uint64_t hash = kFnvOffset;
  for (size_t i = begin; i < begin + n; ++i) {
    hash ^= static_cast<uint8_t>(LowerAscii(text[i]));
    hash *= kFnvPrime;
  }
  return hash;
}

// Appends the hashes of the lower-cased n-grams of `text`, mirroring
// CharNgrams' edge cases: empty input contributes nothing; input no longer
// than n contributes the whole string once.
void AppendNgramHashes(std::string_view text, size_t n, HashedGrams& out) {
  if (text.empty()) {
    return;
  }
  if (text.size() <= n) {
    out.push_back({HashLoweredWindow(text, 0, text.size()), 1.0});
    return;
  }
  for (size_t i = 0; i + n <= text.size(); ++i) {
    out.push_back({HashLoweredWindow(text, i, n), 1.0});
  }
}

// Sorts by hash and merges duplicates, summing counts in source order.
void SortAndMerge(HashedGrams& grams) {
  std::sort(grams.begin(), grams.end(),
            [](const HashedGram& a, const HashedGram& b) { return a.hash < b.hash; });
  size_t out = 0;
  for (size_t i = 0; i < grams.size();) {
    size_t j = i + 1;
    double count = grams[i].count;
    while (j < grams.size() && grams[j].hash == grams[i].hash) {
      count += grams[j].count;
      ++j;
    }
    grams[out++] = {grams[i].hash, count};
    i = j;
  }
  grams.resize(out);
}

}  // namespace

TermVector BuildTermVector(const std::vector<std::string>& tokens) {
  TermVector vector;
  for (const std::string& token : tokens) {
    vector[token] += 1.0;
  }
  return vector;
}

double CosineSimilarity(const TermVector& a, const TermVector& b) {
  if (a.empty() || b.empty()) {
    return 0.0;
  }
  const TermVector& smaller = a.size() <= b.size() ? a : b;
  const TermVector& larger = a.size() <= b.size() ? b : a;
  double dot = 0.0;
  for (const auto& [term, weight] : smaller) {
    const auto it = larger.find(term);
    if (it != larger.end()) {
      dot += weight * it->second;
    }
  }
  if (dot == 0.0) {
    return 0.0;
  }
  double norm_a = 0.0;
  for (const auto& [term, weight] : a) {
    norm_a += weight * weight;
  }
  double norm_b = 0.0;
  for (const auto& [term, weight] : b) {
    norm_b += weight * weight;
  }
  return dot / (std::sqrt(norm_a) * std::sqrt(norm_b));
}

double TextCosineSimilarity(std::string_view a, std::string_view b) {
  return CosineSimilarity(BuildTermVector(TokenizeIdentifier(a)),
                          BuildTermVector(TokenizeIdentifier(b)));
}

uint64_t HashTerm(std::string_view term) { return HashGram(term); }

void HashGramsOf(std::string_view text, HashedGrams& out) {
  out.clear();
  AppendNgramHashes(text, 2, out);
  AppendNgramHashes(text, 3, out);
  SortAndMerge(out);
}

HashedGrams HashGramsOf(std::string_view text) {
  HashedGrams grams;
  HashGramsOf(text, grams);
  return grams;
}

TokenVector BuildTokenVector(const std::vector<std::string>& tokens) {
  TokenVector vector;
  vector.terms.reserve(tokens.size());
  for (const std::string& token : tokens) {
    vector.terms.push_back({HashTerm(token), 1.0});
  }
  SortAndMerge(vector.terms);
  for (const HashedGram& term : vector.terms) {
    vector.norm2 += term.count * term.count;
  }
  return vector;
}

double CosineSimilarity(const TokenVector& a, const TokenVector& b) {
  if (a.empty() || b.empty()) {
    return 0.0;
  }
  double dot = 0.0;
  size_t i = 0;
  size_t j = 0;
  while (i < a.terms.size() && j < b.terms.size()) {
    if (a.terms[i].hash < b.terms[j].hash) {
      ++i;
    } else if (b.terms[j].hash < a.terms[i].hash) {
      ++j;
    } else {
      dot += a.terms[i].count * b.terms[j].count;
      ++i;
      ++j;
    }
  }
  if (dot == 0.0) {
    return 0.0;
  }
  return dot / (std::sqrt(a.norm2) * std::sqrt(b.norm2));
}

TfIdfHasher::TfIdfHasher(size_t dimensions) : dimensions_(dimensions) {
  FBD_CHECK(dimensions > 0);
}

void TfIdfHasher::Fit(const std::vector<std::string>& corpus) {
  corpus_size_ = corpus.size();
  document_frequency_.clear();
  HashedGrams scratch;
  for (const std::string& document : corpus) {
    HashGramsOf(document, scratch);
    for (const HashedGram& gram : scratch) {  // Already distinct per document.
      ++document_frequency_[gram.hash];
    }
  }
}

void TfIdfHasher::FitHashed(std::span<const HashedGrams* const> corpus) {
  corpus_size_ = corpus.size();
  document_frequency_.clear();
  for (const HashedGrams* document : corpus) {
    for (const HashedGram& gram : *document) {
      ++document_frequency_[gram.hash];
    }
  }
}

std::vector<double> TfIdfHasher::Embed(std::string_view text) const {
  std::vector<double> embedding(dimensions_, 0.0);
  EmbedHashed(HashGramsOf(text), embedding);
  return embedding;
}

void TfIdfHasher::EmbedHashed(const HashedGrams& grams, std::span<double> out) const {
  FBD_CHECK(out.size() == dimensions_);
  std::fill(out.begin(), out.end(), 0.0);
  for (const HashedGram& gram : grams) {
    double weight = gram.count;
    if (corpus_size_ > 0) {
      const auto it = document_frequency_.find(gram.hash);
      const double df = it != document_frequency_.end() ? static_cast<double>(it->second) : 0.0;
      // Smoothed IDF so unseen grams still contribute.
      weight *= std::log((1.0 + static_cast<double>(corpus_size_)) / (1.0 + df)) + 1.0;
    }
    out[gram.hash % dimensions_] += weight;
  }
  // L2-normalize so SOM distances compare shapes, not string lengths.
  double norm = 0.0;
  for (double v : out) {
    norm += v * v;
  }
  if (norm > 0.0) {
    norm = std::sqrt(norm);
    for (double& v : out) {
      v /= norm;
    }
  }
}

}  // namespace fbdetect
