// Ordinary least-squares line fit and RMSE, used by the long-term detector
// (§5.3) to decide whether a regression is a gradual ramp (low RMSE against a
// fitted line) or a step (high RMSE, handled by DP change-point search).
#ifndef FBDETECT_SRC_STATS_LINREG_H_
#define FBDETECT_SRC_STATS_LINREG_H_

#include <span>

namespace fbdetect {

struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double rmse = 0.0;       // Root mean squared error of the residuals.
  double r_squared = 0.0;  // Fraction of variance explained.
  bool valid = false;
};

// Fits y = slope * i + intercept over indices 0..n-1.
LinearFit FitLine(std::span<const double> values);

}  // namespace fbdetect

#endif  // FBDETECT_SRC_STATS_LINREG_H_
