#include "src/stats/fourier.h"

#include <cmath>

#include "src/stats/descriptive.h"

namespace fbdetect {
namespace {

// Magnitude of one DFT coefficient of the mean-removed series.
double CoefficientMagnitude(std::span<const double> values, double mean, size_t k) {
  const size_t n = values.size();
  double real = 0.0;
  double imag = 0.0;
  const double angular = -2.0 * M_PI * static_cast<double>(k) / static_cast<double>(n);
  for (size_t i = 0; i < n; ++i) {
    const double angle = angular * static_cast<double>(i);
    const double centered = values[i] - mean;
    real += centered * std::cos(angle);
    imag += centered * std::sin(angle);
  }
  return std::sqrt(real * real + imag * imag) / static_cast<double>(n);
}

}  // namespace

std::vector<double> FourierMagnitudes(std::span<const double> values, size_t num_coefficients) {
  std::vector<double> magnitudes(num_coefficients, 0.0);
  const size_t n = values.size();
  if (n < 2) {
    return magnitudes;
  }
  const double mean = Mean(values);
  for (size_t k = 1; k <= num_coefficients && k < n; ++k) {
    magnitudes[k - 1] = CoefficientMagnitude(values, mean, k);
  }
  return magnitudes;
}

size_t DominantFrequency(std::span<const double> values) {
  const size_t n = values.size();
  if (n < 4) {
    return 0;
  }
  const double mean = Mean(values);
  size_t best_k = 0;
  double best_mag = 0.0;
  for (size_t k = 1; k <= n / 2; ++k) {
    const double mag = CoefficientMagnitude(values, mean, k);
    if (mag > best_mag) {
      best_mag = mag;
      best_k = k;
    }
  }
  return best_mag > 1e-12 ? best_k : 0;
}

}  // namespace fbdetect
