#include "src/stats/fourier.h"

#include <cmath>

#include "src/common/check.h"
#include "src/stats/descriptive.h"

namespace fbdetect {
namespace {

// Magnitude of one DFT coefficient of the mean-removed series.
double CoefficientMagnitude(std::span<const double> values, double mean, size_t k) {
  const size_t n = values.size();
  double real = 0.0;
  double imag = 0.0;
  const double angular = -2.0 * M_PI * static_cast<double>(k) / static_cast<double>(n);
  for (size_t i = 0; i < n; ++i) {
    const double angle = angular * static_cast<double>(i);
    const double centered = values[i] - mean;
    real += centered * std::cos(angle);
    imag += centered * std::sin(angle);
  }
  return std::sqrt(real * real + imag * imag) / static_cast<double>(n);
}

}  // namespace

std::vector<double> FourierMagnitudes(std::span<const double> values, size_t num_coefficients) {
  std::vector<double> magnitudes(num_coefficients, 0.0);
  const size_t n = values.size();
  if (n < 2) {
    return magnitudes;
  }
  const double mean = Mean(values);
  for (size_t k = 1; k <= num_coefficients && k < n; ++k) {
    magnitudes[k - 1] = CoefficientMagnitude(values, mean, k);
  }
  return magnitudes;
}

size_t DominantFrequency(std::span<const double> values) {
  const size_t n = values.size();
  if (n < 4) {
    return 0;
  }
  const double mean = Mean(values);
  size_t best_k = 0;
  double best_mag = 0.0;
  for (size_t k = 1; k <= n / 2; ++k) {
    const double mag = CoefficientMagnitude(values, mean, k);
    if (mag > best_mag) {
      best_mag = mag;
      best_k = k;
    }
  }
  return best_mag > 1e-12 ? best_k : 0;
}

size_t NextPowerOfTwo(size_t n) {
  size_t power = 1;
  while (power < n) {
    power <<= 1;
  }
  return power;
}

void Fft(std::vector<std::complex<double>>& data, bool inverse) {
  const size_t n = data.size();
  FBD_CHECK(n > 0 && (n & (n - 1)) == 0);
  if (n == 1) {
    return;
  }
  // Bit-reversal permutation.
  for (size_t i = 1, j = 0; i < n; ++i) {
    size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) {
      j ^= bit;
    }
    j ^= bit;
    if (i < j) {
      std::swap(data[i], data[j]);
    }
  }
  // Butterflies. Twiddle factors come from std::polar per stage (not a
  // running product) so round-off stays bounded and runs are deterministic.
  for (size_t len = 2; len <= n; len <<= 1) {
    const double angle = (inverse ? 2.0 : -2.0) * M_PI / static_cast<double>(len);
    const std::complex<double> wlen = std::polar(1.0, angle);
    for (size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (size_t k = 0; k < len / 2; ++k) {
        const std::complex<double> even = data[i + k];
        const std::complex<double> odd = data[i + k + len / 2] * w;
        data[i + k] = even + odd;
        data[i + k + len / 2] = even - odd;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    const double scale = 1.0 / static_cast<double>(n);
    for (std::complex<double>& value : data) {
      value *= scale;
    }
  }
}

std::vector<double> AutocovarianceSumsFft(std::span<const double> values, size_t max_lag) {
  const size_t n = values.size();
  if (n == 0) {
    return {};
  }
  const size_t limit = std::min(max_lag, n - 1);
  const double mean = Mean(values);
  // Pad to >= 2n so the circular autocorrelation of the padded signal equals
  // the linear autocorrelation of the original.
  const size_t padded = NextPowerOfTwo(2 * n);
  std::vector<std::complex<double>> buffer(padded, std::complex<double>(0.0, 0.0));
  for (size_t i = 0; i < n; ++i) {
    buffer[i] = std::complex<double>(values[i] - mean, 0.0);
  }
  Fft(buffer, /*inverse=*/false);
  for (std::complex<double>& value : buffer) {
    value = std::complex<double>(std::norm(value), 0.0);
  }
  Fft(buffer, /*inverse=*/true);
  std::vector<double> sums(limit + 1, 0.0);
  for (size_t lag = 0; lag <= limit; ++lag) {
    sums[lag] = buffer[lag].real();
  }
  return sums;
}

}  // namespace fbdetect
