#include "src/stats/linreg.h"

#include <cmath>

#include "src/stats/descriptive.h"

namespace fbdetect {

LinearFit FitLine(std::span<const double> values) {
  LinearFit fit;
  const size_t n = values.size();
  if (n < 2) {
    return fit;
  }
  const double dn = static_cast<double>(n);
  const double mean_x = (dn - 1.0) / 2.0;
  const double mean_y = Mean(values);
  double sxx = 0.0;
  double sxy = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double dx = static_cast<double>(i) - mean_x;
    sxx += dx * dx;
    sxy += dx * (values[i] - mean_y);
  }
  fit.slope = sxx > 0.0 ? sxy / sxx : 0.0;
  fit.intercept = mean_y - fit.slope * mean_x;
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double predicted = fit.slope * static_cast<double>(i) + fit.intercept;
    const double res = values[i] - predicted;
    ss_res += res * res;
    const double dev = values[i] - mean_y;
    ss_tot += dev * dev;
  }
  fit.rmse = std::sqrt(ss_res / dn);
  fit.r_squared = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 0.0;
  fit.valid = true;
  return fit;
}

}  // namespace fbdetect
