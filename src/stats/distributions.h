// Probability distribution functions needed by the hypothesis tests:
// standard normal CDF/quantile, chi-squared CDF (via the regularized lower
// incomplete gamma function), and Student-t critical values.
//
// Accuracy targets are the needs of the detectors (p-values compared against
// 0.01/0.05-style thresholds), not scientific libraries: everything here is
// good to ~1e-8 or better over the ranges the detectors use.
#ifndef FBDETECT_SRC_STATS_DISTRIBUTIONS_H_
#define FBDETECT_SRC_STATS_DISTRIBUTIONS_H_

namespace fbdetect {

// Standard normal cumulative distribution function.
double NormalCdf(double z);

// Inverse of NormalCdf for p in (0, 1) (Acklam's rational approximation with
// one Halley refinement step).
double NormalQuantile(double p);

// Regularized lower incomplete gamma function P(a, x), a > 0, x >= 0.
double RegularizedGammaP(double a, double x);

// Chi-squared CDF with k degrees of freedom.
double ChiSquaredCdf(double x, double k);

// Upper-tail p-value for a chi-squared statistic.
double ChiSquaredSurvival(double x, double k);

// Two-sided Student-t critical value for the given significance level alpha
// (e.g. 0.01) and degrees of freedom. Uses the normal quantile plus the
// Cornish–Fisher expansion in 1/df, accurate to ~1e-3 for df >= 3 which is
// ample for detection thresholds.
double StudentTCriticalTwoSided(double alpha, double degrees_of_freedom);

// Regularized incomplete beta function I_x(a, b) for a, b > 0, x in [0, 1].
double RegularizedIncompleteBeta(double a, double b, double x);

// Two-sided p-value of a t statistic — exact via the incomplete beta
// function: p = I_{df/(df+t^2)}(df/2, 1/2).
double StudentTSurvivalTwoSided(double t, double degrees_of_freedom);

}  // namespace fbdetect

#endif  // FBDETECT_SRC_STATS_DISTRIBUTIONS_H_
