// Hypothesis tests used by the detectors.
//
// * Welch's two-sample t-test — the Appendix A.2 model behind the detection
//   threshold law Δthreshold ∝ sqrt(σ²/n).
// * Likelihood-ratio chi-squared test for a single mean shift — §5.2.1's
//   validation step for change-point candidates (H0: one mean vs H1: two
//   means around a change point), with significance level 0.01.
#ifndef FBDETECT_SRC_STATS_HYPOTHESIS_H_
#define FBDETECT_SRC_STATS_HYPOTHESIS_H_

#include <span>

namespace fbdetect {

struct TTestResult {
  double t_statistic = 0.0;
  double degrees_of_freedom = 0.0;
  double p_value = 1.0;  // Two-sided.
  bool significant = false;
};

// Welch's t-test (unequal variances). `alpha` is the two-sided significance
// level. Returns a non-significant result when either group has < 2 samples
// or both variances are zero with equal means.
TTestResult WelchTTest(std::span<const double> group_a, std::span<const double> group_b,
                       double alpha);

struct LikelihoodRatioResult {
  double statistic = 0.0;  // -2 log(L0/L1), asymptotically chi-squared(1 .. 2).
  double p_value = 1.0;
  bool significant = false;
};

// Likelihood-ratio test of H0 "one normal mean over the whole series" against
// H1 "one mean before `change_point` and another after", assuming a common
// (profiled-out) variance. `change_point` indexes the first element of the
// post-change segment. The statistic is referred to a chi-squared(1)
// distribution per Wilks' theorem (§5.2.1 / [75]).
LikelihoodRatioResult MeanShiftLikelihoodRatioTest(std::span<const double> values,
                                                   size_t change_point, double alpha);

}  // namespace fbdetect

#endif  // FBDETECT_SRC_STATS_HYPOTHESIS_H_
