#include "src/stats/distributions.h"

#include <cmath>

#include "src/common/check.h"

namespace fbdetect {
namespace {

// Lanczos approximation of log Gamma(x), x > 0.
double LogGamma(double x) {
  static const double kCoefficients[] = {
      76.18009172947146,  -86.50532032941677,    24.01409824083091,
      -1.231739572450155, 0.1208650973866179e-2, -0.5395239384953e-5,
  };
  double y = x;
  double tmp = x + 5.5;
  tmp -= (x + 0.5) * std::log(tmp);
  double series = 1.000000000190015;
  for (double coefficient : kCoefficients) {
    series += coefficient / ++y;
  }
  return -tmp + std::log(2.5066282746310005 * series / x);
}

// Series representation of P(a, x), converges fast for x < a + 1.
double GammaPSeries(double a, double x) {
  double ap = a;
  double sum = 1.0 / a;
  double term = sum;
  for (int i = 0; i < 500; ++i) {
    ++ap;
    term *= x / ap;
    sum += term;
    if (std::fabs(term) < std::fabs(sum) * 1e-15) {
      break;
    }
  }
  return sum * std::exp(-x + a * std::log(x) - LogGamma(a));
}

// Continued fraction for Q(a, x) = 1 - P(a, x), converges fast for x >= a + 1.
double GammaQContinuedFraction(double a, double x) {
  const double kTiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= 500; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < kTiny) {
      d = kTiny;
    }
    c = b + an / c;
    if (std::fabs(c) < kTiny) {
      c = kTiny;
    }
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::fabs(delta - 1.0) < 1e-15) {
      break;
    }
  }
  return std::exp(-x + a * std::log(x) - LogGamma(a)) * h;
}

}  // namespace

double NormalCdf(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

double NormalQuantile(double p) {
  FBD_CHECK(p > 0.0 && p < 1.0);
  // Acklam's inverse-normal approximation.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double p_low = 0.02425;
  double x = 0.0;
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - p_low) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  // One step of Halley's method against the exact CDF.
  const double e = NormalCdf(x) - p;
  const double u = e * std::sqrt(2.0 * M_PI) * std::exp(x * x / 2.0);
  x = x - u / (1.0 + x * u / 2.0);
  return x;
}

double RegularizedGammaP(double a, double x) {
  FBD_CHECK(a > 0.0);
  FBD_CHECK(x >= 0.0);
  if (x == 0.0) {
    return 0.0;
  }
  if (x < a + 1.0) {
    return GammaPSeries(a, x);
  }
  return 1.0 - GammaQContinuedFraction(a, x);
}

double ChiSquaredCdf(double x, double k) {
  if (x <= 0.0) {
    return 0.0;
  }
  return RegularizedGammaP(k / 2.0, x / 2.0);
}

double ChiSquaredSurvival(double x, double k) { return 1.0 - ChiSquaredCdf(x, k); }

double StudentTCriticalTwoSided(double alpha, double degrees_of_freedom) {
  FBD_CHECK(alpha > 0.0 && alpha < 1.0);
  FBD_CHECK(degrees_of_freedom >= 1.0);
  const double z = NormalQuantile(1.0 - alpha / 2.0);
  const double df = degrees_of_freedom;
  // Cornish–Fisher expansion of the t quantile in powers of 1/df.
  const double z3 = z * z * z;
  const double z5 = z3 * z * z;
  const double z7 = z5 * z * z;
  double t = z;
  t += (z3 + z) / (4.0 * df);
  t += (5.0 * z5 + 16.0 * z3 + 3.0 * z) / (96.0 * df * df);
  t += (3.0 * z7 + 19.0 * z5 + 17.0 * z3 - 15.0 * z) / (384.0 * df * df * df);
  return t;
}

double RegularizedIncompleteBeta(double a, double b, double x) {
  FBD_CHECK(a > 0.0 && b > 0.0);
  FBD_CHECK(x >= 0.0 && x <= 1.0);
  if (x == 0.0 || x == 1.0) {
    return x;
  }
  // Lentz continued fraction; converges fastest for x < (a+1)/(a+b+2),
  // otherwise use the symmetry I_x(a,b) = 1 - I_{1-x}(b,a).
  if (x > (a + 1.0) / (a + b + 2.0)) {
    return 1.0 - RegularizedIncompleteBeta(b, a, 1.0 - x);
  }
  const double log_front =
      a * std::log(x) + b * std::log(1.0 - x) - std::log(a) -
      (LogGamma(a) + LogGamma(b) - LogGamma(a + b));
  const double kTiny = 1e-300;
  double c = 1.0;
  double d = 1.0 - (a + b) * x / (a + 1.0);
  if (std::fabs(d) < kTiny) {
    d = kTiny;
  }
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= 300; ++m) {
    const double dm = static_cast<double>(m);
    // Even step.
    double numerator = dm * (b - dm) * x / ((a + 2.0 * dm - 1.0) * (a + 2.0 * dm));
    d = 1.0 + numerator * d;
    if (std::fabs(d) < kTiny) {
      d = kTiny;
    }
    c = 1.0 + numerator / c;
    if (std::fabs(c) < kTiny) {
      c = kTiny;
    }
    d = 1.0 / d;
    h *= d * c;
    // Odd step.
    numerator = -(a + dm) * (a + b + dm) * x / ((a + 2.0 * dm) * (a + 2.0 * dm + 1.0));
    d = 1.0 + numerator * d;
    if (std::fabs(d) < kTiny) {
      d = kTiny;
    }
    c = 1.0 + numerator / c;
    if (std::fabs(c) < kTiny) {
      c = kTiny;
    }
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::fabs(delta - 1.0) < 1e-15) {
      break;
    }
  }
  return std::exp(log_front) * h;
}

double StudentTSurvivalTwoSided(double t, double degrees_of_freedom) {
  FBD_CHECK(degrees_of_freedom >= 1.0);
  if (!std::isfinite(t)) {
    return 0.0;
  }
  const double df = degrees_of_freedom;
  const double x = df / (df + t * t);
  return RegularizedIncompleteBeta(df / 2.0, 0.5, x);
}

}  // namespace fbdetect
