#include "src/stats/correlation.h"

#include <algorithm>
#include <cmath>

#include "src/common/simd.h"
#include "src/stats/descriptive.h"
#include "src/stats/fourier.h"

namespace fbdetect {

namespace {

// Below this size the direct ACF beats the FFT's constant factor (complex
// buffers, two transforms over >= 2n padded points).
constexpr size_t kFftAcfMinSize = 64;

}  // namespace

double PearsonCorrelation(std::span<const double> x, std::span<const double> y) {
  const size_t n = std::min(x.size(), y.size());
  if (n < 2) {
    return 0.0;
  }
  // The sums and centered moments go through the simd.h kernels, whose
  // lane-striped reduction order is identical across the scalar/AVX2/NEON
  // implementations — so this function returns the same bits on every
  // instruction set (the SIMD determinism contract, DESIGN.md §13).
  // AlignedPearson routes through here too, which keeps the pairwise-dedup
  // fast path bit-exact with its materialize-then-correlate oracle.
  const simd::Kernels& kernels = simd::Active();
  double sum_x = 0.0;
  double sum_y = 0.0;
  kernels.sum_pair(x.data(), y.data(), n, &sum_x, &sum_y);
  const double mean_x = sum_x / static_cast<double>(n);
  const double mean_y = sum_y / static_cast<double>(n);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  kernels.centered_moments(x.data(), y.data(), n, mean_x, mean_y, &sxy, &sxx, &syy);
  if (sxx <= 0.0 || syy <= 0.0) {
    return 0.0;
  }
  const double r = sxy / std::sqrt(sxx * syy);
  // NaN/Inf inputs poison the sums (and `sxx <= 0.0` is false for NaN);
  // report "no correlation" instead of propagating the poison.
  return std::isfinite(r) ? r : 0.0;
}

double Autocorrelation(std::span<const double> values, size_t lag) {
  const size_t n = values.size();
  if (lag == 0 || lag >= n) {
    return 0.0;
  }
  const double mean = Mean(values);
  double denom = 0.0;
  for (double v : values) {
    const double d = v - mean;
    denom += d * d;
  }
  if (denom <= 0.0) {
    return 0.0;
  }
  double num = 0.0;
  for (size_t i = 0; i + lag < n; ++i) {
    num += (values[i] - mean) * (values[i + lag] - mean);
  }
  const double r = num / denom;
  return std::isfinite(r) ? r : 0.0;  // Same non-finite guard as Pearson.
}

std::vector<double> AutocorrelationFunctionBruteForce(std::span<const double> values,
                                                      size_t max_lag) {
  const size_t n = values.size();
  const size_t limit = n == 0 ? 0 : std::min(max_lag, n - 1);
  std::vector<double> acf(limit, 0.0);
  if (limit == 0) {
    return acf;
  }
  // Mean and denominator are lag-independent; computing them once instead of
  // per lag halves the direct path's work.
  const double mean = Mean(values);
  double denom = 0.0;
  for (double v : values) {
    const double d = v - mean;
    denom += d * d;
  }
  if (denom <= 0.0) {
    return acf;  // Constant series: all zeros, matching Autocorrelation().
  }
  for (size_t lag = 1; lag <= limit; ++lag) {
    double num = 0.0;
    for (size_t i = 0; i + lag < n; ++i) {
      num += (values[i] - mean) * (values[i + lag] - mean);
    }
    acf[lag - 1] = num / denom;
  }
  return acf;
}

std::vector<double> AutocorrelationFunction(std::span<const double> values, size_t max_lag) {
  const size_t n = values.size();
  if (n < kFftAcfMinSize) {
    return AutocorrelationFunctionBruteForce(values, max_lag);
  }
  const size_t limit = std::min(max_lag, n - 1);
  std::vector<double> acf(limit, 0.0);
  if (limit == 0) {
    return acf;
  }
  // Wiener–Khinchin: FFT -> power spectrum -> inverse FFT yields every
  // lagged product sum in one O(n log n) pass; sums[0] is the denominator.
  const std::vector<double> sums = AutocovarianceSumsFft(values, limit);
  const double denom = sums[0];
  if (denom <= 0.0) {
    return acf;  // Constant series.
  }
  for (size_t lag = 1; lag <= limit; ++lag) {
    acf[lag - 1] = sums[lag] / denom;
  }
  return acf;
}

SeasonalityEstimate DetectSeasonality(std::span<const double> values, size_t min_period,
                                      size_t max_period, double min_correlation) {
  SeasonalityEstimate estimate;
  const size_t n = values.size();
  if (n < 8 || min_period < 2) {
    return estimate;
  }
  const size_t cap = std::min(max_period, n / 2);
  if (cap < min_period) {
    return estimate;
  }
  const std::vector<double> acf = AutocorrelationFunction(values, cap);
  // White-noise band: |r| > 2/sqrt(n) is significant at ~95%.
  const double noise_band = 2.0 / std::sqrt(static_cast<double>(n));
  double best = 0.0;
  size_t best_lag = 0;
  for (size_t lag = min_period; lag <= cap; ++lag) {
    const double r = acf[lag - 1];
    // Require a local peak so harmonics of short-lag noise do not win.
    const double prev = lag >= 2 ? acf[lag - 2] : r;
    const double next = lag < cap ? acf[lag] : r;
    if (r >= prev && r >= next && r > best) {
      best = r;
      best_lag = lag;
    }
  }
  if (best_lag != 0 && best > std::max(min_correlation, noise_band)) {
    estimate.present = true;
    estimate.period = best_lag;
    estimate.correlation = best;
  }
  return estimate;
}

}  // namespace fbdetect
