#include "src/stats/trend.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include "src/stats/distributions.h"

namespace fbdetect {

MannKendallResult MannKendallTest(std::span<const double> values, double alpha) {
  MannKendallResult result;
  const size_t n = values.size();
  if (n < 4) {
    return result;
  }
  long long s = 0;
  for (size_t i = 0; i + 1 < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      if (values[j] > values[i]) {
        ++s;
      } else if (values[j] < values[i]) {
        --s;
      }
    }
  }
  result.s_statistic = s;

  // Tie-corrected variance of S.
  std::map<double, long long> tie_groups;
  for (double v : values) {
    ++tie_groups[v];
  }
  const double dn = static_cast<double>(n);
  double variance = dn * (dn - 1.0) * (2.0 * dn + 5.0);
  for (const auto& [value, count] : tie_groups) {
    if (count > 1) {
      const double t = static_cast<double>(count);
      variance -= t * (t - 1.0) * (2.0 * t + 5.0);
    }
  }
  variance /= 18.0;
  if (variance <= 0.0) {
    return result;  // All values tied: no trend.
  }
  const double sd = std::sqrt(variance);
  // Continuity correction.
  double z = 0.0;
  if (s > 0) {
    z = (static_cast<double>(s) - 1.0) / sd;
  } else if (s < 0) {
    z = (static_cast<double>(s) + 1.0) / sd;
  }
  result.z_score = z;
  result.p_value = 2.0 * (1.0 - NormalCdf(std::fabs(z)));
  result.significant = result.p_value < alpha;
  if (result.significant) {
    result.direction = s > 0 ? TrendDirection::kIncreasing : TrendDirection::kDecreasing;
  }
  return result;
}

TheilSenResult TheilSenEstimate(std::span<const double> values) {
  TheilSenResult result;
  const size_t n = values.size();
  if (n < 2) {
    return result;
  }
  std::vector<double> slopes;
  slopes.reserve(n * (n - 1) / 2);
  for (size_t i = 0; i + 1 < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      slopes.push_back((values[j] - values[i]) / static_cast<double>(j - i));
    }
  }
  const size_t mid = slopes.size() / 2;
  std::nth_element(slopes.begin(), slopes.begin() + static_cast<long>(mid), slopes.end());
  double slope = slopes[mid];
  if (slopes.size() % 2 == 0) {
    std::nth_element(slopes.begin(), slopes.begin() + static_cast<long>(mid) - 1,
                     slopes.begin() + static_cast<long>(mid));
    slope = (slope + slopes[mid - 1]) / 2.0;
  }
  result.slope = slope;

  std::vector<double> intercepts;
  intercepts.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    intercepts.push_back(values[i] - slope * static_cast<double>(i));
  }
  std::nth_element(intercepts.begin(), intercepts.begin() + static_cast<long>(n / 2),
                   intercepts.end());
  result.intercept = intercepts[n / 2];
  result.valid = true;
  return result;
}

}  // namespace fbdetect
