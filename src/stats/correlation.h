// Correlation measures: Pearson's r (PairwiseDedup and root-cause time-series
// correlation, §5.5.2/§5.6) and the autocorrelation function used by the
// seasonality detector (§5.2.3) to decide whether STL should run at all.
//
// The full ACF is the seasonality detector's dominant cost (it scans lags up
// to n/2 on every candidate), so AutocorrelationFunction computes it in
// O(n log n) via the Wiener–Khinchin theorem once the series is large enough
// to justify the FFT; the direct O(n * max_lag) implementation is kept as
// the reference and cross-checked in tests.
#ifndef FBDETECT_SRC_STATS_CORRELATION_H_
#define FBDETECT_SRC_STATS_CORRELATION_H_

#include <span>
#include <vector>

namespace fbdetect {

// Pearson correlation coefficient of two equal-length spans; 0.0 when either
// side is constant or shorter than 2.
double PearsonCorrelation(std::span<const double> x, std::span<const double> y);

// Autocorrelation at a single lag (1 <= lag < n); 0.0 outside that range or
// for constant series.
double Autocorrelation(std::span<const double> values, size_t lag);

// Autocorrelation for lags 1..max_lag (clamped to n-1). Uses the FFT-based
// O(n log n) path for large inputs and the direct path for small ones; both
// agree to ~1e-12 (tested at 1e-9).
std::vector<double> AutocorrelationFunction(std::span<const double> values, size_t max_lag);

// Direct O(n * max_lag) reference implementation (mean and denominator
// hoisted out of the per-lag loop).
std::vector<double> AutocorrelationFunctionBruteForce(std::span<const double> values,
                                                      size_t max_lag);

struct SeasonalityEstimate {
  bool present = false;
  size_t period = 0;        // Lag of the strongest significant ACF peak.
  double correlation = 0.0;  // ACF value at that lag.
};

// Scans the ACF for the strongest local peak whose correlation exceeds both
// `min_correlation` and the ~2/sqrt(n) white-noise significance band.
// `min_period` skips trivially short lags.
SeasonalityEstimate DetectSeasonality(std::span<const double> values, size_t min_period,
                                      size_t max_period, double min_correlation);

}  // namespace fbdetect

#endif  // FBDETECT_SRC_STATS_CORRELATION_H_
