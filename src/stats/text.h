// Text-feature machinery:
// * Sparse term-frequency vectors with cosine similarity (§5.5.2's "text
//   cosine similarity" feature and §5.6's regression/change text matching).
// * A TF-IDF model over character n-grams of metric IDs, hashed to a dense
//   integer signature, matching §5.5.1's "convert metric IDs into integers
//   using TF-IDF with 2- and 3-gram lengths".
//
// Two representations coexist:
// * String-keyed TermVector / Fit(corpus of strings) — the readable form used
//   by tests and the root-cause text matching.
// * Hash-keyed TokenVector / HashedGrams — the funnel's hot-path form
//   (PR 3): terms and 2/3-grams are reduced to 64-bit FNV-1a hashes without
//   materializing a std::string per gram, precomputed once per regression in
//   its RegressionFingerprint and reused by every downstream stage.
#ifndef FBDETECT_SRC_STATS_TEXT_H_
#define FBDETECT_SRC_STATS_TEXT_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace fbdetect {

// Sparse bag-of-terms vector.
using TermVector = std::unordered_map<std::string, double>;

// Builds a term-frequency vector from word tokens (see TokenizeIdentifier).
TermVector BuildTermVector(const std::vector<std::string>& tokens);

// Cosine similarity of two sparse vectors; 0.0 when either is empty.
double CosineSimilarity(const TermVector& a, const TermVector& b);

// Convenience: tokenize both texts and return their cosine similarity.
double TextCosineSimilarity(std::string_view a, std::string_view b);

// Stable FNV-1a 64-bit hash of a term's bytes (no case folding; callers hash
// already-lowered tokens).
uint64_t HashTerm(std::string_view term);

// One distinct hashed gram (or token) and its multiplicity in the source
// string.
struct HashedGram {
  uint64_t hash = 0;
  double count = 0.0;

  friend bool operator==(const HashedGram&, const HashedGram&) = default;
};

// Distinct hashed grams sorted ascending by hash. The deterministic order
// makes downstream dot products / embeddings independent of hash-map
// iteration order, which is what keeps the parallel funnel byte-identical
// across thread counts.
using HashedGrams = std::vector<HashedGram>;

// The hashed 2- and 3-character-gram multiset of `text`, lower-cased on the
// fly (no per-gram string materialization). Mirrors CharNgrams' edge case:
// input no longer than n contributes the whole lowered string as a single
// gram for that n. `out` is cleared first; capacity is reused.
void HashGramsOf(std::string_view text, HashedGrams& out);
HashedGrams HashGramsOf(std::string_view text);

// Hash-keyed term-frequency vector with its precomputed squared L2 norm.
// `terms` is sorted ascending by hash (same determinism rationale as
// HashedGrams). Cosine between two of these involves only a merge-intersect
// — no hashing, no lookups.
struct TokenVector {
  HashedGrams terms;
  double norm2 = 0.0;

  bool empty() const { return terms.empty(); }
};

// Hash-keyed equivalent of BuildTermVector. Counts are exact small integers,
// so cosine dot products are bit-identical to the string-keyed path
// regardless of summation order.
TokenVector BuildTokenVector(const std::vector<std::string>& tokens);

// Cosine similarity of two hashed term vectors; 0.0 when either is empty or
// they share no term.
double CosineSimilarity(const TokenVector& a, const TokenVector& b);

// TF-IDF embedding of strings into a fixed-dimension dense vector using
// hashed character 2- and 3-grams. The model is fitted on a corpus (to learn
// document frequencies) and then embeds any string; SOMDedup feeds these
// dense vectors into the map. Document frequencies are keyed by gram hash,
// so a fitted model never stores gram strings.
class TfIdfHasher {
 public:
  explicit TfIdfHasher(size_t dimensions);

  // Learns document frequencies from the corpus.
  void Fit(const std::vector<std::string>& corpus);

  // Same, from pre-hashed gram sets (one per document); the funnel fits on
  // the fingerprints' cached grams without touching the strings again.
  void FitHashed(std::span<const HashedGrams* const> corpus);

  // Embeds one string. Uses IDF weights when fitted; otherwise plain TF.
  std::vector<double> Embed(std::string_view text) const;

  // Allocation-free embedding of a pre-hashed gram set into `out`, which
  // must have exactly `dimensions()` elements (zeroed by this call).
  void EmbedHashed(const HashedGrams& grams, std::span<double> out) const;

  size_t dimensions() const { return dimensions_; }

 private:
  size_t dimensions_;
  size_t corpus_size_ = 0;
  std::unordered_map<uint64_t, size_t> document_frequency_;
};

}  // namespace fbdetect

#endif  // FBDETECT_SRC_STATS_TEXT_H_
