// Text-feature machinery:
// * Sparse term-frequency vectors with cosine similarity (§5.5.2's "text
//   cosine similarity" feature and §5.6's regression/change text matching).
// * A TF-IDF model over character n-grams of metric IDs, hashed to a dense
//   integer signature, matching §5.5.1's "convert metric IDs into integers
//   using TF-IDF with 2- and 3-gram lengths".
#ifndef FBDETECT_SRC_STATS_TEXT_H_
#define FBDETECT_SRC_STATS_TEXT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace fbdetect {

// Sparse bag-of-terms vector.
using TermVector = std::unordered_map<std::string, double>;

// Builds a term-frequency vector from word tokens (see TokenizeIdentifier).
TermVector BuildTermVector(const std::vector<std::string>& tokens);

// Cosine similarity of two sparse vectors; 0.0 when either is empty.
double CosineSimilarity(const TermVector& a, const TermVector& b);

// Convenience: tokenize both texts and return their cosine similarity.
double TextCosineSimilarity(std::string_view a, std::string_view b);

// TF-IDF embedding of strings into a fixed-dimension dense vector using
// hashed character 2- and 3-grams. The model is fitted on a corpus (to learn
// document frequencies) and then embeds any string; SOMDedup feeds these
// dense vectors into the map.
class TfIdfHasher {
 public:
  explicit TfIdfHasher(size_t dimensions);

  // Learns document frequencies from the corpus.
  void Fit(const std::vector<std::string>& corpus);

  // Embeds one string. Uses IDF weights when fitted; otherwise plain TF.
  std::vector<double> Embed(std::string_view text) const;

  size_t dimensions() const { return dimensions_; }

 private:
  // Stable hash of a gram into [0, dimensions).
  size_t Bucket(const std::string& gram) const;

  size_t dimensions_;
  size_t corpus_size_ = 0;
  std::unordered_map<std::string, size_t> document_frequency_;
};

}  // namespace fbdetect

#endif  // FBDETECT_SRC_STATS_TEXT_H_
