#include "src/stats/hypothesis.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/check.h"
#include "src/stats/descriptive.h"
#include "src/stats/distributions.h"

namespace fbdetect {

TTestResult WelchTTest(std::span<const double> group_a, std::span<const double> group_b,
                       double alpha) {
  TTestResult result;
  if (group_a.size() < 2 || group_b.size() < 2) {
    return result;
  }
  const double na = static_cast<double>(group_a.size());
  const double nb = static_cast<double>(group_b.size());
  const double mean_a = Mean(group_a);
  const double mean_b = Mean(group_b);
  const double var_a = SampleVariance(group_a);
  const double var_b = SampleVariance(group_b);
  const double se2 = var_a / na + var_b / nb;
  if (se2 <= 0.0) {
    // Degenerate (constant) groups have no scale of their own, and exact
    // mean equality here declared 1-ulp rounding wobble significant with
    // p = 0 (the KSigma lesson, PR 5). The difference must clear a
    // relative-tolerance floor of the constant levels to count.
    result.degrees_of_freedom = na + nb - 2.0;
    const double tolerance =
        1e-9 * std::max({std::fabs(mean_a), std::fabs(mean_b), 1.0});
    result.significant = std::fabs(mean_a - mean_b) > tolerance;
    result.p_value = result.significant ? 0.0 : 1.0;
    result.t_statistic = result.significant ? std::numeric_limits<double>::infinity() : 0.0;
    return result;
  }
  result.t_statistic = (mean_a - mean_b) / std::sqrt(se2);
  // Welch–Satterthwaite degrees of freedom.
  const double num = se2 * se2;
  const double den = (var_a / na) * (var_a / na) / (na - 1.0) + (var_b / nb) * (var_b / nb) / (nb - 1.0);
  result.degrees_of_freedom = den > 0.0 ? num / den : na + nb - 2.0;
  result.p_value = StudentTSurvivalTwoSided(result.t_statistic, std::max(1.0, result.degrees_of_freedom));
  result.significant = result.p_value < alpha;
  return result;
}

LikelihoodRatioResult MeanShiftLikelihoodRatioTest(std::span<const double> values,
                                                   size_t change_point, double alpha) {
  LikelihoodRatioResult result;
  const size_t n = values.size();
  if (change_point < 2 || change_point + 2 > n) {
    return result;
  }
  // Under a normal model with common variance, -2 log Lambda reduces to
  // n * log(RSS0 / RSS1) where RSS0 is the residual sum of squares around the
  // single mean and RSS1 around the two segment means.
  const double grand_mean = Mean(values);
  double rss0 = 0.0;
  for (double v : values) {
    const double d = v - grand_mean;
    rss0 += d * d;
  }
  const auto before = values.subspan(0, change_point);
  const auto after = values.subspan(change_point);
  const double mean_before = Mean(before);
  const double mean_after = Mean(after);
  double rss1 = 0.0;
  for (double v : before) {
    const double d = v - mean_before;
    rss1 += d * d;
  }
  for (double v : after) {
    const double d = v - mean_after;
    rss1 += d * d;
  }
  if (rss1 <= 0.0) {
    // Perfect two-segment fit (both segments constant). Exact mean equality
    // here suffered the same 1-ulp bug as WelchTTest above: a rounding
    // wobble between two constant plateaus produced p = 0. Require the jump
    // to clear a relative-tolerance floor of the plateau levels.
    const double tolerance =
        1e-9 * std::max({std::fabs(mean_before), std::fabs(mean_after), 1.0});
    result.significant = std::fabs(mean_before - mean_after) > tolerance;
    result.p_value = result.significant ? 0.0 : 1.0;
    result.statistic = result.significant ? std::numeric_limits<double>::infinity() : 0.0;
    return result;
  }
  result.statistic = static_cast<double>(n) * std::log(rss0 / rss1);
  if (result.statistic < 0.0) {
    result.statistic = 0.0;  // Guard against rounding noise; RSS0 >= RSS1 always.
  }
  result.p_value = ChiSquaredSurvival(result.statistic, 1.0);
  result.significant = result.p_value < alpha;
  return result;
}

}  // namespace fbdetect
