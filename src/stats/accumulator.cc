#include "src/stats/accumulator.h"

#include <algorithm>

namespace fbdetect {

void WelfordAccumulator::Add(double value) {
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

void WelfordAccumulator::Merge(const WelfordAccumulator& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const int64_t total = count_ + other.count_;
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  m2_ += other.m2_ + delta * delta * na * nb / static_cast<double>(total);
  mean_ += delta * nb / static_cast<double>(total);
  count_ = total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double WelfordAccumulator::sample_variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double WelfordAccumulator::population_variance() const {
  if (count_ == 0) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_);
}

}  // namespace fbdetect
