#include "src/stats/accumulator.h"

#include <algorithm>
#include <cmath>

namespace fbdetect {

void WelfordAccumulator::Add(double value) {
  if (!std::isfinite(value)) {
    // One NaN would poison mean/M2 (and min/max comparisons) forever; count
    // the sample as ignored instead so callers can see the dirt.
    ++ignored_non_finite_;
    return;
  }
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

void WelfordAccumulator::Merge(const WelfordAccumulator& other) {
  ignored_non_finite_ += other.ignored_non_finite_;
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    const int64_t ignored = ignored_non_finite_;
    *this = other;
    ignored_non_finite_ = ignored;
    return;
  }
  const double delta = other.mean_ - mean_;
  const int64_t total = count_ + other.count_;
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  m2_ += other.m2_ + delta * delta * na * nb / static_cast<double>(total);
  mean_ += delta * nb / static_cast<double>(total);
  count_ = total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double WelfordAccumulator::sample_variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double WelfordAccumulator::population_variance() const {
  if (count_ == 0) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_);
}

void RollingMoments::Add(int64_t timestamp, double value) {
  while (!points_.empty() && points_.front().first <= timestamp - window_) {
    Remove(points_.front().second);
    points_.pop_front();
  }
  points_.emplace_back(timestamp, value);
  if (!std::isfinite(value)) {
    ++ignored_non_finite_;
    return;
  }
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

void RollingMoments::Remove(double value) {
  if (!std::isfinite(value)) {
    --ignored_non_finite_;
    return;
  }
  if (count_ <= 1) {
    count_ = 0;
    mean_ = 0.0;
    m2_ = 0.0;
    return;
  }
  // Reverse Welford: undo the update that added `value`. Eviction order need
  // not match insertion order for the moments to stay exact in real
  // arithmetic; in floating point the drift is bounded by the window length,
  // which stays small (one detection window of points).
  const double old_mean = (static_cast<double>(count_) * mean_ - value) /
                          static_cast<double>(count_ - 1);
  m2_ -= (value - old_mean) * (value - mean_);
  mean_ = old_mean;
  --count_;
  if (m2_ < 0.0) {
    m2_ = 0.0;  // Floating-point residue on near-constant windows.
  }
}

double RollingMoments::sample_variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

}  // namespace fbdetect
