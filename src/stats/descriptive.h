// Descriptive statistics over contiguous spans of doubles.
//
// All functions take std::span so they work on raw vectors and on slices of
// time series without copies. Percentile uses linear interpolation between
// order statistics (the "linear" / type-7 method used by NumPy), which is
// what the paper's percentile tables assume.
#ifndef FBDETECT_SRC_STATS_DESCRIPTIVE_H_
#define FBDETECT_SRC_STATS_DESCRIPTIVE_H_

#include <span>
#include <vector>

namespace fbdetect {

// Arithmetic mean; 0.0 for an empty span.
double Mean(std::span<const double> values);

// Unbiased sample variance (n-1 denominator); 0.0 if fewer than 2 values.
double SampleVariance(std::span<const double> values);

// Population variance (n denominator); 0.0 for an empty span.
double PopulationVariance(std::span<const double> values);

// Sample standard deviation.
double SampleStdDev(std::span<const double> values);

// Median (copies and partially sorts); 0.0 for an empty span.
double Median(std::span<const double> values);

// Percentile p in [0, 100] with linear interpolation over the FINITE
// samples (NaN would make the sort undefined); 0.0 for an empty span or
// when no finite samples remain.
double Percentile(std::span<const double> values, double p);

// Median Absolute Deviation. When `normalized` is true the result is scaled
// by 1.4826 so it estimates the standard deviation under normality (§5.2.2's
// "normality constant").
double MedianAbsoluteDeviation(std::span<const double> values, bool normalized);

// Minimum / maximum; 0.0 for an empty span.
double Min(std::span<const double> values);
double Max(std::span<const double> values);

// Sum of the values.
double Sum(std::span<const double> values);

// Returns true if any value is NaN or infinite.
bool HasNonFinite(std::span<const double> values);

}  // namespace fbdetect

#endif  // FBDETECT_SRC_STATS_DESCRIPTIVE_H_
