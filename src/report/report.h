// Report rendering: production FBDetect files a ticket per regression group
// for developers to investigate. This module renders Regression records as
// human-readable ticket text (with the window's shape inlined as a
// sparkline) and as JSON lines for machine consumption, and formats the
// Table-3-style funnel summary.
#ifndef FBDETECT_SRC_REPORT_REPORT_H_
#define FBDETECT_SRC_REPORT_REPORT_H_

#include <string>

#include "src/core/pipeline.h"
#include "src/core/regression.h"
#include "src/fleet/change_log.h"
#include "src/observe/telemetry.h"

namespace fbdetect {

struct ReportOptions {
  bool include_sparkline = true;
  size_t sparkline_width = 72;
  size_t max_causes = 3;
};

// Multi-line human-readable ticket. `change_log` may be null (suspect
// commits then render by id only).
std::string RenderTicket(const Regression& regression, const ChangeLog* change_log,
                         const ReportOptions& options = {});

// One-line JSON object with the report's machine-readable fields.
std::string ToJsonLine(const Regression& regression);

// The Table-3-shaped funnel summary for both paths.
std::string RenderFunnel(const FunnelStats& short_term, const FunnelStats& long_term,
                         bool long_term_enabled);

// Human-readable summary of everything the pipeline refused to trust:
// totals, then one row per dirty series (worst verdict, per-artifact counts,
// ingest-time drops). `max_rows` caps the per-series listing (0 = no cap);
// a truncation line reports how many rows were omitted.
std::string RenderQuarantine(const QuarantineReport& report, size_t max_rows = 50);

// Human-readable summary of the pipeline's self-observability registry
// (DESIGN.md §12): the deterministic attrition counters first, then runtime
// counters and histogram means. Empty registry renders the header only.
std::string RenderTelemetry(const TelemetryRegistry& registry);

// Escapes a string for embedding in JSON (quotes, backslashes, control
// characters). Exposed for tests.
std::string JsonEscape(const std::string& text);

}  // namespace fbdetect

#endif  // FBDETECT_SRC_REPORT_REPORT_H_
