#include "src/report/report.h"

#include <cstdarg>
#include <cstdio>

#include "src/stats/descriptive.h"

namespace fbdetect {
namespace {

// Renders a value span as a one-line unicode sparkline.
std::string Sparkline(const std::vector<double>& values, size_t max_width) {
  static const char* kLevels[] = {"▁", "▂", "▃", "▄", "▅", "▆", "▇", "█"};
  if (values.empty()) {
    return "";
  }
  const double lo = Min(values);
  const double hi = Max(values);
  const size_t stride = values.size() > max_width ? values.size() / max_width : 1;
  std::string line;
  for (size_t i = 0; i < values.size(); i += stride) {
    double sum = 0.0;
    size_t count = 0;
    for (size_t j = i; j < values.size() && j < i + stride; ++j) {
      sum += values[j];
      ++count;
    }
    const double v = sum / static_cast<double>(count);
    const int level = hi > lo ? static_cast<int>((v - lo) / (hi - lo) * 7.999) : 0;
    line += kLevels[level];
  }
  return line;
}

std::string Printf(const char* format, ...) {
  char buffer[512];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buffer, sizeof(buffer), format, args);
  va_end(args);
  return std::string(buffer);
}

}  // namespace

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += Printf("\\u%04x", c);
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string RenderTicket(const Regression& regression, const ChangeLog* change_log,
                         const ReportOptions& options) {
  std::string ticket;
  ticket += Printf("[REGRESSION] %s (%s-term)\n", regression.metric.ToString().c_str(),
                   regression.long_term ? "long" : "short");
  ticket += Printf("  change point : t=%lld (detected at t=%lld)\n",
                   static_cast<long long>(regression.change_time),
                   static_cast<long long>(regression.detected_at));
  ticket += Printf("  magnitude    : %+0.6f absolute (%+.2f%% relative), baseline %.6f\n",
                   regression.delta, regression.relative_delta * 100.0,
                   regression.baseline_mean);
  if (regression.p_value < 1.0) {
    ticket += Printf("  significance : p=%.4g\n", regression.p_value);
  }
  if (regression.merged_count > 1) {
    ticket += Printf("  represents   : %zu deduplicated regressions\n",
                     regression.merged_count);
  }
  if (options.include_sparkline && !regression.analysis.empty()) {
    ticket += "  window shape : " + Sparkline(regression.analysis, options.sparkline_width) +
              "\n";
  }
  if (regression.root_causes.empty()) {
    ticket += "  root cause   : no confident candidate (see change log manually)\n";
  } else {
    ticket += "  root cause   : suspects, most relevant first\n";
    const size_t count = std::min(options.max_causes, regression.root_causes.size());
    for (size_t i = 0; i < count; ++i) {
      const RankedCause& cause = regression.root_causes[i];
      const Commit* commit =
          change_log != nullptr ? change_log->Find(cause.commit_id) : nullptr;
      ticket += Printf("    #%zu commit %lld (score %.2f: struct %.2f, text %.2f, time %.2f)",
                       i + 1, static_cast<long long>(cause.commit_id), cause.score,
                       cause.structural_score, cause.text_score, cause.timing_score);
      if (commit != nullptr) {
        ticket += Printf(" — %s", commit->title.c_str());
      }
      ticket += "\n";
    }
  }
  return ticket;
}

std::string ToJsonLine(const Regression& regression) {
  std::string json = "{";
  json += Printf("\"metric\":\"%s\",", JsonEscape(regression.metric.ToString()).c_str());
  json += Printf("\"long_term\":%s,", regression.long_term ? "true" : "false");
  json += Printf("\"change_time\":%lld,", static_cast<long long>(regression.change_time));
  json += Printf("\"detected_at\":%lld,", static_cast<long long>(regression.detected_at));
  json += Printf("\"baseline\":%.9g,", regression.baseline_mean);
  json += Printf("\"delta\":%.9g,", regression.delta);
  json += Printf("\"relative_delta\":%.9g,", regression.relative_delta);
  json += Printf("\"p_value\":%.9g,", regression.p_value);
  json += Printf("\"merged_count\":%zu,", regression.merged_count);
  json += "\"root_causes\":[";
  for (size_t i = 0; i < regression.root_causes.size(); ++i) {
    if (i > 0) {
      json += ",";
    }
    json += Printf("{\"commit\":%lld,\"score\":%.6g}",
                   static_cast<long long>(regression.root_causes[i].commit_id),
                   regression.root_causes[i].score);
  }
  json += "]}";
  return json;
}

std::string RenderFunnel(const FunnelStats& short_term, const FunnelStats& long_term,
                         bool long_term_enabled) {
  auto row = [](const char* label, uint64_t base, uint64_t value) {
    if (base == 0) {
      return Printf("  %-28s %8llu\n", label, static_cast<unsigned long long>(value));
    }
    return Printf("  %-28s %8llu  (1/%.1f)\n", label,
                  static_cast<unsigned long long>(value),
                  value == 0 ? 0.0 : static_cast<double>(base) / static_cast<double>(value));
  };
  std::string out = "short-term path:\n";
  out += row("change points", 0, short_term.change_points);
  out += row("after went-away", short_term.change_points, short_term.after_went_away);
  out += row("after seasonality", short_term.change_points, short_term.after_seasonality);
  out += row("after threshold", short_term.change_points, short_term.after_threshold);
  out += row("after SameRegressionMerger", short_term.change_points,
             short_term.after_same_merger);
  out += row("after SOMDedup", short_term.change_points, short_term.after_som_dedup);
  out += row("after cost-shift", short_term.change_points, short_term.after_cost_shift);
  out += row("after PairwiseDedup", short_term.change_points, short_term.after_pairwise);
  if (long_term_enabled) {
    out += "long-term path:\n";
    out += row("change points", 0, long_term.change_points);
    out += row("after threshold", long_term.change_points, long_term.after_threshold);
    out += row("after SameRegressionMerger", long_term.change_points,
               long_term.after_same_merger);
    out += row("after SOMDedup", long_term.change_points, long_term.after_som_dedup);
    out += row("after cost-shift", long_term.change_points, long_term.after_cost_shift);
    out += row("after PairwiseDedup", long_term.change_points, long_term.after_pairwise);
  }
  return out;
}

std::string RenderQuarantine(const QuarantineReport& report, size_t max_rows) {
  std::string out = "quarantine:\n";
  out += Printf("  %-28s %8llu\n", "dirty series",
                static_cast<unsigned long long>(report.records.size()));
  out += Printf("  %-28s %8llu\n", "windows quarantined",
                static_cast<unsigned long long>(report.total_windows_quarantined()));
  out += Printf("  %-28s %8llu\n", "decode failures",
                static_cast<unsigned long long>(report.total_decode_failures()));
  out += Printf("  %-28s %8llu\n", "detector exceptions",
                static_cast<unsigned long long>(report.total_exceptions()));
  out += Printf("  %-28s %8llu\n", "dropped duplicates",
                static_cast<unsigned long long>(report.total_dropped_duplicate()));
  out += Printf("  %-28s %8llu\n", "dropped out-of-order",
                static_cast<unsigned long long>(report.total_dropped_out_of_order()));
  size_t rows = 0;
  for (const QuarantineRecord& record : report.records) {
    if (max_rows > 0 && rows >= max_rows) {
      out += Printf("  ... %llu more series\n",
                    static_cast<unsigned long long>(report.records.size() - rows));
      break;
    }
    ++rows;
    out += Printf(
        "  [%s] %s: quarantined=%llu nonfinite=%llu negative=%llu missing=%llu "
        "flap=%llu skew=%llds dup=%llu ooo=%llu exc=%llu\n",
        QualityVerdictName(record.worst), record.metric.ToString().c_str(),
        static_cast<unsigned long long>(record.windows_quarantined),
        static_cast<unsigned long long>(record.non_finite),
        static_cast<unsigned long long>(record.negative),
        static_cast<unsigned long long>(record.missing),
        static_cast<unsigned long long>(record.flap_windows),
        static_cast<long long>(record.max_skew),
        static_cast<unsigned long long>(record.dropped_duplicate),
        static_cast<unsigned long long>(record.dropped_out_of_order),
        static_cast<unsigned long long>(record.exceptions));
    if (!record.last_error.empty()) {
      out += Printf("      last error: %s\n", record.last_error.c_str());
    }
  }
  return out;
}

std::string RenderTelemetry(const TelemetryRegistry& registry) {
  std::string out = "telemetry:\n";
  const std::vector<CounterSnapshot> counters = registry.SnapshotCounters();
  for (const CounterSnapshot& counter : counters) {
    if (counter.stability == CounterStability::kDeterministic) {
      out += Printf("  %-44s %12llu\n", counter.name.c_str(),
                    static_cast<unsigned long long>(counter.value));
    }
  }
  for (const CounterSnapshot& counter : counters) {
    if (counter.stability == CounterStability::kRuntime) {
      out += Printf("  %-44s %12llu  (runtime)\n", counter.name.c_str(),
                    static_cast<unsigned long long>(counter.value));
    }
  }
  for (const HistogramSnapshot& histogram : registry.SnapshotHistograms()) {
    const double mean = histogram.count > 0
                            ? static_cast<double>(histogram.sum) /
                                  static_cast<double>(histogram.count)
                            : 0.0;
    out += Printf("  %-44s n=%-8llu mean=%.0f\n", histogram.name.c_str(),
                  static_cast<unsigned long long>(histogram.count), mean);
  }
  return out;
}

}  // namespace fbdetect
