// Generates end-to-end traces from a service's call graph.
//
// Each endpoint maps to an entry subroutine; a request expands the call
// graph from there: every call edge is taken with probability min(1, weight),
// and with `async_probability` the callee runs asynchronously on a fresh
// logical thread (modelling FrontFaaS's concurrent request processing, §3).
// Span self costs follow the graph's current self costs with multiplicative
// noise, so injected regressions and cost shifts are visible in the
// aggregated endpoint cost.
#ifndef FBDETECT_SRC_TRACING_TRACE_GENERATOR_H_
#define FBDETECT_SRC_TRACING_TRACE_GENERATOR_H_

#include <string>
#include <vector>

#include "src/common/random.h"
#include "src/profiling/call_graph.h"
#include "src/tracing/trace.h"

namespace fbdetect {

struct TraceGeneratorOptions {
  double async_probability = 0.25;
  double cost_noise = 0.10;     // Relative sd of per-span cost noise.
  int max_spans = 512;          // Hard cap against fan-out explosions.
};

class TraceGenerator {
 public:
  // `graph` must outlive the generator.
  TraceGenerator(const CallGraph* graph, TraceGeneratorOptions options);

  // One request trace entering at `entry`.
  Trace Generate(const std::string& endpoint, NodeId entry, Rng& rng) const;

  // Mean endpoint cost over `num_traces` generated requests.
  double MeanEndpointCost(const std::string& endpoint, NodeId entry, int num_traces,
                          Rng& rng) const;

 private:
  void Expand(Trace& trace, NodeId node, SpanId parent, int thread, int* next_thread,
              Rng& rng) const;

  const CallGraph* graph_;
  TraceGeneratorOptions options_;
};

}  // namespace fbdetect

#endif  // FBDETECT_SRC_TRACING_TRACE_GENERATOR_H_
