// End-to-end tracing substrate (§3).
//
// An endpoint request on FrontFaaS may fan out across asynchronous,
// concurrent work on multiple threads; endpoint-level regressions are
// detected on the AGGREGATED cost of all subroutines a request touches, which
// requires end-to-end tracing (the paper cites Canopy [30]). This module
// models that substrate: a Trace is a tree of Spans, each span carrying the
// subroutine it executed, the logical thread it ran on, and its self cost;
// EndpointCost() aggregates self costs across all threads of the trace.
#ifndef FBDETECT_SRC_TRACING_TRACE_H_
#define FBDETECT_SRC_TRACING_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace fbdetect {

using SpanId = int32_t;
inline constexpr SpanId kNoSpan = -1;

struct Span {
  SpanId id = kNoSpan;
  SpanId parent = kNoSpan;   // kNoSpan for the root span.
  int thread = 0;            // Logical thread/worker the span executed on.
  std::string subroutine;
  double self_cost = 0.0;    // CPU cost of the span's own code.
  bool async_ = false;       // True when dispatched asynchronously.
};

struct Trace {
  int64_t trace_id = -1;
  std::string endpoint;
  std::vector<Span> spans;   // spans[0] is the root; parents precede children.

  // Total cost of the request: sum of all spans' self costs, regardless of
  // which thread ran them (the end-to-end aggregation the paper describes).
  double EndpointCost() const;

  // Number of distinct logical threads involved.
  int ThreadCount() const;

  // Ids of the direct children of `span`.
  std::vector<SpanId> ChildrenOf(SpanId span) const;

  // True when parent links are well-formed (root first, parents precede
  // children, indices in range).
  bool IsWellFormed() const;
};

}  // namespace fbdetect

#endif  // FBDETECT_SRC_TRACING_TRACE_H_
