#include "src/tracing/trace_generator.h"

#include <algorithm>

#include "src/common/check.h"

namespace fbdetect {

TraceGenerator::TraceGenerator(const CallGraph* graph, TraceGeneratorOptions options)
    : graph_(graph), options_(options) {
  FBD_CHECK(graph_ != nullptr);
  FBD_CHECK(options_.max_spans > 0);
}

void TraceGenerator::Expand(Trace& trace, NodeId node, SpanId parent, int thread,
                            int* next_thread, Rng& rng) const {
  if (static_cast<int>(trace.spans.size()) >= options_.max_spans) {
    return;
  }
  Span span;
  span.id = static_cast<SpanId>(trace.spans.size());
  span.parent = parent;
  span.thread = thread;
  span.subroutine = graph_->node(node).name;
  const double base_cost = graph_->node(node).self_cost;
  span.self_cost =
      std::max(0.0, base_cost * (1.0 + options_.cost_noise * rng.NextGaussian()));
  trace.spans.push_back(span);
  const SpanId my_id = span.id;

  for (const CallEdge& edge : graph_->edges(node)) {
    // Weight > 1 means several calls per request on average; model the count
    // as Poisson but cap at 3 to bound trace sizes.
    int calls = edge.weight >= 1.0 ? std::min(3, 1 + rng.Poisson(edge.weight - 1.0))
                                   : (rng.NextBool(edge.weight) ? 1 : 0);
    for (int c = 0; c < calls; ++c) {
      int child_thread = thread;
      if (rng.NextBool(options_.async_probability)) {
        child_thread = (*next_thread)++;
      }
      Expand(trace, edge.callee, my_id, child_thread, next_thread, rng);
    }
  }
}

Trace TraceGenerator::Generate(const std::string& endpoint, NodeId entry, Rng& rng) const {
  FBD_CHECK(entry >= 0 && static_cast<size_t>(entry) < graph_->node_count());
  Trace trace;
  trace.trace_id = static_cast<int64_t>(rng.NextUint64());
  trace.endpoint = endpoint;
  int next_thread = 1;
  Expand(trace, entry, kNoSpan, /*thread=*/0, &next_thread, rng);
  return trace;
}

double TraceGenerator::MeanEndpointCost(const std::string& endpoint, NodeId entry,
                                        int num_traces, Rng& rng) const {
  FBD_CHECK(num_traces > 0);
  double total = 0.0;
  for (int i = 0; i < num_traces; ++i) {
    total += Generate(endpoint, entry, rng).EndpointCost();
  }
  return total / static_cast<double>(num_traces);
}

}  // namespace fbdetect
