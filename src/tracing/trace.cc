#include "src/tracing/trace.h"

#include <set>

namespace fbdetect {

double Trace::EndpointCost() const {
  double total = 0.0;
  for (const Span& span : spans) {
    total += span.self_cost;
  }
  return total;
}

int Trace::ThreadCount() const {
  std::set<int> threads;
  for (const Span& span : spans) {
    threads.insert(span.thread);
  }
  return static_cast<int>(threads.size());
}

std::vector<SpanId> Trace::ChildrenOf(SpanId span) const {
  std::vector<SpanId> children;
  for (const Span& candidate : spans) {
    if (candidate.parent == span) {
      children.push_back(candidate.id);
    }
  }
  return children;
}

bool Trace::IsWellFormed() const {
  if (spans.empty()) {
    return false;
  }
  if (spans[0].parent != kNoSpan) {
    return false;
  }
  for (size_t i = 0; i < spans.size(); ++i) {
    if (spans[i].id != static_cast<SpanId>(i)) {
      return false;
    }
    if (i > 0) {
      const SpanId parent = spans[i].parent;
      if (parent < 0 || static_cast<size_t>(parent) >= i) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace fbdetect
