#include "src/profiling/profile.h"

#include <algorithm>

namespace fbdetect {

void ProfileAggregate::AddSample(const std::vector<NodeId>& stack) {
  const uint64_t index = total_samples_++;
  // A DAG walk visits each node at most once, but be defensive about
  // duplicates from hand-built stacks.
  for (size_t i = 0; i < stack.size(); ++i) {
    bool duplicate = false;
    for (size_t j = 0; j < i; ++j) {
      if (stack[j] == stack[i]) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) {
      containing_samples_[stack[i]].push_back(index);
    }
  }
}

uint64_t ProfileAggregate::CountOf(NodeId id) const {
  const auto it = containing_samples_.find(id);
  return it == containing_samples_.end() ? 0 : it->second.size();
}

double ProfileAggregate::Gcpu(NodeId id) const {
  if (total_samples_ == 0) {
    return 0.0;
  }
  return static_cast<double>(CountOf(id)) / static_cast<double>(total_samples_);
}

std::vector<NodeId> ProfileAggregate::SeenNodes() const {
  std::vector<NodeId> nodes;
  nodes.reserve(containing_samples_.size());
  for (const auto& [id, unused] : containing_samples_) {
    nodes.push_back(id);
  }
  std::sort(nodes.begin(), nodes.end());
  return nodes;
}

double ProfileAggregate::SampleOverlap(NodeId a, NodeId b) const {
  const auto it_a = containing_samples_.find(a);
  const auto it_b = containing_samples_.find(b);
  if (it_a == containing_samples_.end() || it_b == containing_samples_.end()) {
    return 0.0;
  }
  const std::vector<uint64_t>& sa = it_a->second;
  const std::vector<uint64_t>& sb = it_b->second;
  size_t shared = 0;
  size_t i = 0;
  size_t j = 0;
  while (i < sa.size() && j < sb.size()) {
    if (sa[i] == sb[j]) {
      ++shared;
      ++i;
      ++j;
    } else if (sa[i] < sb[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  const size_t either = sa.size() + sb.size() - shared;
  return either == 0 ? 0.0 : static_cast<double>(shared) / static_cast<double>(either);
}

void ProfileAggregate::Merge(const ProfileAggregate& other) {
  const uint64_t offset = total_samples_;
  for (const auto& [id, samples] : other.containing_samples_) {
    std::vector<uint64_t>& mine = containing_samples_[id];
    mine.reserve(mine.size() + samples.size());
    for (uint64_t s : samples) {
      mine.push_back(s + offset);
    }
  }
  total_samples_ += other.total_samples_;
}

}  // namespace fbdetect
