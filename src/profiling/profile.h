// Aggregation of stack-trace samples into per-subroutine gCPU, plus the
// sample-overlap bookkeeping PairwiseDedup's stack-trace-overlap feature
// needs (§5.5.2).
//
// gCPU of subroutine u = (number of samples containing u) / (total samples),
// where "containing" counts a subroutine at most once per sample (§4). The
// gCPU therefore includes the cost of transitively invoked children.
#ifndef FBDETECT_SRC_PROFILING_PROFILE_H_
#define FBDETECT_SRC_PROFILING_PROFILE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/profiling/call_graph.h"

namespace fbdetect {

class ProfileAggregate {
 public:
  // Records one stack-trace sample (node ids, root to leaf). Duplicate ids
  // within one sample (should not happen in a DAG) are counted once.
  void AddSample(const std::vector<NodeId>& stack);

  uint64_t total_samples() const { return total_samples_; }

  // Samples containing the node.
  uint64_t CountOf(NodeId id) const;

  // gCPU of the node: CountOf / total_samples; 0 when no samples.
  double Gcpu(NodeId id) const;

  // All nodes that appeared in at least one sample.
  std::vector<NodeId> SeenNodes() const;

  // Fraction of samples containing BOTH a and b relative to samples
  // containing EITHER (Jaccard overlap of their sample sets) — the
  // stack-trace-overlap similarity.
  double SampleOverlap(NodeId a, NodeId b) const;

  // Merges another aggregate (e.g. from another server) into this one.
  // Sample indices are disjoint by construction.
  void Merge(const ProfileAggregate& other);

 private:
  uint64_t total_samples_ = 0;
  // Per node: sorted indices of samples containing it. Indices are local to
  // this aggregate; Merge offsets them.
  std::unordered_map<NodeId, std::vector<uint64_t>> containing_samples_;
};

}  // namespace fbdetect

#endif  // FBDETECT_SRC_PROFILING_PROFILE_H_
