#include "src/profiling/profiler.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <unordered_map>

#include "src/common/check.h"

namespace fbdetect {

uint64_t SampleBinomial(uint64_t n, double p, Rng& rng) {
  if (n == 0 || p <= 0.0) {
    return 0;
  }
  if (p >= 1.0) {
    return n;
  }
  const double np = static_cast<double>(n) * p;
  const double variance = np * (1.0 - p);
  if (variance > 100.0) {
    const double draw = rng.Normal(np, std::sqrt(variance));
    const double clamped = std::clamp(draw, 0.0, static_cast<double>(n));
    return static_cast<uint64_t>(std::llround(clamped));
  }
  if (np < 30.0 && p < 0.05) {
    // Poisson approximation for rare events.
    const int draw = rng.Poisson(np);
    return std::min<uint64_t>(static_cast<uint64_t>(draw), n);
  }
  // Exact Bernoulli summation for the small-n middle ground.
  uint64_t count = 0;
  for (uint64_t i = 0; i < n; ++i) {
    if (rng.NextDouble() < p) {
      ++count;
    }
  }
  return count;
}

SamplingProfiler::SamplingProfiler(std::string service, SamplingConfig config)
    : service_(std::move(service)), config_(config) {
  FBD_CHECK(config_.samples_per_bucket > 0);
  FBD_CHECK(config_.bucket_width > 0);
}

ProfileAggregate SamplingProfiler::ExactBucket(const CallGraph& graph, uint64_t num_samples,
                                               Rng& rng) const {
  ProfileAggregate aggregate;
  for (uint64_t i = 0; i < num_samples; ++i) {
    aggregate.AddSample(graph.SampleStack(rng));
  }
  return aggregate;
}

std::vector<uint64_t> SamplingProfiler::AnalyticBucket(const CallGraph& graph, Rng& rng) const {
  const std::vector<double> reach = graph.ReachProbabilities();
  std::vector<uint64_t> counts(reach.size(), 0);
  for (size_t i = 0; i < reach.size(); ++i) {
    counts[i] = SampleBinomial(config_.samples_per_bucket, reach[i], rng);
  }
  return counts;
}

void SamplingProfiler::WriteGcpuBucket(const CallGraph& graph, TimePoint bucket_start, Rng& rng,
                                       TimeSeriesDatabase& db) const {
  const std::vector<uint64_t> counts = AnalyticBucket(graph, rng);
  const double denom = static_cast<double>(config_.samples_per_bucket);
  for (size_t i = 0; i < counts.size(); ++i) {
    const double gcpu = static_cast<double>(counts[i]) / denom;
    MetricId id;
    id.service = service_;
    id.kind = MetricKind::kGcpu;
    id.entity = graph.node(static_cast<NodeId>(i)).name;
    if (gcpu < config_.min_gcpu_to_record && !db.Contains(id)) {
      continue;
    }
    db.Write(id, bucket_start, gcpu);
  }
}

void SamplingProfiler::WriteMetadataGcpuBucket(const CallGraph& graph, TimePoint bucket_start,
                                               Rng& rng, TimeSeriesDatabase& db) const {
  const std::vector<double> reach = graph.ReachProbabilities();
  std::unordered_map<std::string, double> reach_by_metadata;
  for (size_t i = 0; i < graph.node_count(); ++i) {
    const Subroutine& node = graph.node(static_cast<NodeId>(i));
    if (!node.metadata.empty()) {
      reach_by_metadata[node.metadata] += reach[i];
    }
  }
  const double denom = static_cast<double>(config_.samples_per_bucket);
  for (const auto& [metadata, total_reach] : reach_by_metadata) {
    const double p = std::min(1.0, total_reach);
    const uint64_t count = SampleBinomial(config_.samples_per_bucket, p, rng);
    MetricId id;
    id.service = service_;
    id.kind = MetricKind::kGcpu;
    id.metadata = metadata;
    db.Write(id, bucket_start, static_cast<double>(count) / denom);
  }
}

}  // namespace fbdetect
