#include "src/profiling/profiler.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <unordered_map>

#include "src/common/check.h"

namespace fbdetect {

uint64_t SampleBinomial(uint64_t n, double p, Rng& rng) {
  if (n == 0 || p <= 0.0) {
    return 0;
  }
  if (p >= 1.0) {
    return n;
  }
  const double np = static_cast<double>(n) * p;
  const double variance = np * (1.0 - p);
  if (variance > 100.0) {
    const double draw = rng.Normal(np, std::sqrt(variance));
    const double clamped = std::clamp(draw, 0.0, static_cast<double>(n));
    return static_cast<uint64_t>(std::llround(clamped));
  }
  if (np < 30.0 && p < 0.05) {
    // Poisson approximation for rare events.
    const int draw = rng.Poisson(np);
    return std::min<uint64_t>(static_cast<uint64_t>(draw), n);
  }
  // Exact Bernoulli summation for the small-n middle ground.
  uint64_t count = 0;
  for (uint64_t i = 0; i < n; ++i) {
    if (rng.NextDouble() < p) {
      ++count;
    }
  }
  return count;
}

SamplingProfiler::SamplingProfiler(std::string service, SamplingConfig config)
    : service_(std::move(service)), config_(config) {
  FBD_CHECK(config_.samples_per_bucket > 0);
  FBD_CHECK(config_.bucket_width > 0);
}

ProfileAggregate SamplingProfiler::ExactBucket(const CallGraph& graph, uint64_t num_samples,
                                               Rng& rng) const {
  ProfileAggregate aggregate;
  for (uint64_t i = 0; i < num_samples; ++i) {
    aggregate.AddSample(graph.SampleStack(rng));
  }
  return aggregate;
}

std::vector<uint64_t> SamplingProfiler::AnalyticBucket(const CallGraph& graph, Rng& rng) const {
  const std::vector<double> reach = graph.ReachProbabilities();
  std::vector<uint64_t> counts(reach.size(), 0);
  for (size_t i = 0; i < reach.size(); ++i) {
    counts[i] = SampleBinomial(config_.samples_per_bucket, reach[i], rng);
  }
  return counts;
}

void SamplingProfiler::EnsureHandles(const CallGraph& graph, TimeSeriesDatabase& db) {
  if (handles_db_ == &db && gcpu_ids_.size() == graph.node_count()) {
    return;
  }
  handles_db_ = &db;
  const size_t n = graph.node_count();
  gcpu_ids_.clear();
  gcpu_ids_.reserve(n);
  gcpu_recorded_.assign(n, false);
  metadata_ids_.clear();
  for (size_t i = 0; i < n; ++i) {
    MetricId id;
    id.service = service_;
    id.kind = MetricKind::kGcpu;
    id.entity = graph.node(static_cast<NodeId>(i)).name;
    gcpu_ids_.push_back(db.Intern(id));
  }
}

void SamplingProfiler::WriteGcpuBucket(const CallGraph& graph, TimePoint bucket_start, Rng& rng,
                                       WriteBatch& batch) {
  EnsureHandles(graph, *batch.db());
  const std::vector<uint64_t> counts = AnalyticBucket(graph, rng);
  const double denom = static_cast<double>(config_.samples_per_bucket);
  for (size_t i = 0; i < counts.size(); ++i) {
    const double gcpu = static_cast<double>(counts[i]) / denom;
    // A subroutine counts as recorded once it has ever been staged (a point
    // staged in an uncommitted batch is not yet visible to Contains), so a
    // collapsing subroutine keeps getting points regardless of batching.
    if (gcpu < config_.min_gcpu_to_record && !gcpu_recorded_[i] &&
        !batch.db()->Contains(gcpu_ids_[i])) {
      continue;
    }
    gcpu_recorded_[i] = true;
    batch.Add(gcpu_ids_[i], bucket_start, gcpu);
  }
}

void SamplingProfiler::WriteGcpuBucket(const CallGraph& graph, TimePoint bucket_start, Rng& rng,
                                       TimeSeriesDatabase& db) {
  WriteBatch batch(&db);
  WriteGcpuBucket(graph, bucket_start, rng, batch);
  batch.Commit();
}

void SamplingProfiler::WriteMetadataGcpuBucket(const CallGraph& graph, TimePoint bucket_start,
                                               Rng& rng, WriteBatch& batch) {
  EnsureHandles(graph, *batch.db());
  const std::vector<double> reach = graph.ReachProbabilities();
  std::unordered_map<std::string, double> reach_by_metadata;
  for (size_t i = 0; i < graph.node_count(); ++i) {
    const Subroutine& node = graph.node(static_cast<NodeId>(i));
    if (!node.metadata.empty()) {
      reach_by_metadata[node.metadata] += reach[i];
    }
  }
  const double denom = static_cast<double>(config_.samples_per_bucket);
  for (const auto& [metadata, total_reach] : reach_by_metadata) {
    const double p = std::min(1.0, total_reach);
    const uint64_t count = SampleBinomial(config_.samples_per_bucket, p, rng);
    auto it = metadata_ids_.find(metadata);
    if (it == metadata_ids_.end()) {
      MetricId id;
      id.service = service_;
      id.kind = MetricKind::kGcpu;
      id.metadata = metadata;
      it = metadata_ids_.emplace(metadata, batch.db()->Intern(id)).first;
    }
    batch.Add(it->second, bucket_start, static_cast<double>(count) / denom);
  }
}

void SamplingProfiler::WriteMetadataGcpuBucket(const CallGraph& graph, TimePoint bucket_start,
                                               Rng& rng, TimeSeriesDatabase& db) {
  WriteBatch batch(&db);
  WriteMetadataGcpuBucket(graph, bucket_start, rng, batch);
  batch.Commit();
}

}  // namespace fbdetect
