// Fleet-wide sampling profiler (§4).
//
// Production FBDetect uses eBPF (C/C++), Xenon (PHP), or PyPerf (Python) to
// capture stack traces at a configured rate — from one sample per server per
// minute (FrontFaaS) to one per server per second (Invoicer) — and converts
// them to per-subroutine gCPU time series.
//
// Two collection paths are provided:
//  * ExactBucket(): draws real stack walks one by one. Faithful, used by
//    tests, examples, and the overhead benchmark.
//  * AnalyticBucket(): draws per-subroutine containment counts directly from
//    Binomial(n, p_u) where p_u is the closed-form reach probability. This is
//    statistically identical for per-subroutine gCPU (each subroutine's
//    count is exactly Binomial(n, p_u) under the walk model) and lets the
//    fleet simulator synthesize millions of samples per tick in O(k) time.
//    Cross-subroutine correlations are not preserved — acceptable because the
//    detectors consume per-series data.
#ifndef FBDETECT_SRC_PROFILING_PROFILER_H_
#define FBDETECT_SRC_PROFILING_PROFILER_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/random.h"
#include "src/common/sim_time.h"
#include "src/profiling/call_graph.h"
#include "src/profiling/profile.h"
#include "src/tsdb/database.h"

namespace fbdetect {

struct SamplingConfig {
  uint64_t samples_per_bucket = 100000;  // Fleet-wide samples per time bucket.
  Duration bucket_width = Minutes(10);   // Time-series resolution.
  double min_gcpu_to_record = 0.00001;   // Drop sub-trivial subroutines (§2:
                                         // "non-trivial" is gCPU >= 0.001%).
};

class SamplingProfiler {
 public:
  SamplingProfiler(std::string service, SamplingConfig config);

  // Collects one bucket by materializing individual stack walks.
  ProfileAggregate ExactBucket(const CallGraph& graph, uint64_t num_samples, Rng& rng) const;

  // Per-node containment counts ~ Binomial(samples_per_bucket, reach_u),
  // using a normal approximation when n*p is large.
  std::vector<uint64_t> AnalyticBucket(const CallGraph& graph, Rng& rng) const;

  // Runs AnalyticBucket and stages gCPU points (count / samples_per_bucket)
  // for every recorded subroutine into `batch` at time `bucket_start`.
  // Subroutines below min_gcpu_to_record are skipped unless recorded before
  // (so a collapsing subroutine still gets points). Interned metric handles
  // are cached across buckets, keyed on the batch's database, so the steady
  // state stages packed integer keys without touching identity strings.
  void WriteGcpuBucket(const CallGraph& graph, TimePoint bucket_start, Rng& rng,
                       WriteBatch& batch);

  // Convenience form: one-shot batch committed before returning.
  void WriteGcpuBucket(const CallGraph& graph, TimePoint bucket_start, Rng& rng,
                       TimeSeriesDatabase& db);

  // Metadata-annotated gCPU (§3): subroutines can annotate their stack
  // frames via SetFrameMetadata; FBDetect then monitors one gCPU series per
  // distinct annotation value. The containment probability of an annotation
  // is approximated as min(1, Σ reach over its subroutines) — exact when at
  // most one annotated subroutine appears per sample, which holds when
  // annotations mark disjoint leaf features. Series are written as
  // MetricId{service, kGcpu, entity="", metadata=value}.
  void WriteMetadataGcpuBucket(const CallGraph& graph, TimePoint bucket_start, Rng& rng,
                               WriteBatch& batch);
  void WriteMetadataGcpuBucket(const CallGraph& graph, TimePoint bucket_start, Rng& rng,
                               TimeSeriesDatabase& db);

  const std::string& service() const { return service_; }
  const SamplingConfig& config() const { return config_; }

 private:
  // (Re)builds the cached interned handles when the target database or the
  // graph shape changed.
  void EnsureHandles(const CallGraph& graph, TimeSeriesDatabase& db);

  std::string service_;
  SamplingConfig config_;

  // Cached interned handles, valid for `handles_db_` only.
  TimeSeriesDatabase* handles_db_ = nullptr;
  std::vector<InternedMetricId> gcpu_ids_;          // Per graph node.
  std::vector<bool> gcpu_recorded_;                 // Node ever written?
  std::unordered_map<std::string, InternedMetricId> metadata_ids_;
};

// Draws from Binomial(n, p) with a normal approximation when n*p*(1-p) > 100
// and exact Bernoulli summation (via Poisson split) otherwise. Exposed for
// tests.
uint64_t SampleBinomial(uint64_t n, double p, Rng& rng);

}  // namespace fbdetect

#endif  // FBDETECT_SRC_PROFILING_PROFILER_H_
