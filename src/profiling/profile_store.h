// Retention store for stack-trace profiles.
//
// Production FBDetect keeps recent aggregated profiles per service so that
// PairwiseDedup can compute the stack-trace-overlap feature (§5.5.2: the
// fraction of shared samples used for calculating two subroutines' gCPU).
// The store aggregates ProfileAggregates into fixed-width time buckets,
// expires old buckets, and answers overlap queries by subroutine name over a
// time range.
#ifndef FBDETECT_SRC_PROFILING_PROFILE_STORE_H_
#define FBDETECT_SRC_PROFILING_PROFILE_STORE_H_

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>

#include "src/common/sim_time.h"
#include "src/profiling/call_graph.h"
#include "src/profiling/profile.h"
#include "src/tsdb/symbol_table.h"

namespace fbdetect {

class ProfileStore {
 public:
  explicit ProfileStore(Duration bucket_width);

  // Merges samples into the bucket containing `timestamp`. The aggregate's
  // node ids must come from `graph` (names are resolved at query time).
  void Ingest(const std::string& service, TimePoint timestamp, const CallGraph* graph,
              const ProfileAggregate& aggregate);

  // Jaccard overlap of the two subroutines' sample sets across all buckets
  // intersecting [begin, end); 0 when either name is unknown.
  double Overlap(const std::string& service, const std::string& subroutine_a,
                 const std::string& subroutine_b, TimePoint begin, TimePoint end) const;

  // gCPU of a subroutine over [begin, end) from the stored samples.
  double Gcpu(const std::string& service, const std::string& subroutine, TimePoint begin,
              TimePoint end) const;

  // Drops buckets entirely before `cutoff`.
  void Expire(TimePoint cutoff);

  size_t bucket_count() const;
  Duration bucket_width() const { return bucket_width_; }

 private:
  struct Bucket {
    const CallGraph* graph = nullptr;  // Not owned; must outlive the store.
    ProfileAggregate aggregate;
  };

  // Buckets overlapping [begin, end) for one service.
  template <typename Fn>
  void ForEachBucket(const std::string& service, TimePoint begin, TimePoint end,
                     Fn&& fn) const;

  Duration bucket_width_;
  // Service names are interned so the per-ingest key is a dense integer;
  // queries resolve names without creating symbols.
  SymbolTable services_;
  // service symbol -> bucket start -> aggregate.
  std::unordered_map<uint32_t, std::map<TimePoint, Bucket>> buckets_;
};

}  // namespace fbdetect

#endif  // FBDETECT_SRC_PROFILING_PROFILE_STORE_H_
