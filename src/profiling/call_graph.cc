#include "src/profiling/call_graph.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace fbdetect {

NodeId CallGraph::AddNode(Subroutine subroutine) {
  const NodeId id = static_cast<NodeId>(nodes_.size());
  by_name_[subroutine.name] = id;
  nodes_.push_back(std::move(subroutine));
  edges_.emplace_back();
  dirty_ = true;
  return id;
}

void CallGraph::AddEdge(NodeId caller, NodeId callee, double weight) {
  FBD_CHECK(caller >= 0 && static_cast<size_t>(caller) < nodes_.size());
  FBD_CHECK(callee >= 0 && static_cast<size_t>(callee) < nodes_.size());
  FBD_CHECK(weight > 0.0);
  // DAG check: callee must not (transitively) call caller. DFS from callee.
  std::vector<NodeId> stack = {callee};
  std::vector<bool> visited(nodes_.size(), false);
  while (!stack.empty()) {
    const NodeId v = stack.back();
    stack.pop_back();
    FBD_CHECK(v != caller);  // Cycle.
    if (visited[static_cast<size_t>(v)]) {
      continue;
    }
    visited[static_cast<size_t>(v)] = true;
    for (const CallEdge& e : edges_[static_cast<size_t>(v)]) {
      stack.push_back(e.callee);
    }
  }
  edges_[static_cast<size_t>(caller)].push_back({callee, weight});
  dirty_ = true;
}

NodeId CallGraph::FindByName(const std::string& name) const {
  const auto it = by_name_.find(name);
  return it == by_name_.end() ? kInvalidNode : it->second;
}

const std::vector<NodeId>& CallGraph::roots() const {
  if (dirty_) {
    Recompute();
  }
  return roots_;
}

std::vector<NodeId> CallGraph::CallersOf(NodeId id) const {
  std::vector<NodeId> callers;
  for (size_t v = 0; v < edges_.size(); ++v) {
    for (const CallEdge& e : edges_[v]) {
      if (e.callee == id) {
        callers.push_back(static_cast<NodeId>(v));
        break;
      }
    }
  }
  return callers;
}

std::vector<NodeId> CallGraph::NodesInClass(const std::string& class_name) const {
  std::vector<NodeId> members;
  for (size_t v = 0; v < nodes_.size(); ++v) {
    if (nodes_[v].class_name == class_name) {
      members.push_back(static_cast<NodeId>(v));
    }
  }
  return members;
}

void CallGraph::Recompute() const {
  const size_t n = nodes_.size();
  subtree_.assign(n, 0.0);
  in_degree_.assign(n, 0);
  for (size_t v = 0; v < n; ++v) {
    for (const CallEdge& e : edges_[v]) {
      ++in_degree_[static_cast<size_t>(e.callee)];
    }
  }
  roots_.clear();
  for (size_t v = 0; v < n; ++v) {
    if (in_degree_[v] == 0) {
      roots_.push_back(static_cast<NodeId>(v));
    }
  }
  // subtree in reverse topological order (iterative post-order via Kahn on
  // the reversed relation: process nodes whose children are all done).
  std::vector<int> pending_children(n, 0);
  for (size_t v = 0; v < n; ++v) {
    pending_children[v] = static_cast<int>(edges_[v].size());
  }
  std::vector<NodeId> ready;
  for (size_t v = 0; v < n; ++v) {
    if (pending_children[v] == 0) {
      ready.push_back(static_cast<NodeId>(v));
    }
  }
  // Count how many times each node appears as a callee, so we can decrement
  // parents when a child finishes.
  std::vector<std::vector<NodeId>> parents(n);
  for (size_t v = 0; v < n; ++v) {
    for (const CallEdge& e : edges_[v]) {
      parents[static_cast<size_t>(e.callee)].push_back(static_cast<NodeId>(v));
    }
  }
  size_t processed = 0;
  while (!ready.empty()) {
    const NodeId v = ready.back();
    ready.pop_back();
    ++processed;
    double total = nodes_[static_cast<size_t>(v)].self_cost;
    for (const CallEdge& e : edges_[static_cast<size_t>(v)]) {
      total += e.weight * subtree_[static_cast<size_t>(e.callee)];
    }
    subtree_[static_cast<size_t>(v)] = total;
    for (NodeId p : parents[static_cast<size_t>(v)]) {
      if (--pending_children[static_cast<size_t>(p)] == 0) {
        ready.push_back(p);
      }
    }
  }
  FBD_CHECK(processed == n);  // Would fail on a cycle; AddEdge prevents it.
  dirty_ = false;
}

const std::vector<double>& CallGraph::SubtreeCosts() const {
  if (dirty_) {
    Recompute();
  }
  return subtree_;
}

std::vector<double> CallGraph::ReachProbabilities() const {
  const std::vector<double>& subtree = SubtreeCosts();
  const size_t n = nodes_.size();
  std::vector<double> reach(n, 0.0);
  double total = 0.0;
  for (NodeId r : roots_) {
    total += subtree[static_cast<size_t>(r)];
  }
  if (total <= 0.0) {
    return reach;
  }
  for (NodeId r : roots_) {
    reach[static_cast<size_t>(r)] = subtree[static_cast<size_t>(r)] / total;
  }
  // Propagate in topological order (parents before children). Build a
  // topological order via Kahn's algorithm on in-degrees.
  std::vector<int> indeg = in_degree_;
  std::vector<NodeId> queue = roots_;
  size_t head = 0;
  while (head < queue.size()) {
    const NodeId v = queue[head++];
    const double sub_v = subtree[static_cast<size_t>(v)];
    if (sub_v > 0.0) {
      for (const CallEdge& e : edges_[static_cast<size_t>(v)]) {
        const double descend =
            e.weight * subtree[static_cast<size_t>(e.callee)] / sub_v;
        reach[static_cast<size_t>(e.callee)] += reach[static_cast<size_t>(v)] * descend;
        if (--indeg[static_cast<size_t>(e.callee)] == 0) {
          queue.push_back(e.callee);
        }
      }
    } else {
      for (const CallEdge& e : edges_[static_cast<size_t>(v)]) {
        if (--indeg[static_cast<size_t>(e.callee)] == 0) {
          queue.push_back(e.callee);
        }
      }
    }
  }
  // Guard against rounding: probabilities stay in [0, 1].
  for (double& p : reach) {
    p = std::clamp(p, 0.0, 1.0);
  }
  return reach;
}

std::vector<NodeId> CallGraph::SampleStack(Rng& rng) const {
  const std::vector<double>& subtree = SubtreeCosts();
  std::vector<NodeId> stack;
  if (roots_.empty()) {
    return stack;
  }
  // Pick the entry weighted by subtree cost.
  std::vector<double> root_weights;
  root_weights.reserve(roots_.size());
  for (NodeId r : roots_) {
    root_weights.push_back(subtree[static_cast<size_t>(r)]);
  }
  double total = 0.0;
  for (double w : root_weights) {
    total += w;
  }
  if (total <= 0.0) {
    return stack;
  }
  NodeId current = roots_[rng.WeightedIndex(root_weights)];
  for (;;) {
    stack.push_back(current);
    const Subroutine& node = nodes_[static_cast<size_t>(current)];
    const double sub = subtree[static_cast<size_t>(current)];
    if (sub <= 0.0) {
      break;
    }
    const double stop_probability = node.self_cost / sub;
    if (rng.NextDouble() < stop_probability || edges_[static_cast<size_t>(current)].empty()) {
      break;
    }
    std::vector<double> edge_weights;
    edge_weights.reserve(edges_[static_cast<size_t>(current)].size());
    for (const CallEdge& e : edges_[static_cast<size_t>(current)]) {
      edge_weights.push_back(e.weight * subtree[static_cast<size_t>(e.callee)]);
    }
    double edge_total = 0.0;
    for (double w : edge_weights) {
      edge_total += w;
    }
    if (edge_total <= 0.0) {
      break;
    }
    current = edges_[static_cast<size_t>(current)][rng.WeightedIndex(edge_weights)].callee;
  }
  return stack;
}

double CallGraph::TotalCost() const {
  const std::vector<double>& subtree = SubtreeCosts();
  double total = 0.0;
  for (NodeId r : roots_) {
    total += subtree[static_cast<size_t>(r)];
  }
  return total;
}

void CallGraph::ScaleSelfCost(NodeId id, double factor) {
  FBD_CHECK(factor > 0.0);
  mutable_node(id).self_cost *= factor;
}

void CallGraph::ShiftSelfCost(NodeId from, NodeId to, double amount) {
  FBD_CHECK(amount >= 0.0);
  Subroutine& source = mutable_node(from);
  const double moved = std::min(amount, source.self_cost);
  source.self_cost -= moved;
  mutable_node(to).self_cost += moved;
}

CallGraph GenerateRandomCallGraph(const RandomCallGraphOptions& options, Rng& rng) {
  FBD_CHECK(options.num_subroutines >= 1);
  FBD_CHECK(options.max_depth >= 1);
  CallGraph graph;
  const int layers = options.max_depth;
  // Assign nodes to layers; layer 0 holds a few entry points.
  std::vector<std::vector<NodeId>> layer_nodes(static_cast<size_t>(layers));
  const int num_classes = std::max(1, options.num_classes);
  for (int i = 0; i < options.num_subroutines; ++i) {
    Subroutine node;
    node.name = "sub_" + std::to_string(i);
    node.class_name = "Class" + std::to_string(i % num_classes);
    // Pareto-like skew: few heavy subroutines, long tail of tiny ones.
    const double u = rng.NextDouble();
    node.self_cost = std::pow(1.0 - u * 0.9999, options.cost_skew);
    const NodeId id = graph.AddNode(std::move(node));
    int layer = 0;
    if (i >= 3) {  // Keep at least a few entries in layer 0.
      layer = 1 + static_cast<int>(rng.NextUint64(static_cast<uint64_t>(layers - 1)));
    }
    layer_nodes[static_cast<size_t>(layer)].push_back(id);
  }
  // Wire each non-root node to 1-3 callers from strictly earlier layers.
  for (int layer = 1; layer < layers; ++layer) {
    for (NodeId id : layer_nodes[static_cast<size_t>(layer)]) {
      const int num_callers = 1 + static_cast<int>(rng.NextUint64(3));
      for (int c = 0; c < num_callers; ++c) {
        const int caller_layer = static_cast<int>(rng.NextUint64(static_cast<uint64_t>(layer)));
        const auto& candidates = layer_nodes[static_cast<size_t>(caller_layer)];
        if (candidates.empty()) {
          continue;
        }
        const NodeId caller = candidates[rng.NextUint64(candidates.size())];
        graph.AddEdge(caller, id, rng.Uniform(0.2, 1.0));
      }
    }
  }
  return graph;
}

}  // namespace fbdetect
