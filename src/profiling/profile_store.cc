#include "src/profiling/profile_store.h"

#include "src/common/check.h"

namespace fbdetect {
namespace {

// Floor division (C++ integer division truncates toward zero, which rounds
// the wrong way for negative numerators — and naive "subtract width, add 1"
// adjustments round the wrong way for positive ones).
TimePoint FloorDiv(TimePoint value, Duration width) {
  const TimePoint quotient = value / width;
  return (value % width != 0 && (value < 0) != (width < 0)) ? quotient - 1 : quotient;
}

}  // namespace

ProfileStore::ProfileStore(Duration bucket_width) : bucket_width_(bucket_width) {
  FBD_CHECK(bucket_width_ > 0);
}

void ProfileStore::Ingest(const std::string& service, TimePoint timestamp,
                          const CallGraph* graph, const ProfileAggregate& aggregate) {
  FBD_CHECK(graph != nullptr);
  const TimePoint bucket_start = FloorDiv(timestamp, bucket_width_) * bucket_width_;
  Bucket& bucket = buckets_[services_.Intern(service)][bucket_start];
  FBD_CHECK(bucket.graph == nullptr || bucket.graph == graph);
  bucket.graph = graph;
  bucket.aggregate.Merge(aggregate);
}

template <typename Fn>
void ProfileStore::ForEachBucket(const std::string& service, TimePoint begin, TimePoint end,
                                 Fn&& fn) const {
  const auto symbol = services_.Find(service);
  if (!symbol) {
    return;
  }
  const auto service_it = buckets_.find(*symbol);
  if (service_it == buckets_.end()) {
    return;
  }
  // First bucket whose range [start, start + width) intersects [begin, end):
  // the bucket containing `begin`. The previous truncation-toward-zero
  // arithmetic here also admitted the bucket ENDING at `begin` whenever
  // begin > bucket_width_, silently mixing one stale bucket into every
  // overlap/gCPU query.
  const TimePoint first_start = FloorDiv(begin, bucket_width_) * bucket_width_;
  for (auto it = service_it->second.lower_bound(first_start);
       it != service_it->second.end() && it->first < end; ++it) {
    fn(it->second);
  }
}

double ProfileStore::Overlap(const std::string& service, const std::string& subroutine_a,
                             const std::string& subroutine_b, TimePoint begin,
                             TimePoint end) const {
  // Weighted average of per-bucket Jaccard overlaps, weighted by each
  // bucket's sample count (merging raw sample sets across buckets would
  // require re-indexing; per-bucket averaging is equivalent for the feature's
  // purpose and keeps queries cheap).
  double weighted = 0.0;
  double total_weight = 0.0;
  ForEachBucket(service, begin, end, [&](const Bucket& bucket) {
    const NodeId a = bucket.graph->FindByName(subroutine_a);
    const NodeId b = bucket.graph->FindByName(subroutine_b);
    if (a == kInvalidNode || b == kInvalidNode) {
      return;
    }
    const double weight = static_cast<double>(bucket.aggregate.total_samples());
    if (weight <= 0.0) {
      return;
    }
    weighted += weight * bucket.aggregate.SampleOverlap(a, b);
    total_weight += weight;
  });
  return total_weight > 0.0 ? weighted / total_weight : 0.0;
}

double ProfileStore::Gcpu(const std::string& service, const std::string& subroutine,
                          TimePoint begin, TimePoint end) const {
  uint64_t containing = 0;
  uint64_t total = 0;
  ForEachBucket(service, begin, end, [&](const Bucket& bucket) {
    const NodeId id = bucket.graph->FindByName(subroutine);
    if (id == kInvalidNode) {
      return;
    }
    containing += bucket.aggregate.CountOf(id);
    total += bucket.aggregate.total_samples();
  });
  return total > 0 ? static_cast<double>(containing) / static_cast<double>(total) : 0.0;
}

void ProfileStore::Expire(TimePoint cutoff) {
  for (auto service_it = buckets_.begin(); service_it != buckets_.end();) {
    auto& per_service = service_it->second;
    // Remove buckets that END at or before the cutoff.
    for (auto it = per_service.begin();
         it != per_service.end() && it->first + bucket_width_ <= cutoff;) {
      it = per_service.erase(it);
    }
    if (per_service.empty()) {
      service_it = buckets_.erase(service_it);
    } else {
      ++service_it;
    }
  }
}

size_t ProfileStore::bucket_count() const {
  size_t count = 0;
  for (const auto& [service, per_service] : buckets_) {
    count += per_service.size();
  }
  return count;
}

}  // namespace fbdetect
