// PyPerf — end-to-end stack reconstruction for interpreted programs (§4,
// Fig. 5).
//
// Sampling the native stack of a CPython process yields interpreter frames:
// CPython-internal calls, one _PyEval_EvalFrameDefault per active Python
// frame, and native C/C++ library frames at the leaf. CPython separately
// maintains a virtual call stack (VCS) — a linked list of Python frames whose
// head sits at a fixed address. PyPerf's insight: each
// _PyEval_EvalFrameDefault native frame corresponds 1:1 (in order) to one
// VCS entry, so substituting VCS entries for the _PyEval frames and keeping
// the native-library suffix produces a precise merged stack.
//
// This module models exactly that: a SimulatedInterpreterProcess exposes a
// native stack and a VCS; MergeStacks() implements the reconstruction. The
// simulated process stands in for a real CPython + eBPF probe (hardware/data
// gate documented in DESIGN.md §4); the merge algorithm is the real one.
#ifndef FBDETECT_SRC_PROFILING_PYPERF_H_
#define FBDETECT_SRC_PROFILING_PYPERF_H_

#include <string>
#include <vector>

#include "src/common/random.h"

namespace fbdetect {

enum class NativeFrameKind {
  kSystem,           // _start, libc, pthread, ...
  kInterpreterCall,  // CPython-internal C functions.
  kPyEvalFrame,      // _PyEval_EvalFrameDefault — one per Python frame.
  kNativeLibrary,    // C/C++ library invoked by Python code.
};

struct NativeFrame {
  NativeFrameKind kind = NativeFrameKind::kSystem;
  std::string symbol;
};

struct VirtualFrame {
  std::string function;  // Python function name.
  std::string file;      // Source file, for completeness of the model.
  int line = 0;
};

// Snapshot of one process at sampling time.
struct InterpreterSnapshot {
  std::vector<NativeFrame> native_stack;  // Root (index 0) to leaf.
  std::vector<VirtualFrame> virtual_call_stack;  // Outermost first.
};

struct MergedFrame {
  bool is_python = false;
  std::string symbol;
};

// Reconstructs the end-to-end stack: native frames pass through, each
// kPyEvalFrame is replaced (in order) by the corresponding VCS entry, and
// CPython-internal frames between Python frames are elided. Returns the
// merged root-to-leaf stack. If the counts of kPyEvalFrame frames and VCS
// entries disagree (a torn sample in production), the deeper frames are
// matched first and the mismatch is reported via `torn`.
std::vector<MergedFrame> MergeStacks(const InterpreterSnapshot& snapshot, bool* torn = nullptr);

// A toy Python program model: a chain of Python functions where each leaf
// either executes bytecode (on-CPU inside the interpreter) or calls into a
// native library. Used by tests, the PyPerf example, and the overhead bench.
class SimulatedInterpreterProcess {
 public:
  struct Options {
    int max_python_depth = 6;
    double native_leaf_probability = 0.4;  // P(leaf is a C library call).
    int num_python_functions = 24;
    int num_native_libraries = 6;
  };

  SimulatedInterpreterProcess(const Options& options, uint64_t seed);

  // Produces the snapshot an eBPF probe would capture right now.
  InterpreterSnapshot Sample();

  const Options& options() const { return options_; }

 private:
  Options options_;
  Rng rng_;
  std::vector<std::string> python_functions_;
  std::vector<std::string> native_libraries_;
};

}  // namespace fbdetect

#endif  // FBDETECT_SRC_PROFILING_PYPERF_H_
