// Call-graph model of a service's code.
//
// Nodes are subroutines (name, enclosing class, self CPU cost); weighted
// edges are call relations. The graph must be a DAG (no recursion), which the
// generator guarantees and AddEdge checks.
//
// Sampling model: a stack-trace sample is a random walk from an entry node.
// At node v the walk stops (v's own code is on-CPU) with probability
// self(v)/subtree(v) and descends edge e with probability
// weight(e)*subtree(child)/subtree(v), where
//   subtree(v) = self(v) + Σ_e weight(e) * subtree(child_e).
// Under this model the probability that subroutine u appears anywhere in a
// sample — exactly the paper's gCPU — has the closed form computed by
// ReachProbabilities(), which lets the fleet simulator synthesize sample
// counts without materializing billions of stack walks.
//
// Costs are mutable so the fleet can inject regressions (raise a self cost)
// and cost shifts (move self cost between two subroutines).
#ifndef FBDETECT_SRC_PROFILING_CALL_GRAPH_H_
#define FBDETECT_SRC_PROFILING_CALL_GRAPH_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/random.h"

namespace fbdetect {

using NodeId = int32_t;
inline constexpr NodeId kInvalidNode = -1;

struct Subroutine {
  std::string name;
  std::string class_name;  // Enclosing class; cost-shift domain (§5.4).
  double self_cost = 0.0;  // Expected on-CPU weight of the node's own code.
  std::string metadata;    // SetFrameMetadata annotation, may be empty.
};

struct CallEdge {
  NodeId callee = kInvalidNode;
  double weight = 1.0;  // Relative call frequency.
};

class CallGraph {
 public:
  // Adds a subroutine and returns its id.
  NodeId AddNode(Subroutine subroutine);

  // Adds a call edge; FBD_CHECKs that it does not create a cycle.
  void AddEdge(NodeId caller, NodeId callee, double weight);

  size_t node_count() const { return nodes_.size(); }
  const Subroutine& node(NodeId id) const { return nodes_[static_cast<size_t>(id)]; }
  Subroutine& mutable_node(NodeId id) { dirty_ = true; return nodes_[static_cast<size_t>(id)]; }
  const std::vector<CallEdge>& edges(NodeId id) const { return edges_[static_cast<size_t>(id)]; }

  // Id by subroutine name; kInvalidNode when absent.
  NodeId FindByName(const std::string& name) const;

  // Entry nodes (no callers).
  const std::vector<NodeId>& roots() const;

  // Direct callers of a node.
  std::vector<NodeId> CallersOf(NodeId id) const;

  // All nodes sharing the given class name.
  std::vector<NodeId> NodesInClass(const std::string& class_name) const;

  // subtree(v) per the sampling model; recomputed lazily after mutations.
  const std::vector<double>& SubtreeCosts() const;

  // P(node appears in a stack-trace sample) for every node — the exact gCPU
  // under the sampling model.
  std::vector<double> ReachProbabilities() const;

  // Draws one stack-trace sample (root-to-leaf node ids).
  std::vector<NodeId> SampleStack(Rng& rng) const;

  // Total expected cost (Σ subtree over roots); the normalizer for sampling.
  double TotalCost() const;

  // --- Mutations used by the fleet's event injectors ---

  // Multiplies `node`'s self cost by `factor` (> 0).
  void ScaleSelfCost(NodeId id, double factor);

  // Moves `amount` of self cost from `from` to `to` (clamped at from's cost).
  // This is the §5.4 "code refactoring" cost shift: the total cost of the
  // enclosing domain is unchanged.
  void ShiftSelfCost(NodeId from, NodeId to, double amount);

 private:
  void Recompute() const;

  std::vector<Subroutine> nodes_;
  std::vector<std::vector<CallEdge>> edges_;
  std::unordered_map<std::string, NodeId> by_name_;

  mutable bool dirty_ = true;
  mutable std::vector<double> subtree_;
  mutable std::vector<NodeId> roots_;
  mutable std::vector<int> in_degree_;
};

struct RandomCallGraphOptions {
  int num_subroutines = 1000;  // k in §2's analysis.
  int num_classes = 50;
  int max_depth = 8;           // Layers in the generated DAG.
  double cost_skew = 1.0;      // Pareto-ish skew of self costs (1 = mild).
};

// Generates a layered random DAG with skewed self costs, mimicking the
// paper's observation that non-trivial subroutines have a median gCPU of
// ~0.0083% (most cost concentrated in few subroutines, long tail of small
// ones).
CallGraph GenerateRandomCallGraph(const RandomCallGraphOptions& options, Rng& rng);

}  // namespace fbdetect

#endif  // FBDETECT_SRC_PROFILING_CALL_GRAPH_H_
