#include "src/profiling/pyperf.h"

#include <algorithm>

#include "src/common/check.h"

namespace fbdetect {

std::vector<MergedFrame> MergeStacks(const InterpreterSnapshot& snapshot, bool* torn) {
  // Pair the i-th kPyEvalFrame (from the root) with the i-th VCS entry
  // (outermost first). When counts mismatch, align from the leaf: the deepest
  // frames are the most recently pushed and the most likely to be coherent.
  size_t eval_count = 0;
  for (const NativeFrame& frame : snapshot.native_stack) {
    if (frame.kind == NativeFrameKind::kPyEvalFrame) {
      ++eval_count;
    }
  }
  const size_t vcs_count = snapshot.virtual_call_stack.size();
  const bool is_torn = eval_count != vcs_count;
  if (torn != nullptr) {
    *torn = is_torn;
  }
  // Offset so the LAST eval frame maps to the LAST VCS entry.
  const long shift = static_cast<long>(vcs_count) - static_cast<long>(eval_count);

  std::vector<MergedFrame> merged;
  merged.reserve(snapshot.native_stack.size());
  long eval_index = 0;
  for (const NativeFrame& frame : snapshot.native_stack) {
    switch (frame.kind) {
      case NativeFrameKind::kSystem:
      case NativeFrameKind::kNativeLibrary:
        merged.push_back({false, frame.symbol});
        break;
      case NativeFrameKind::kInterpreterCall:
        // CPython plumbing between Python frames carries no user-visible
        // cost attribution; elide it (Fig. 5's merged stack keeps only
        // system, Python, and native-library frames).
        break;
      case NativeFrameKind::kPyEvalFrame: {
        const long vcs_index = eval_index + shift;
        if (vcs_index >= 0 && static_cast<size_t>(vcs_index) < vcs_count) {
          merged.push_back(
              {true, snapshot.virtual_call_stack[static_cast<size_t>(vcs_index)].function});
        } else {
          merged.push_back({true, "<unknown-python-frame>"});
        }
        ++eval_index;
        break;
      }
    }
  }
  return merged;
}

SimulatedInterpreterProcess::SimulatedInterpreterProcess(const Options& options, uint64_t seed)
    : options_(options), rng_(seed) {
  FBD_CHECK(options_.max_python_depth >= 1);
  FBD_CHECK(options_.num_python_functions >= 1);
  FBD_CHECK(options_.num_native_libraries >= 1);
  for (int i = 0; i < options_.num_python_functions; ++i) {
    python_functions_.push_back("py_fun_" + std::to_string(i));
  }
  for (int i = 0; i < options_.num_native_libraries; ++i) {
    native_libraries_.push_back("c_lib_" + std::to_string(i));
  }
}

InterpreterSnapshot SimulatedInterpreterProcess::Sample() {
  InterpreterSnapshot snapshot;
  snapshot.native_stack.push_back({NativeFrameKind::kSystem, "_start"});
  snapshot.native_stack.push_back({NativeFrameKind::kSystem, "__libc_start_main"});
  snapshot.native_stack.push_back({NativeFrameKind::kInterpreterCall, "Py_RunMain"});
  snapshot.native_stack.push_back({NativeFrameKind::kInterpreterCall, "PyEval_EvalCode"});

  const int depth =
      1 + static_cast<int>(rng_.NextUint64(static_cast<uint64_t>(options_.max_python_depth)));
  for (int level = 0; level < depth; ++level) {
    const std::string& function =
        python_functions_[rng_.NextUint64(python_functions_.size())];
    snapshot.virtual_call_stack.push_back({function, function + ".py", 10 + level});
    snapshot.native_stack.push_back({NativeFrameKind::kPyEvalFrame, "_PyEval_EvalFrameDefault"});
    if (level + 1 < depth) {
      // CPython plumbing that dispatches the next call.
      snapshot.native_stack.push_back({NativeFrameKind::kInterpreterCall, "_PyObject_Call"});
    }
  }
  if (rng_.NextBool(options_.native_leaf_probability)) {
    const std::string& library = native_libraries_[rng_.NextUint64(native_libraries_.size())];
    snapshot.native_stack.push_back({NativeFrameKind::kInterpreterCall, "cfunction_vectorcall"});
    snapshot.native_stack.push_back({NativeFrameKind::kNativeLibrary, library + "::process"});
  }
  return snapshot;
}

}  // namespace fbdetect
