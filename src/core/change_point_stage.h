// Stage 1 of the short-term path (Fig. 6): change-point detection.
//
// For one metric's windows, runs the iterative CUSUM+EM detector over the
// recent data (a one-analysis-window tail of the historical window for
// context, plus the analysis and extended windows), validates the candidate
// with the likelihood-ratio test, and — when the change point falls inside
// the analysis window — emits a Regression candidate with all window data
// attached in regression-positive orientation.
#ifndef FBDETECT_SRC_CORE_CHANGE_POINT_STAGE_H_
#define FBDETECT_SRC_CORE_CHANGE_POINT_STAGE_H_

#include <optional>

#include "src/common/sim_time.h"
#include "src/core/regression.h"
#include "src/core/workload_config.h"
#include "src/tsdb/metric_id.h"
#include "src/tsdb/window.h"

namespace fbdetect {

class ChangePointStage {
 public:
  explicit ChangePointStage(const DetectionConfig& config) : config_(config) {}

  // Returns a candidate regression, or nullopt when no significant change
  // point lies in the analysis window. `windows` must come from
  // ExtractWindows with the same config's WindowSpec.
  std::optional<Regression> Detect(const MetricId& metric, const WindowExtract& windows) const;

 private:
  const DetectionConfig& config_;
};

}  // namespace fbdetect

#endif  // FBDETECT_SRC_CORE_CHANGE_POINT_STAGE_H_
