// Stage 1 of the short-term path (Fig. 6): change-point detection.
//
// For one metric's windows, runs the configured change-point backend
// (default: the iterative CUSUM+EM detector, §5.2.1) over the recent data
// (a one-analysis-window tail of the historical window for context, plus
// the analysis and extended windows), validates the candidate with the
// backend's significance test, and — when the change point falls inside
// the analysis window — emits a candidate.
//
// The hot path (DetectCandidate) consumes a pre-oriented ScanView and emits
// only scalars; window data is copied into a Regression exclusively for
// candidates that survive the downstream filters. The Regression-returning
// Detect overload is the convenience form for tests and benches.
#ifndef FBDETECT_SRC_CORE_CHANGE_POINT_STAGE_H_
#define FBDETECT_SRC_CORE_CHANGE_POINT_STAGE_H_

#include <memory>
#include <optional>

#include "src/common/sim_time.h"
#include "src/core/regression.h"
#include "src/core/scan_view.h"
#include "src/core/workload_config.h"
#include "src/tsa/changepoint_backend.h"
#include "src/tsdb/metric_id.h"
#include "src/tsdb/window.h"

namespace fbdetect {

class ChangePointStage {
 public:
  // Resolves config.change_point_backend against the backend registry;
  // aborts (FBD_CHECK) on an unknown name — a misconfigured detector must
  // fail loudly at construction, not silently skip every scan.
  explicit ChangePointStage(const DetectionConfig& config);

  // Zero-copy core: returns candidate scalars, or nullopt when no
  // significant change point lies in the analysis window. `view` must be
  // oriented (regression-positive) and built with the same config's
  // WindowSpec.
  std::optional<ScanCandidate> DetectCandidate(const ScanView& view) const;

  // Convenience: orients `windows` by the metric's kind and materializes a
  // full Regression for the candidate.
  std::optional<Regression> Detect(const MetricId& metric, const WindowExtract& windows) const;

 private:
  const DetectionConfig& config_;
  // Const after construction; Detect() is const and thread-safe, so one
  // instance serves every scan worker (the determinism contract).
  std::unique_ptr<const ChangePointBackend> backend_;
};

}  // namespace fbdetect

#endif  // FBDETECT_SRC_CORE_CHANGE_POINT_STAGE_H_
