#include "src/core/went_away_legacy.h"

#include <algorithm>
#include <cmath>
#include <span>

#include "src/stats/descriptive.h"
#include "src/stats/trend.h"
#include "src/tsa/cusum.h"

namespace fbdetect {

bool InverseCusumWentAway::Keep(const Regression& regression) const {
  const std::span<const double> analysis(regression.analysis);
  if (regression.change_index >= analysis.size()) {
    return false;
  }
  const std::span<const double> post = analysis.subspan(regression.change_index);
  const size_t min_segment = std::max<size_t>(config_.min_segment, 1);
  if (post.size() < 2 * min_segment) {
    return true;  // Not enough post-change data to find an inverse shift.
  }
  // Search the post-change window for the most NEGATIVE mean shift — the
  // candidate "inverse regression".
  double most_negative = 0.0;
  for (size_t t = min_segment; t + min_segment <= post.size(); ++t) {
    const double shift = Mean(post.subspan(t)) - Mean(post.subspan(0, t));
    most_negative = std::min(most_negative, shift);
  }
  // A downward shift compensating most of the regression => "went away".
  // This is exactly the over-sensitive rule the paper retired: a transient
  // dip AFTER a true regression also triggers it, even though the level
  // recovers afterwards.
  return !(most_negative < -0.7 * regression.delta);
}

bool TrendCompareWentAway::Keep(const Regression& regression) const {
  const std::span<const double> analysis(regression.analysis);
  const std::span<const double> historical(regression.historical);
  if (regression.change_index >= analysis.size() || historical.empty()) {
    return false;
  }
  const std::span<const double> post = analysis.subspan(regression.change_index);
  const MannKendallResult trend = MannKendallTest(post, 0.05);
  if (trend.direction != TrendDirection::kDecreasing) {
    return true;  // No decay: the regression persists.
  }
  // Decreasing trend: compare the end of the regression against one
  // analysis-window-sized slice of the historical window. WHICH slice is the
  // fragile hyperparameter.
  const size_t slice = std::max<size_t>(1, analysis.size());
  const size_t max_offset = historical.size() / slice;
  const size_t offset = std::min(offset_, max_offset > 0 ? max_offset - 1 : 0);
  const size_t end = historical.size() - offset * slice;
  const size_t begin = end >= slice ? end - slice : 0;
  const std::span<const double> baseline = historical.subspan(begin, end - begin);

  const size_t tail = std::min<size_t>(std::max<size_t>(config_.gone_away_tail_points, 1),
                                       post.size());
  const double tail_mean = Mean(post.subspan(post.size() - tail));
  const double baseline_high = Percentile(baseline, 90.0);
  // Recovered to within the baseline slice's range => "went away".
  return tail_mean > baseline_high;
}

}  // namespace fbdetect
