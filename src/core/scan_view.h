// The zero-copy scan path's working view (§5.1).
//
// Detection stages 1–3 + threshold all consume the same windows of one
// series in regression-positive orientation (increase = worse). ScanView
// packages those windows as ONE contiguous oriented span plus offsets, so:
//   * for metrics where higher is worse the spans alias the TSDB storage
//     directly (zero copies);
//   * for throughput-like metrics (LowerIsRegression) the values are negated
//     ONCE into a caller-provided scratch buffer shared by all stages,
//     instead of once per stage;
//   * window data is copied into a Regression only when a candidate survives
//     every per-series filter (ScanCandidate -> MaterializeRegression).
//
// Lifetime: a ScanView borrows either the TSDB series storage or the scratch
// buffer. It is invalidated by any TimeSeriesDatabase mutation and by reuse
// of the scratch buffer — scans must not interleave with ingestion.
#ifndef FBDETECT_SRC_CORE_SCAN_VIEW_H_
#define FBDETECT_SRC_CORE_SCAN_VIEW_H_

#include <span>
#include <vector>

#include "src/common/sim_time.h"
#include "src/core/regression.h"
#include "src/tsdb/window.h"

namespace fbdetect {

struct ScanView {
  // historical | analysis | extended, contiguous, oriented.
  std::span<const double> full;
  size_t historical_size = 0;
  size_t analysis_size = 0;
  size_t extended_size = 0;
  // Timestamps aligned with analysis_plus_extended().
  std::span<const TimePoint> analysis_timestamps;
  TimePoint analysis_begin = 0;
  TimePoint as_of = 0;

  std::span<const double> historical() const { return full.subspan(0, historical_size); }
  std::span<const double> analysis() const {
    return full.subspan(historical_size, analysis_size);
  }
  std::span<const double> extended() const {
    return full.subspan(historical_size + analysis_size, extended_size);
  }
  std::span<const double> analysis_plus_extended() const {
    return full.subspan(historical_size);
  }
};

// A short-term candidate emitted by the change-point stage. The window data
// stays behind the ScanView's spans; only scalars travel through the
// went-away / seasonality / threshold filters, and a Regression is
// materialized for survivors alone.
struct ScanCandidate {
  size_t change_index = 0;  // Within analysis_plus_extended().
  double p_value = 1.0;
  double baseline_mean = 0.0;
  double regressed_mean = 0.0;
  double delta = 0.0;
  double relative_delta = 0.0;
};

// Builds an oriented view over `view`'s series storage. sign == +1 aliases
// the storage directly (zero copy); sign == -1 negates into `scratch`.
ScanView OrientWindows(const WindowView& view, double sign, std::vector<double>& scratch);

// Compatibility: orients a materialized WindowExtract into `scratch` (the
// extract's windows are separate vectors, so contiguity requires one copy).
ScanView OrientWindows(const WindowExtract& extract, double sign, std::vector<double>& scratch);

// View over a Regression's stored (already oriented) windows; copies
// historical + analysis into `scratch` to restore contiguity. Lets the
// filter stages re-run on stored regressions (tests, ablation benches).
ScanView ViewOfRegression(const Regression& regression, std::vector<double>& scratch);

// The candidate scalars mirrored from a stored Regression.
ScanCandidate CandidateOfRegression(const Regression& regression);

// Copies a SURVIVING candidate's window data out of `view` into a full
// Regression record for the downstream dedup / root-cause stages.
Regression MaterializeRegression(const MetricId& metric, const ScanView& view,
                                 const ScanCandidate& candidate);

}  // namespace fbdetect

#endif  // FBDETECT_SRC_CORE_SCAN_VIEW_H_
