// Root-cause analysis (§5.6): given a regression, generate candidate
// code/config changes deployed right before the change point, rank them by
// weighted relevance factors, and suggest the top candidates only when
// confidence is high enough (otherwise suggest nothing — §6.3 shows that is
// often the right behaviour).
//
// Relevance factors:
//  * subroutine gCPU attribution — the fraction of the regression magnitude
//    attributable to stack-trace samples involving subroutines the change
//    touched (Table 2's L/R computation; exact form over labelled samples in
//    GcpuAttribution, structural approximation over the call graph in the
//    analyzer);
//  * text similarity — cosine similarity between the regression context
//    (metric id, subroutine) and the change context (title, description,
//    touched files/subroutines);
//  * timing proximity — changes landing just before the regression score
//    higher;
//  * time-series correlation — Pearson correlation between the regression
//    series and any "setup" metric series associated with a change.
#ifndef FBDETECT_SRC_CORE_ROOT_CAUSE_H_
#define FBDETECT_SRC_CORE_ROOT_CAUSE_H_

#include <string>
#include <vector>

#include "src/core/code_info.h"
#include "src/core/regression.h"
#include "src/fleet/change_log.h"

namespace fbdetect {

// ---- Exact Table 2 attribution over labelled stack samples ----

// One distinct stack shape with its gCPU contribution before and after the
// regression. Stack entries are subroutine names, caller first.
struct AttributedSample {
  std::vector<std::string> stack;
  double gcpu_before = 0.0;  // 0 when the shape did not exist before.
  double gcpu_after = 0.0;
};

struct AttributionResult {
  double regression_magnitude = 0.0;  // R: total gCPU delta of the regressed
                                      // subroutine across all its samples.
  double attributed_magnitude = 0.0;  // L: delta over samples involving any
                                      // touched subroutine.
  double fraction = 0.0;              // L / R (0 when R is 0).
};

// Computes the Table 2 L/R fraction: among samples containing `regressed`,
// how much of the gCPU increase flows through stacks that also involve one
// of `touched`.
AttributionResult GcpuAttribution(const std::vector<AttributedSample>& samples,
                                  const std::string& regressed,
                                  const std::vector<std::string>& touched);

// ---- Pipeline analyzer ----

struct RootCauseConfig {
  Duration lookback = Days(1);       // Candidate window before the change.
  double w_structural = 0.5;
  double w_text = 0.3;
  double w_timing = 0.2;
  double min_confidence = 0.35;      // Suggest nothing below this top score.
  size_t max_suggestions = 3;        // The paper reports top-3 accuracy.
};

class RootCauseAnalyzer {
 public:
  // `code_info` may be null (structural factor degrades to name matching).
  RootCauseAnalyzer(const ChangeLog* change_log, const CodeInfoProvider* code_info,
                    RootCauseConfig config);

  // Candidate commit ids touching the regressed subroutine in the lookback
  // window — the cheap list SOMDedup uses as a clustering feature.
  std::vector<int64_t> QuickCandidates(const Regression& regression) const;

  // Full ranking; fills regression.root_causes (empty when confidence is too
  // low).
  void Analyze(Regression& regression) const;

 private:
  double StructuralScore(const Regression& regression, const Commit& commit) const;
  double TextScore(const Regression& regression, const Commit& commit) const;
  double TimingScore(const Regression& regression, const Commit& commit) const;

  const ChangeLog* change_log_;
  const CodeInfoProvider* code_info_;
  RootCauseConfig config_;
};

}  // namespace fbdetect

#endif  // FBDETECT_SRC_CORE_ROOT_CAUSE_H_
