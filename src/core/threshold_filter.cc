#include "src/core/threshold_filter.h"

#include <cmath>

namespace fbdetect {

bool PassesThreshold(const Regression& regression, const DetectionConfig& config) {
  switch (config.threshold_mode) {
    case ThresholdMode::kAbsolute:
      return regression.delta >= config.threshold;
    case ThresholdMode::kRelative:
      return regression.relative_delta >= config.threshold;
  }
  return false;
}

}  // namespace fbdetect
