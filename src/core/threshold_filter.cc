#include "src/core/threshold_filter.h"

#include <cmath>

namespace fbdetect {

bool PassesThreshold(double delta, double relative_delta, const DetectionConfig& config) {
  switch (config.threshold_mode) {
    case ThresholdMode::kAbsolute:
      return delta >= config.threshold;
    case ThresholdMode::kRelative:
      return relative_delta >= config.threshold;
  }
  return false;
}

bool PassesThreshold(const ScanCandidate& candidate, const DetectionConfig& config) {
  return PassesThreshold(candidate.delta, candidate.relative_delta, config);
}

bool PassesThreshold(const Regression& regression, const DetectionConfig& config) {
  return PassesThreshold(regression.delta, regression.relative_delta, config);
}

}  // namespace fbdetect
