// Detection configuration per workload — Table 1 of the paper.
//
// Each workload row configures: the detection threshold (absolute gCPU delta
// or relative change), the re-run interval, and the historical / analysis /
// extended window durations. Presets for all twelve Table 1 rows are
// provided; users compose their own DetectionConfig for new workloads.
#ifndef FBDETECT_SRC_CORE_WORKLOAD_CONFIG_H_
#define FBDETECT_SRC_CORE_WORKLOAD_CONFIG_H_

#include <string>
#include <vector>

#include "src/common/sim_time.h"
#include "src/tsdb/window.h"

namespace fbdetect {

enum class ThresholdMode {
  kAbsolute,  // Reported delta must exceed the threshold in metric units.
  kRelative,  // Reported delta / baseline must exceed the threshold.
};

struct DetectionConfig {
  std::string name = "custom";
  ThresholdMode threshold_mode = ThresholdMode::kAbsolute;
  double threshold = 0.0005;     // E.g. 0.00005 = 0.005% absolute gCPU.
  Duration rerun_interval = Hours(2);
  WindowSpec windows;

  // Change-point machinery knobs (defaults follow §5.2).
  double significance_level = 0.01;   // Likelihood-ratio test level.
  size_t min_segment = 4;             // Min points per change-point segment.
  int max_em_iterations = 20;
  // Registered ChangePointBackend name (src/tsa/changepoint_backend.h).
  // "cusum_em" is the paper's detector and stays byte-identical to the
  // historical hard-wired path; alternatives: "e_divisive", "pelt", "bocpd".
  std::string change_point_backend = "cusum_em";

  // Went-away detector (§5.2.2).
  int sax_buckets = 20;               // N.
  double sax_min_bucket_fraction = 0.03;  // X%.
  double trend_coefficient = 1.5;     // Regression coefficient for LastingTrend.
  double gone_away_recovery_fraction = 0.5;  // Recovered below baseline+f*delta.
  size_t gone_away_tail_points = 5;   // "Last few data points".
  double new_pattern_invalid_fraction = 0.6;  // Most letters invalid => new.

  // Seasonality detector (§5.2.3).
  double seasonality_min_correlation = 0.30;
  double seasonality_zscore_threshold = 2.0;

  // Long-term detector (§5.3).
  bool enable_long_term = true;
  double long_term_rmse_threshold = 0.15;  // Normalized-trend linear-fit RMSE.

  // How far back root-cause candidate generation looks (§5.6).
  Duration root_cause_lookback = Days(1);
};

// The twelve Table 1 rows. Thresholds are the paper's values; window
// durations are the paper's. Benches scale these to simulator resolution.
DetectionConfig FrontFaaSLargeConfig();   // 3% abs, 30 min, 10d/3h/—.
DetectionConfig FrontFaaSSmallConfig();   // 0.005% abs, 2h, 10d/4h/6h.
DetectionConfig PythonFaaSLargeConfig();  // 0.5% abs, 1h, 10d/6h/—.
DetectionConfig PythonFaaSSmallConfig();  // 0.03% abs, 4h, 10d/6h/6h.
DetectionConfig TaoFrontFaaSConfig();     // 0.05% abs, 2h, 10d/4h/1d.
DetectionConfig TaoNonFrontFaaSConfig();  // 0.05% abs, 1h, 10d/1d/6h.
DetectionConfig AdServingShortConfig();   // 0.2% abs, 6h, 10d/1d/12h.
DetectionConfig AdServingLongConfig();    // 0.1% abs, 1d, 16d/9d/—.
DetectionConfig InvoicerShortConfig();    // 0.5% abs, 12h, 14d/1d/1d.
DetectionConfig CtSupplyShortConfig();    // 5% rel, 12h, 7d/1d/1d.
DetectionConfig CtSupplyLongConfig();     // 5% rel, 12h, 10d/7d/1d.
DetectionConfig CtDemandConfig();         // 5% rel, 12h, 7d/1d/—.

// All presets, in Table 1 order.
std::vector<DetectionConfig> AllTable1Configs();

}  // namespace fbdetect

#endif  // FBDETECT_SRC_CORE_WORKLOAD_CONFIG_H_
