// PairwiseDedup (§5.5.2): the quality-optimized second deduplication pass.
//
// Takes representatives surviving SOMDedup and cost-shift filtering, and
// merges them into persistent groups spanning analysis windows and metric
// types. For each (new regression, existing group) pair it computes feature
// similarity scores:
//  * Pearson time-series correlation — max over group members, on the
//    timestamp-aligned overlap of the analysis windows;
//  * text cosine similarity of metric IDs — max over members;
//  * stack-trace overlap — fraction of shared samples between two
//    subroutines' gCPU calculations (via a pluggable provider, since it
//    needs profile data).
// A user-configurable rule decides the merge; the default follows the
// paper's example shape: strong correlation plus either textual or
// stack-trace affinity. Among eligible groups the one with the highest
// aggregate score wins (ties to the lowest group id, matching the original
// serial scan order).
//
// Ingest internals (PR 3): instead of re-tokenizing every member string per
// pair, each group keeps a summary (per-member hashed token vectors, gCPU
// flag) and a token-hash inverted index prunes the candidate group set
// before scoring:
//  * a group is scored iff it shares at least one metric token with the
//    candidate, or (when the overlap feature is active and the candidate is
//    gCPU) contains a gCPU member — any other group has text == 0 and
//    stack_overlap == 0 and provably fails the merge rule;
//  * the pruning is only applied when min_text > 0 AND min_stack_overlap
//    > 0; with either threshold non-exclusionary every group is scored, so
//    results always equal the full scan;
//  * surviving groups are scored in parallel into per-group slots and the
//    argmax merge is applied serially in ascending group id — byte-identical
//    to the historical all-pairs loop for any pool size.
// Pearson alignment walks the two sorted timestamp arrays with two pointers
// (no per-pair hash map) and is bit-exact with PearsonCorrelation over the
// materialized aligned values.
#ifndef FBDETECT_SRC_CORE_PAIRWISE_DEDUP_H_
#define FBDETECT_SRC_CORE_PAIRWISE_DEDUP_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/core/fingerprint.h"
#include "src/core/regression.h"
#include "src/stats/text.h"

namespace fbdetect {

// Returns the sample overlap in [0, 1] of two subroutines' gCPU stack
// samples; used for the stack-trace-overlap feature. May be empty (feature
// = 0). Must be safe to call concurrently: Ingest invokes it from pool
// workers when given a ThreadPool.
using StackOverlapFn =
    std::function<double(const MetricId& a, const MetricId& b)>;

struct PairwiseScores {
  double pearson = 0.0;
  double text = 0.0;
  double stack_overlap = 0.0;

  double Aggregate() const { return pearson + text + stack_overlap; }
};

struct PairwiseRule {
  double min_pearson = 0.70;
  double min_text = 0.40;
  double min_stack_overlap = 0.30;

  // Default rule: correlated in time AND related in identity (by name or by
  // shared stack samples).
  bool ShouldMerge(const PairwiseScores& scores) const {
    return scores.pearson >= min_pearson &&
           (scores.text >= min_text || scores.stack_overlap >= min_stack_overlap);
  }
};

struct RegressionGroup {
  int group_id = -1;
  std::vector<Regression> members;  // members[0] is the representative.
};

// Pearson correlation over the timestamp-aligned overlap of two regressions'
// analysis windows; 0 below 8 aligned points (regressions observed in
// disjoint windows share no co-movement evidence — merging them must be
// justified by the identity features instead). Requires the documented
// invariant analysis_timestamps.size() == analysis.size() on both sides
// (FBD_CHECK) and strictly increasing timestamps. Exposed for tests and
// benchmarks.
double AlignedPearson(const Regression& a, const Regression& b);

class PairwiseDedup {
 public:
  explicit PairwiseDedup(PairwiseRule rule = {}, StackOverlapFn overlap = nullptr)
      : rule_(rule), overlap_(std::move(overlap)) {}

  // Merges each new candidate into the best matching existing group or
  // opens a new group. Returns the indices of groups that are NEW (their
  // representative should proceed to root-cause analysis). `pool` (optional)
  // parallelizes the scoring of one candidate against its surviving
  // candidate groups; results are byte-identical for any pool size.
  // Checks the analysis_timestamps invariant on every candidate.
  std::vector<int> Ingest(std::vector<FunnelCandidate> candidates, ThreadPool* pool = nullptr);

  // Compat form: fingerprints the regressions itself (text features only).
  std::vector<int> Ingest(std::vector<Regression> regressions);

  const std::vector<RegressionGroup>& groups() const { return groups_; }

  // Mutable access to a group's representative (members[0]), so root-cause
  // analysis can run in place instead of on a copy.
  Regression& GroupRepresentative(int group_id);

  // Scores one candidate pair (exposed for tests). Recomputes the text
  // features from the metric strings; Ingest uses the cached fingerprints
  // and group summaries instead.
  PairwiseScores Score(const Regression& candidate, const RegressionGroup& group) const;

 private:
  struct GroupSummary {
    // Hashed token vector per member, parallel to RegressionGroup::members.
    std::vector<TokenVector> member_tokens;
    bool has_gcpu = false;
  };

  // Fills candidate_groups_ (ascending group ids) with the groups that could
  // pass the merge rule against `candidate`; all groups when pruning is not
  // conservative for the configured rule.
  void CollectCandidateGroups(const FunnelCandidate& candidate);
  // Scores `candidate` against every collected group into aggregates_ /
  // eligible_ slots, optionally in parallel.
  void ScoreCandidate(const FunnelCandidate& candidate, ThreadPool* pool);
  void IndexTokens(const TokenVector& tokens, int group_id);
  void AppendMember(int group_id, FunnelCandidate candidate);
  int OpenGroup(FunnelCandidate candidate);

  PairwiseRule rule_;
  StackOverlapFn overlap_;
  std::vector<RegressionGroup> groups_;
  std::vector<GroupSummary> summaries_;  // Parallel to groups_.

  // Inverted index: token hash -> ids of groups with a member containing the
  // token. Lists may hold a group more than once (members added at different
  // times); the mark array deduplicates at query time.
  std::unordered_map<uint64_t, std::vector<int>> token_index_;
  // Groups containing at least one gCPU member, ascending; candidates for
  // the stack-overlap clause.
  std::vector<int> gcpu_groups_;

  // Per-candidate scratch (capacity reused across candidates and runs).
  std::vector<uint32_t> group_mark_;  // Parallel to groups_.
  uint32_t mark_stamp_ = 0;
  std::vector<int> candidate_groups_;
  std::vector<double> aggregates_;  // Parallel to candidate_groups_.
  std::vector<uint8_t> eligible_;   // Parallel to candidate_groups_.
};

}  // namespace fbdetect

#endif  // FBDETECT_SRC_CORE_PAIRWISE_DEDUP_H_
