// PairwiseDedup (§5.5.2): the quality-optimized second deduplication pass.
//
// Takes representatives surviving SOMDedup and cost-shift filtering, and
// merges them into persistent groups spanning analysis windows and metric
// types. For each (new regression, existing group) pair it computes feature
// similarity scores:
//  * Pearson time-series correlation — max over group members, on the
//    timestamp-aligned overlap of the analysis windows;
//  * text cosine similarity of metric IDs — max over members;
//  * stack-trace overlap — fraction of shared samples between two
//    subroutines' gCPU calculations (via a pluggable provider, since it
//    needs profile data).
// A user-configurable rule decides the merge; the default follows the
// paper's example shape: strong correlation plus either textual or
// stack-trace affinity. Among eligible groups the one with the highest
// aggregate score wins.
#ifndef FBDETECT_SRC_CORE_PAIRWISE_DEDUP_H_
#define FBDETECT_SRC_CORE_PAIRWISE_DEDUP_H_

#include <functional>
#include <vector>

#include "src/core/regression.h"

namespace fbdetect {

// Returns the sample overlap in [0, 1] of two subroutines' stack samples;
// used for the stack-trace-overlap feature. May be empty (feature = 0).
using StackOverlapFn =
    std::function<double(const MetricId& a, const MetricId& b)>;

struct PairwiseScores {
  double pearson = 0.0;
  double text = 0.0;
  double stack_overlap = 0.0;

  double Aggregate() const { return pearson + text + stack_overlap; }
};

struct PairwiseRule {
  double min_pearson = 0.70;
  double min_text = 0.40;
  double min_stack_overlap = 0.30;

  // Default rule: correlated in time AND related in identity (by name or by
  // shared stack samples).
  bool ShouldMerge(const PairwiseScores& scores) const {
    return scores.pearson >= min_pearson &&
           (scores.text >= min_text || scores.stack_overlap >= min_stack_overlap);
  }
};

struct RegressionGroup {
  int group_id = -1;
  std::vector<Regression> members;  // members[0] is the representative.
};

class PairwiseDedup {
 public:
  explicit PairwiseDedup(PairwiseRule rule = {}, StackOverlapFn overlap = nullptr)
      : rule_(rule), overlap_(std::move(overlap)) {}

  // Merges each new regression into the best matching existing group or
  // opens a new group. Returns the indices of groups that are NEW (their
  // representative should proceed to root-cause analysis).
  std::vector<int> Ingest(std::vector<Regression> regressions);

  const std::vector<RegressionGroup>& groups() const { return groups_; }

  // Scores one candidate pair (exposed for tests).
  PairwiseScores Score(const Regression& candidate, const RegressionGroup& group) const;

 private:
  PairwiseRule rule_;
  StackOverlapFn overlap_;
  std::vector<RegressionGroup> groups_;
};

}  // namespace fbdetect

#endif  // FBDETECT_SRC_CORE_PAIRWISE_DEDUP_H_
