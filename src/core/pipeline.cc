#include "src/core/pipeline.h"

#include <algorithm>
#include <map>
#include <span>

#include "src/common/check.h"
#include "src/tsdb/window.h"

namespace fbdetect {

void FunnelStats::Accumulate(const FunnelStats& other) {
  change_points += other.change_points;
  after_went_away += other.after_went_away;
  after_seasonality += other.after_seasonality;
  after_threshold += other.after_threshold;
  after_same_merger += other.after_same_merger;
  after_som_dedup += other.after_som_dedup;
  after_cost_shift += other.after_cost_shift;
  after_pairwise += other.after_pairwise;
}

namespace {

Duration MergerTolerance(const PipelineOptions& options) {
  if (options.same_regression_tolerance > 0) {
    return options.same_regression_tolerance;
  }
  return options.detection.windows.analysis;
}

// Points per day at the metric's native resolution, for the went-away
// detector's previous-day percentile.
size_t PointsPerDay(std::span<const TimePoint> timestamps) {
  if (timestamps.size() < 2) {
    return 0;
  }
  const Duration dt = timestamps[1] - timestamps[0];
  if (dt <= 0) {
    return 0;
  }
  return static_cast<size_t>(kDay / dt);
}

// Canonical survivor order: MetricId's field-wise ordering, short-term before
// long-term within a metric. (metric, long_term) is unique — each path emits
// at most one candidate per metric — so the order is total and the sort is
// deterministic. The serial scan emits survivors in exactly this order
// (CachedMetrics is sorted with the same comparator; the short-term push
// precedes the long-term push in ScanMetric), which is what makes threaded
// and single-threaded runs byte-identical.
bool CanonicalSurvivorOrder(const Regression& a, const Regression& b) {
  if (a.metric != b.metric) {
    return a.metric < b.metric;
  }
  return a.long_term < b.long_term;
}

}  // namespace

Pipeline::Pipeline(const TimeSeriesDatabase* db, const ChangeLog* change_log,
                   const CodeInfoProvider* code_info, PipelineOptions options)
    : db_(db),
      change_log_(change_log),
      options_(std::move(options)),
      change_point_stage_(options_.detection),
      went_away_(options_.detection),
      seasonality_(options_.detection),
      long_term_(options_.detection),
      merger_(MergerTolerance(options_)),
      sanitizer_(options_.sanitizer),
      som_dedup_(options_.som_dedup),
      cost_shift_(db, options_.cost_shift),
      pairwise_(options_.pairwise_rule),
      pool_(static_cast<size_t>(std::max(1, options_.scan_threads) - 1)),
      worker_scratch_(static_cast<size_t>(std::max(1, options_.scan_threads))),
      worker_series_scratch_(static_cast<size_t>(std::max(1, options_.scan_threads))) {
  FBD_CHECK(db_ != nullptr);
  cost_shift_.AddDefaultDetectors(code_info, change_log_);
  if (change_log_ != nullptr) {
    RootCauseConfig rc = options_.root_cause;
    rc.lookback = options_.detection.root_cause_lookback;
    root_cause_ = std::make_unique<RootCauseAnalyzer>(change_log_, code_info, rc);
  }
}

void Pipeline::set_stack_overlap(StackOverlapFn overlap) {
  pairwise_ = PairwiseDedup(options_.pairwise_rule, std::move(overlap));
}

void Pipeline::ScanMetric(const MetricId& id, TimePoint as_of,
                          std::vector<Regression>& survivors, FunnelStats& short_funnel,
                          FunnelStats& long_funnel, std::vector<double>& scratch,
                          TimeSeries& series_scratch,
                          std::vector<QuarantineRecord>& quarantine) const {
  // Points before the detection windows are irrelevant, so the lookup only
  // needs [as_of - total, inf): when those live in the raw tail this is the
  // PR 1 zero-copy path; otherwise sealed chunks decode into the worker's
  // scratch buffer.
  const TimePoint scan_begin = as_of - options_.detection.windows.Total();
  Status scan_status;
  const TimeSeries* series = db_->SeriesForScan(id, scan_begin, series_scratch, &scan_status);
  if (series == nullptr) {
    if (!scan_status.ok()) {
      // Corrupt sealed storage: quarantine the series for this window
      // instead of letting the decode abort the re-run.
      QuarantineRecord record;
      record.metric = id;
      record.worst = QualityVerdict::kCorrupt;
      record.windows_flagged = 1;
      record.windows_quarantined = 1;
      record.decode_failures = 1;
      quarantine.push_back(std::move(record));
    }
    return;
  }
  // Zero-copy windows + one orientation pass shared by both paths. For
  // higher-is-worse kinds the view aliases the series' storage directly.
  const WindowView windows = ExtractWindowView(*series, as_of, options_.detection.windows);

  // Data-quality gate: classify the window before any detector touches it.
  // A quarantined window is skipped for this re-run only — the series stays
  // in the database and is re-inspected at the next re-run.
  const WindowQuality quality =
      sanitizer_.Inspect(id.kind, windows, options_.detection.windows);
  const bool quarantined = sanitizer_.ShouldQuarantine(quality.verdict);
  if (quality.observed &&
      (quality.verdict != QualityVerdict::kOk || quality.missing > 0 || quality.skew > 0)) {
    QuarantineRecord record;
    record.metric = id;
    record.worst = quality.verdict;
    record.windows_flagged = 1;
    record.windows_quarantined = quarantined ? 1 : 0;
    record.non_finite = quality.non_finite;
    record.negative = quality.negative;
    record.missing = quality.missing;
    record.flap_windows = (quality.late_start || quality.early_end) ? 1 : 0;
    record.max_skew = quality.skew;
    quarantine.push_back(std::move(record));
  }
  if (quarantined) {
    return;
  }

  const double sign = LowerIsRegression(id.kind) ? -1.0 : 1.0;
  const ScanView view = OrientWindows(windows, sign, scratch);

  // Detector exceptions are isolated to the series: one throwing detector
  // quarantines this metric for this re-run instead of unwinding through the
  // worker (ThreadPool would rethrow at join and abort the whole scan).
  try {
    // ---- Short-term path ----
    if (const std::optional<ScanCandidate> candidate = change_point_stage_.DetectCandidate(view)) {
      ++short_funnel.change_points;
      const size_t points_per_day = PointsPerDay(view.analysis_timestamps);
      const WentAwayVerdict went_away = went_away_.Evaluate(view, *candidate, points_per_day);
      if (went_away.keep) {
        ++short_funnel.after_went_away;
        const SeasonalityVerdict seasonal = seasonality_.Evaluate(view, *candidate);
        if (!seasonal.seasonal_filtered) {
          ++short_funnel.after_seasonality;
          if (PassesThreshold(*candidate, options_.detection)) {
            ++short_funnel.after_threshold;
            // First (and only) copy of window data on this path: the survivor.
            Regression regression = MaterializeRegression(id, view, *candidate);
            if (root_cause_ != nullptr) {
              regression.candidate_root_causes = root_cause_->QuickCandidates(regression);
            }
            survivors.push_back(std::move(regression));
          }
        }
      }
    }

    // ---- Long-term path ----
    if (options_.detection.enable_long_term) {
      if (std::optional<Regression> candidate = long_term_.Detect(id, view)) {
        ++long_funnel.change_points;
        // The long-term detector applies the threshold internally; recheck for
        // the funnel row (Table 3 shows ~1/1.03 here).
        if (PassesThreshold(*candidate, options_.detection)) {
          ++long_funnel.after_threshold;
          if (root_cause_ != nullptr) {
            candidate->candidate_root_causes = root_cause_->QuickCandidates(*candidate);
          }
          survivors.push_back(std::move(*candidate));
        }
      }
    }
  } catch (...) {
    QuarantineRecord record;
    record.metric = id;
    record.worst = QualityVerdict::kCorrupt;
    record.windows_flagged = 1;
    record.windows_quarantined = 1;
    record.exceptions = 1;
    quarantine.push_back(std::move(record));
  }
}

const std::vector<MetricId>& Pipeline::CachedMetrics(const std::string& service) {
  const uint64_t generation = db_->generation();
  if (!cache_valid_ || cached_service_ != service || cached_generation_ != generation) {
    cached_ids_ = db_->ListMetrics(service);
    cached_service_ = service;
    cached_generation_ = generation;
    cache_valid_ = true;
  }
  return cached_ids_;
}

std::vector<Regression> Pipeline::ScanAllMetrics(const std::string& service, TimePoint as_of) {
  const std::vector<MetricId>& ids = CachedMetrics(service);
  const int threads = std::max(1, options_.scan_threads);
  if (threads == 1 || ids.size() < 2) {
    std::vector<Regression> survivors;
    std::vector<QuarantineRecord> quarantine;
    for (const MetricId& id : ids) {
      ScanMetric(id, as_of, survivors, short_funnel_, long_funnel_, worker_scratch_[0],
                 worker_series_scratch_[0], quarantine);
    }
    MergeQuarantine(quarantine);
    return survivors;
  }
  // Static partition by stride; each worker keeps private survivors, funnel
  // counters, and quarantine records, merged afterwards in canonical order
  // (record merging is commutative) for determinism.
  const size_t num_workers = std::min<size_t>(static_cast<size_t>(threads), ids.size());
  std::vector<std::vector<Regression>> worker_survivors(num_workers);
  std::vector<FunnelStats> worker_short(num_workers);
  std::vector<FunnelStats> worker_long(num_workers);
  std::vector<std::vector<QuarantineRecord>> worker_quarantine(num_workers);
  pool_.ParallelFor(num_workers, [&](size_t w) {
    for (size_t i = w; i < ids.size(); i += num_workers) {
      ScanMetric(ids[i], as_of, worker_survivors[w], worker_short[w], worker_long[w],
                 worker_scratch_[w], worker_series_scratch_[w], worker_quarantine[w]);
    }
  });
  std::vector<Regression> survivors;
  for (size_t w = 0; w < num_workers; ++w) {
    short_funnel_.Accumulate(worker_short[w]);
    long_funnel_.Accumulate(worker_long[w]);
    MergeQuarantine(worker_quarantine[w]);
    survivors.insert(survivors.end(), std::make_move_iterator(worker_survivors[w].begin()),
                     std::make_move_iterator(worker_survivors[w].end()));
  }
  std::sort(survivors.begin(), survivors.end(), CanonicalSurvivorOrder);
  return survivors;
}

void Pipeline::MergeQuarantine(std::vector<QuarantineRecord>& records) {
  for (QuarantineRecord& record : records) {
    QuarantineRecord& merged = quarantine_[record.metric];
    merged.metric = record.metric;
    merged.Merge(record);
  }
  records.clear();
}

void Pipeline::RecordException(const MetricId& metric) {
  QuarantineRecord& record = quarantine_[metric];
  record.metric = metric;
  record.worst = std::max(record.worst, QualityVerdict::kCorrupt);
  ++record.exceptions;
}

QuarantineReport Pipeline::quarantine_report() const {
  // Snapshot the scan-side records, then fold in the database's ingest-time
  // rejects (duplicates / out-of-order points dropped before storage).
  std::map<MetricId, QuarantineRecord> merged = quarantine_;
  db_->ForEachIngestReject([&merged](const MetricId& id, uint64_t duplicate,
                                     uint64_t out_of_order) {
    QuarantineRecord& record = merged[id];
    record.metric = id;
    record.dropped_duplicate = duplicate;
    record.dropped_out_of_order = out_of_order;
  });
  QuarantineReport report;
  report.records.reserve(merged.size());
  for (const auto& [id, record] : merged) {
    report.records.push_back(record);
  }
  return report;
}

ThreadPool* Pipeline::FunnelPool() {
  return options_.scan_threads > 1 ? &pool_ : nullptr;
}

std::vector<Regression> Pipeline::RunAt(const std::string& service, TimePoint as_of) {
  std::vector<Regression> survivors = ScanAllMetrics(service, as_of);

  auto count_candidate_paths = [](const std::vector<FunnelCandidate>& candidates,
                                  uint64_t& short_count, uint64_t& long_count) {
    for (const FunnelCandidate& candidate : candidates) {
      if (candidate.regression.long_term) {
        ++long_count;
      } else {
        ++short_count;
      }
    }
  };

  // Stage: fingerprints — the text/shape artifacts every later stage reuses,
  // computed exactly once per survivor, in parallel into per-index slots.
  const FingerprintConfig fp_config{options_.som_dedup.fourier_coefficients,
                                    options_.som_dedup.root_cause_bitmap_dims,
                                    /*som_features=*/true};
  std::vector<FunnelCandidate> candidates(survivors.size());
  std::vector<uint8_t> fingerprint_failed(survivors.size(), 0);
  ParallelIndexFor(survivors.size(), FunnelPool(), [&](size_t i) {
    try {
      candidates[i].fingerprint = ComputeFingerprint(survivors[i], fp_config);
      candidates[i].regression = std::move(survivors[i]);
    } catch (...) {
      fingerprint_failed[i] = 1;  // Survivor left intact for accounting.
    }
  });
  if (std::find(fingerprint_failed.begin(), fingerprint_failed.end(), 1) !=
      fingerprint_failed.end()) {
    // Quarantine candidates whose fingerprinting threw; the rest keep their
    // original relative order.
    std::vector<FunnelCandidate> kept;
    kept.reserve(candidates.size());
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (fingerprint_failed[i] != 0) {
        RecordException(survivors[i].metric);
      } else {
        kept.push_back(std::move(candidates[i]));
      }
    }
    candidates = std::move(kept);
  }
  survivors.clear();

  // Stage: SameRegressionMerger (stateful and order-dependent: serial).
  std::vector<FunnelCandidate> fresh = merger_.Filter(std::move(candidates));
  count_candidate_paths(fresh, short_funnel_.after_same_merger, long_funnel_.after_same_merger);

  // Stage: SOMDedup — clusters metrics of the SAME type within this run's
  // analysis window (§5.5.1); cross-type merging is PairwiseDedup's job.
  // A single cohort parallelizes internally; multiple cohorts run
  // concurrently with serial internals (the pool is not reentrant). Either
  // way results land in kind-ascending slots, independent of scheduling.
  std::vector<FunnelCandidate> representatives;
  {
    std::map<MetricKind, std::vector<FunnelCandidate>> by_kind;
    for (FunnelCandidate& candidate : fresh) {
      by_kind[candidate.regression.metric.kind].push_back(std::move(candidate));
    }
    if (by_kind.size() <= 1) {
      for (auto& [kind, cohort] : by_kind) {
        representatives = som_dedup_.Deduplicate(std::move(cohort), FunnelPool());
      }
    } else {
      std::vector<std::vector<FunnelCandidate>*> cohorts;
      cohorts.reserve(by_kind.size());
      for (auto& [kind, cohort] : by_kind) {
        cohorts.push_back(&cohort);
      }
      std::vector<std::vector<FunnelCandidate>> cohort_reps(cohorts.size());
      ParallelIndexFor(cohorts.size(), FunnelPool(), [&](size_t i) {
        cohort_reps[i] = som_dedup_.Deduplicate(std::move(*cohorts[i]), nullptr);
      });
      for (std::vector<FunnelCandidate>& reps : cohort_reps) {
        representatives.insert(representatives.end(), std::make_move_iterator(reps.begin()),
                               std::make_move_iterator(reps.end()));
      }
    }
  }
  count_candidate_paths(representatives, short_funnel_.after_som_dedup,
                        long_funnel_.after_som_dedup);

  // Stage: cost-shift filtering — verdicts in parallel into per-index slots,
  // then a serial in-order sweep keeps the survivors.
  std::vector<FunnelCandidate> shift_free;
  if (options_.enable_cost_shift) {
    std::vector<uint8_t> is_shift(representatives.size(), 0);
    std::vector<uint8_t> shift_failed(representatives.size(), 0);
    ParallelIndexFor(representatives.size(), FunnelPool(), [&](size_t i) {
      try {
        is_shift[i] = cost_shift_.Evaluate(representatives[i].regression).is_cost_shift ? 1 : 0;
      } catch (...) {
        // A throwing detector must not abort the funnel; treat the candidate
        // as not-a-shift (it stays reportable) and account the exception.
        is_shift[i] = 0;
        shift_failed[i] = 1;
      }
    });
    shift_free.reserve(representatives.size());
    for (size_t i = 0; i < representatives.size(); ++i) {
      if (shift_failed[i] != 0) {
        RecordException(representatives[i].regression.metric);
      }
      if (is_shift[i] == 0) {
        shift_free.push_back(std::move(representatives[i]));
      }
    }
  } else {
    shift_free = std::move(representatives);
  }
  count_candidate_paths(shift_free, short_funnel_.after_cost_shift,
                        long_funnel_.after_cost_shift);

  // Stage: PairwiseDedup (per-candidate group scoring fans over the pool).
  const std::vector<int> new_groups = pairwise_.Ingest(std::move(shift_free), FunnelPool());

  // Stage: root-cause analysis on the new groups' representatives, analyzed
  // IN PLACE inside their groups (distinct groups, so the parallel writes
  // never alias) and copied once into the report.
  if (root_cause_ != nullptr) {
    std::vector<uint8_t> analyze_failed(new_groups.size(), 0);
    ParallelIndexFor(new_groups.size(), FunnelPool(), [&](size_t i) {
      try {
        root_cause_->Analyze(pairwise_.GroupRepresentative(new_groups[i]));
      } catch (...) {
        analyze_failed[i] = 1;  // Reported without root causes.
      }
    });
    for (size_t i = 0; i < new_groups.size(); ++i) {
      if (analyze_failed[i] != 0) {
        RecordException(pairwise_.GroupRepresentative(new_groups[i]).metric);
      }
    }
  }
  std::vector<Regression> reported;
  reported.reserve(new_groups.size());
  for (int group_id : new_groups) {
    reported.push_back(pairwise_.GroupRepresentative(group_id));
  }
  for (const Regression& regression : reported) {
    if (regression.long_term) {
      ++long_funnel_.after_pairwise;
    } else {
      ++short_funnel_.after_pairwise;
    }
  }
  return reported;
}

std::vector<Regression> Pipeline::RunPeriod(const std::string& service, TimePoint begin,
                                            TimePoint end) {
  std::vector<Regression> all_reports;
  const Duration interval = options_.detection.rerun_interval;
  FBD_CHECK(interval > 0);
  for (TimePoint as_of = begin + interval; as_of <= end; as_of += interval) {
    std::vector<Regression> reports = RunAt(service, as_of);
    all_reports.insert(all_reports.end(), std::make_move_iterator(reports.begin()),
                       std::make_move_iterator(reports.end()));
  }
  return all_reports;
}

}  // namespace fbdetect
