#include "src/core/pipeline.h"

#include <algorithm>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <utility>

#include "src/common/check.h"
#include "src/tsdb/window.h"

namespace fbdetect {

void FunnelStats::Accumulate(const FunnelStats& other) {
  change_points += other.change_points;
  after_went_away += other.after_went_away;
  after_seasonality += other.after_seasonality;
  after_threshold += other.after_threshold;
  after_same_merger += other.after_same_merger;
  after_som_dedup += other.after_som_dedup;
  after_cost_shift += other.after_cost_shift;
  after_pairwise += other.after_pairwise;
}

namespace {

Duration MergerTolerance(const PipelineOptions& options) {
  if (options.same_regression_tolerance > 0) {
    return options.same_regression_tolerance;
  }
  return options.detection.windows.analysis;
}

// Points per day at the metric's native resolution, for the went-away
// detector's previous-day percentile.
size_t PointsPerDay(std::span<const TimePoint> timestamps) {
  if (timestamps.size() < 2) {
    return 0;
  }
  const Duration dt = timestamps[1] - timestamps[0];
  if (dt <= 0) {
    return 0;
  }
  return static_cast<size_t>(kDay / dt);
}

// Canonical survivor order: MetricId's field-wise ordering, short-term before
// long-term within a metric. (metric, long_term) is unique — each path emits
// at most one candidate per metric — so the order is total and the sort is
// deterministic. The serial scan emits survivors in exactly this order
// (CachedMetrics is sorted with the same comparator; the short-term push
// precedes the long-term push in ScanMetric), which is what makes threaded
// and single-threaded runs byte-identical.
bool CanonicalSurvivorOrder(const Regression& a, const Regression& b) {
  if (a.metric != b.metric) {
    return a.metric < b.metric;
  }
  return a.long_term < b.long_term;
}

// Fig. 6 stage order for the per-run trace: scan sub-stages first (children
// of the "scan" span), then the funnel stages (children of the root). Must
// match StageWallHistograms below, index for index.
constexpr size_t kTraceStages = 11;
constexpr size_t kScanTraceStages = 5;  // First N entries are scan children.
constexpr const char* kTraceStageNames[kTraceStages] = {
    "change_point", "went_away",     "seasonality", "threshold",
    "long_term",    "fingerprint",   "same_regression_merger",
    "som_dedup",    "cost_shift",    "pairwise_dedup",
    "root_cause",
};

uint64_t HistogramSum(const Histogram* histogram) {
  return histogram != nullptr ? histogram->sum() : 0;
}

}  // namespace

Pipeline::Pipeline(const TimeSeriesDatabase* db, const ChangeLog* change_log,
                   const CodeInfoProvider* code_info, PipelineOptions options)
    : db_(db),
      change_log_(change_log),
      options_(std::move(options)),
      change_point_stage_(options_.detection),
      went_away_(options_.detection),
      seasonality_(options_.detection),
      long_term_(options_.detection),
      merger_(MergerTolerance(options_)),
      sanitizer_(options_.sanitizer),
      som_dedup_(options_.som_dedup),
      cost_shift_(db, options_.cost_shift),
      pairwise_(options_.pairwise_rule),
      pool_(static_cast<size_t>(std::max(1, options_.scan_threads) - 1)),
      worker_scratch_(static_cast<size_t>(std::max(1, options_.scan_threads))),
      worker_series_scratch_(static_cast<size_t>(std::max(1, options_.scan_threads))) {
  FBD_CHECK(db_ != nullptr);
  if (options_.scan_mode != ScanMode::kBatch) {
    detector_store_ = std::make_unique<DetectorStateStore>(
        options_.scan_mode == ScanMode::kStreaming
            ? DetectorStateStore::Mode::kStreaming
            : DetectorStateStore::Mode::kBatch,
        options_.streaming);
  }
  cost_shift_.AddDefaultDetectors(code_info, change_log_);
  if (change_log_ != nullptr) {
    RootCauseConfig rc = options_.root_cause;
    rc.lookback = options_.detection.root_cause_lookback;
    root_cause_ = std::make_unique<RootCauseAnalyzer>(change_log_, code_info, rc);
  }
  telemetry_.set_enabled(options_.telemetry.enabled);
  if (options_.telemetry.enabled) {
    RegisterInstruments();
    if (options_.telemetry.self_host_db != nullptr) {
      self_sink_ = std::make_unique<TelemetrySink>(
          options_.telemetry.self_host_db, options_.telemetry.self_host_service);
    }
  }
}

void Pipeline::RegisterInstruments() {
  obs_.enabled = true;
  auto counter = [this](const char* name) { return telemetry_.GetCounter(name); };
  auto runtime = [this](const char* name) {
    return telemetry_.GetCounter(name, CounterStability::kRuntime);
  };
  auto stage = [this](const char* name, bool orchestrator_cpu) {
    StageInstruments instruments;
    const std::string base = std::string("pipeline.stage.") + name;
    instruments.in = telemetry_.GetCounter(base + ".in");
    instruments.out = telemetry_.GetCounter(base + ".out");
    instruments.wall_ns = telemetry_.GetHistogram(base + ".wall_ns");
    if (orchestrator_cpu) {
      instruments.cpu_ns = telemetry_.GetHistogram(base + ".cpu_ns");
    }
    return instruments;
  };

  obs_.runs = counter("pipeline.runs");
  obs_.series_in = counter("pipeline.scan.series_in");
  obs_.series_no_data = counter("pipeline.scan.series_no_data");
  obs_.series_decode_failures = counter("pipeline.scan.series_decode_failures");
  obs_.windows_flagged = counter("pipeline.scan.windows_flagged");
  obs_.windows_quarantined = counter("pipeline.scan.windows_quarantined");
  obs_.sanitizer_verdict[0] = counter("pipeline.sanitizer.verdict_ok");
  obs_.sanitizer_verdict[1] = counter("pipeline.sanitizer.verdict_gappy");
  obs_.sanitizer_verdict[2] = counter("pipeline.sanitizer.verdict_flapping");
  obs_.sanitizer_verdict[3] = counter("pipeline.sanitizer.verdict_corrupt");
  obs_.detector_exceptions = counter("pipeline.scan.detector_exceptions");
  obs_.funnel_exceptions = counter("pipeline.funnel.exceptions");
  obs_.reported = counter("pipeline.reported");

  // Scan sub-stages run on pool workers: wall only (a per-thread CPU read is
  // a syscall, too hot for per-series sites). Funnel stages run on the
  // orchestrating thread between fan-outs: wall + that thread's CPU.
  obs_.change_point = stage("change_point", /*orchestrator_cpu=*/false);
  obs_.went_away = stage("went_away", false);
  obs_.seasonality = stage("seasonality", false);
  obs_.threshold = stage("threshold", false);
  obs_.long_term = stage("long_term", false);
  obs_.fingerprint = stage("fingerprint", true);
  obs_.same_merger = stage("same_regression_merger", true);
  obs_.som_dedup = stage("som_dedup", true);
  obs_.cost_shift = stage("cost_shift", true);
  obs_.pairwise = stage("pairwise_dedup", true);
  obs_.root_cause = stage("root_cause", true);

  obs_.scan_wall_ns = telemetry_.GetHistogram("pipeline.scan.wall_ns");
  obs_.run_wall_ns = telemetry_.GetHistogram("pipeline.run.wall_ns");

  obs_.pool_batches = runtime("pool.batches");
  obs_.pool_tasks = runtime("pool.tasks");
  obs_.pool_max_batch_tasks = runtime("pool.max_batch_tasks");
  obs_.pool_wall_ns = runtime("pool.wall_ns");

  obs_.tsdb_tail_hits = counter("tsdb.scan.tail_hits");
  obs_.tsdb_sealed_decodes = counter("tsdb.scan.sealed_decodes");
  obs_.tsdb_decode_failures = counter("tsdb.scan.decode_failures");
  obs_.tsdb_misses = counter("tsdb.scan.misses");
  obs_.tsdb_list_cache_hits = counter("tsdb.scan.list_cache_hits");
  obs_.tsdb_list_cache_misses = counter("tsdb.scan.list_cache_misses");
  obs_.tsdb_list_cache_shard_refreshes = counter(kCounterListCacheShardRefreshes);

  obs_.scan_dirty = counter(kCounterScanDirty);
  obs_.scan_clean = counter(kCounterScanClean);
  obs_.scan_cache_hit = counter(kCounterScanCacheHit);
  obs_.run_short_circuits = counter(kCounterRunShortCircuits);
  obs_.streaming_alerts = counter(kCounterStreamingAlerts);

  // Durable-tier mirrors only exist when the scanned database has the tier
  // on, so pipelines over RAM-only databases keep an unchanged instrument
  // set. All kRuntime: values depend on commit batching, memory budgets, and
  // crash/recovery history, none of which are part of the deterministic
  // contract.
  if (db_->durable_stats().enabled) {
    obs_.durable = true;
    obs_.durable_group_commits = runtime("tsdb.durable.group_commits");
    obs_.durable_checkpoint_rewrites = runtime("tsdb.durable.checkpoint_rewrites");
    obs_.durable_log_bytes = runtime("tsdb.durable.log_bytes");
    obs_.durable_chunk_file_bytes = runtime("tsdb.durable.chunk_file_bytes");
    obs_.durable_chunks_persisted = runtime("tsdb.durable.chunks_persisted");
    obs_.durable_chunks_evicted = runtime("tsdb.durable.chunks_evicted");
    obs_.durable_evicted_bytes = runtime("tsdb.durable.evicted_bytes");
    obs_.durable_mapped_readback_decodes =
        runtime("tsdb.durable.mapped_readback_decodes");
    obs_.durable_recoveries = runtime("tsdb.durable.recoveries");
    obs_.durable_recovered_points = runtime("tsdb.durable.recovered_points");
    obs_.durable_materialized_evictions =
        runtime("tsdb.durable.materialized_evictions");
    obs_.durable_io_errors = runtime("tsdb.durable.io_errors");
    obs_.durable_degraded = runtime("tsdb.durable.degraded");
    obs_.memory_resident_sealed_bytes =
        runtime("tsdb.memory.resident_sealed_bytes");
    obs_.memory_mapped_sealed_bytes = runtime("tsdb.memory.mapped_sealed_bytes");
    obs_.memory_materialized_bytes = runtime("tsdb.memory.materialized_bytes");
  }
}

void Pipeline::SyncTelemetry() {
  const TimeSeriesDatabase::ScanStats scan = db_->scan_stats();
  obs_.tsdb_tail_hits->Set(scan.tail_hits);
  obs_.tsdb_sealed_decodes->Set(scan.sealed_decodes);
  obs_.tsdb_decode_failures->Set(scan.decode_failures);
  obs_.tsdb_misses->Set(scan.misses);
  obs_.tsdb_list_cache_hits->Set(scan.list_cache_hits);
  obs_.tsdb_list_cache_misses->Set(scan.list_cache_misses);
  obs_.tsdb_list_cache_shard_refreshes->Set(scan.list_cache_shard_refreshes);
  if (detector_store_ != nullptr) {
    obs_.streaming_alerts->Set(detector_store_->alerts_raised());
  }
  const ThreadPool::Stats pool = pool_.stats();
  obs_.pool_batches->Set(pool.batches);
  obs_.pool_tasks->Set(pool.tasks);
  obs_.pool_max_batch_tasks->Set(pool.max_batch_tasks);
  obs_.pool_wall_ns->Set(pool.wall_ns);
  if (obs_.durable) {
    const TimeSeriesDatabase::DurableStats durable = db_->durable_stats();
    obs_.durable_group_commits->Set(durable.group_commits);
    obs_.durable_checkpoint_rewrites->Set(durable.checkpoint_rewrites);
    obs_.durable_log_bytes->Set(durable.log_bytes);
    obs_.durable_chunk_file_bytes->Set(durable.chunk_file_bytes);
    obs_.durable_chunks_persisted->Set(durable.chunks_persisted);
    obs_.durable_chunks_evicted->Set(durable.chunks_evicted);
    obs_.durable_evicted_bytes->Set(durable.evicted_bytes);
    obs_.durable_mapped_readback_decodes->Set(durable.mapped_readback_decodes);
    obs_.durable_recoveries->Set(durable.recoveries);
    obs_.durable_recovered_points->Set(durable.recovered_points);
    obs_.durable_materialized_evictions->Set(durable.materialized_evictions);
    obs_.durable_io_errors->Set(durable.io_errors);
    obs_.durable_degraded->Set(durable.degraded ? 1 : 0);
    const TimeSeriesDatabase::MemoryStats memory = db_->memory_stats();
    obs_.memory_resident_sealed_bytes->Set(memory.resident_sealed_bytes);
    obs_.memory_mapped_sealed_bytes->Set(memory.mapped_sealed_bytes);
    obs_.memory_materialized_bytes->Set(memory.materialized_bytes);
  }
}

void Pipeline::StageWallSums(uint64_t* sums) const {
  const Histogram* walls[kTraceStages] = {
      obs_.change_point.wall_ns, obs_.went_away.wall_ns, obs_.seasonality.wall_ns,
      obs_.threshold.wall_ns,    obs_.long_term.wall_ns, obs_.fingerprint.wall_ns,
      obs_.same_merger.wall_ns,  obs_.som_dedup.wall_ns, obs_.cost_shift.wall_ns,
      obs_.pairwise.wall_ns,     obs_.root_cause.wall_ns};
  for (size_t s = 0; s < kTraceStages; ++s) {
    sums[s] = HistogramSum(walls[s]);
  }
}

void Pipeline::EmitTrace(const std::string& service, const uint64_t* sums_before,
                         uint64_t scan_wall_before, uint64_t run_wall_ns) {
  if (options_.telemetry.max_traces == 0) {
    return;
  }
  uint64_t sums_after[kTraceStages];
  StageWallSums(sums_after);
  const uint64_t scan_wall_ns = HistogramSum(obs_.scan_wall_ns) - scan_wall_before;

  Trace trace;
  trace.trace_id = run_counter_;
  trace.endpoint = service;
  // Root: the whole re-run; self cost is the wall time not attributed to any
  // stage (orchestration, merging, sorting).
  Span root;
  root.id = 0;
  root.parent = kNoSpan;
  root.subroutine = "pipeline.run";
  // Scan: parent of the per-series sub-stages. Its self cost is the scan's
  // own wall time; children carry per-stage wall accumulated ACROSS workers,
  // so with scan_threads > 1 the children may sum to more than the parent
  // (concurrent spans, which the trace substrate models via async_).
  Span scan;
  scan.id = 1;
  scan.parent = 0;
  scan.subroutine = "pipeline.scan";
  scan.self_cost = static_cast<double>(scan_wall_ns) / 1e6;
  trace.spans.push_back(root);
  trace.spans.push_back(scan);
  uint64_t stage_total_ns = 0;
  for (size_t s = 0; s < kTraceStages; ++s) {
    const bool scan_child = s < kScanTraceStages;
    Span span;
    span.id = static_cast<SpanId>(trace.spans.size());
    span.parent = scan_child ? 1 : 0;
    span.thread = 0;
    span.subroutine = std::string("pipeline.stage.") + kTraceStageNames[s];
    span.self_cost = static_cast<double>(sums_after[s] - sums_before[s]) / 1e6;
    span.async_ = scan_child && options_.scan_threads > 1;
    if (!scan_child) {
      stage_total_ns += sums_after[s] - sums_before[s];
    }
    trace.spans.push_back(std::move(span));
  }
  const uint64_t attributed_ns = scan_wall_ns + stage_total_ns;
  trace.spans[0].self_cost =
      run_wall_ns > attributed_ns
          ? static_cast<double>(run_wall_ns - attributed_ns) / 1e6
          : 0.0;
  run_traces_.push_back(std::move(trace));
  while (run_traces_.size() > options_.telemetry.max_traces) {
    run_traces_.erase(run_traces_.begin());
  }
}

void Pipeline::set_stack_overlap(StackOverlapFn overlap) {
  pairwise_ = PairwiseDedup(options_.pairwise_rule, std::move(overlap));
}

void Pipeline::ScanMetric(const MetricId& id, TimePoint as_of,
                          std::vector<Regression>& survivors, FunnelStats& short_funnel,
                          FunnelStats& long_funnel, std::vector<double>& scratch,
                          TimeSeries& series_scratch,
                          std::vector<QuarantineRecord>& quarantine) const {
  if (obs_.enabled) {
    obs_.series_in->Increment();
  }
  if (detector_store_ == nullptr) {
    // Batch mode: the oracle. Every series re-evaluates every run.
    SeriesScanEvents events;
    EvaluateSeries(id, as_of, survivors, short_funnel, long_funnel, scratch,
                   series_scratch, quarantine, events);
    ApplyScanEvents(events);
    return;
  }
  // Gated/streaming mode: replay the cached verdict while the series' TSDB
  // version is unchanged; re-evaluate (and refill the cache) when it moved.
  // The scan visits each series exactly once per run, so the verdict slot is
  // accessed exclusively here even with scan_threads > 1.
  const std::optional<InternedMetricId> interned = db_->TryIntern(id);
  if (!interned) {
    // Ids come from CachedMetrics, so their symbols exist; only reachable if
    // the series vanished since the listing. Evaluate uncached.
    SeriesScanEvents events;
    EvaluateSeries(id, as_of, survivors, short_funnel, long_funnel, scratch,
                   series_scratch, quarantine, events);
    ApplyScanEvents(events);
    return;
  }
  const uint64_t version = db_->SeriesVersion(*interned);
  SeriesVerdict& verdict = detector_store_->StateFor(*interned).verdict();
  if (verdict.valid && verdict.version == version) {
    if (obs_.enabled) {
      obs_.scan_clean->Increment();
      obs_.scan_cache_hit->Increment();
    }
    ApplyScanEvents(verdict.events);
    survivors.insert(survivors.end(), verdict.survivors.begin(),
                     verdict.survivors.end());
    short_funnel.Accumulate(verdict.short_delta);
    long_funnel.Accumulate(verdict.long_delta);
    quarantine.insert(quarantine.end(), verdict.quarantine.begin(),
                      verdict.quarantine.end());
    return;
  }
  if (obs_.enabled) {
    obs_.scan_dirty->Increment();
  }
  verdict.valid = false;
  verdict.survivors.clear();
  verdict.quarantine.clear();
  verdict.short_delta = FunnelStats{};
  verdict.long_delta = FunnelStats{};
  verdict.events = SeriesScanEvents{};
  const size_t first_survivor = survivors.size();
  const size_t first_quarantine = quarantine.size();
  EvaluateSeries(id, as_of, survivors, verdict.short_delta, verdict.long_delta,
                 scratch, series_scratch, quarantine, verdict.events);
  ApplyScanEvents(verdict.events);
  short_funnel.Accumulate(verdict.short_delta);
  long_funnel.Accumulate(verdict.long_delta);
  verdict.survivors.assign(survivors.begin() + static_cast<ptrdiff_t>(first_survivor),
                           survivors.end());
  verdict.quarantine.assign(
      quarantine.begin() + static_cast<ptrdiff_t>(first_quarantine), quarantine.end());
  verdict.version = version;
  verdict.as_of = as_of;
  verdict.valid = true;
}

void Pipeline::ApplyScanEvents(const SeriesScanEvents& events) const {
  if (!obs_.enabled) {
    return;
  }
  obs_.series_no_data->Add(events.series_no_data);
  obs_.series_decode_failures->Add(events.decode_failures);
  obs_.windows_flagged->Add(events.windows_flagged);
  obs_.windows_quarantined->Add(events.windows_quarantined);
  if (events.sanitizer_verdict >= 0) {
    obs_.sanitizer_verdict[static_cast<size_t>(events.sanitizer_verdict)]->Increment();
  }
  obs_.detector_exceptions->Add(events.detector_exceptions);
  obs_.change_point.in->Add(events.change_point_in);
  obs_.change_point.out->Add(events.change_point_out);
  obs_.went_away.in->Add(events.went_away_in);
  obs_.went_away.out->Add(events.went_away_out);
  obs_.seasonality.in->Add(events.seasonality_in);
  obs_.seasonality.out->Add(events.seasonality_out);
  obs_.threshold.in->Add(events.threshold_in);
  obs_.threshold.out->Add(events.threshold_out);
  obs_.long_term.in->Add(events.long_term_in);
  obs_.long_term.out->Add(events.long_term_out);
}

void Pipeline::EvaluateSeries(const MetricId& id, TimePoint as_of,
                              std::vector<Regression>& survivors,
                              FunnelStats& short_funnel, FunnelStats& long_funnel,
                              std::vector<double>& scratch, TimeSeries& series_scratch,
                              std::vector<QuarantineRecord>& quarantine,
                              SeriesScanEvents& events) const {
  // Points before the detection windows are irrelevant, so the lookup only
  // needs [as_of - total, inf): when those live in the raw tail this is the
  // PR 1 zero-copy path; otherwise sealed chunks decode into the worker's
  // scratch buffer.
  const TimePoint scan_begin = as_of - options_.detection.windows.Total();
  Status scan_status;
  const TimeSeries* series = db_->SeriesForScan(id, scan_begin, series_scratch, &scan_status);
  if (series == nullptr) {
    if (!scan_status.ok()) {
      // Corrupt sealed storage: quarantine the series for this window
      // instead of letting the decode abort the re-run.
      ++events.decode_failures;
      QuarantineRecord record;
      record.metric = id;
      record.worst = QualityVerdict::kCorrupt;
      record.windows_flagged = 1;
      record.windows_quarantined = 1;
      record.decode_failures = 1;
      record.last_error = scan_status.message();
      quarantine.push_back(std::move(record));
    } else {
      ++events.series_no_data;
    }
    return;
  }
  // Zero-copy windows + one orientation pass shared by both paths. For
  // higher-is-worse kinds the view aliases the series' storage directly.
  const WindowView windows = ExtractWindowView(*series, as_of, options_.detection.windows);

  // Data-quality gate: classify the window before any detector touches it.
  // A quarantined window is skipped for this re-run only — the series stays
  // in the database and is re-inspected at the next re-run.
  const WindowQuality quality =
      sanitizer_.Inspect(id.kind, windows, options_.detection.windows);
  const bool quarantined = sanitizer_.ShouldQuarantine(quality.verdict);
  if (quality.observed) {
    events.sanitizer_verdict = static_cast<int8_t>(quality.verdict);
  }
  if (quality.observed &&
      (quality.verdict != QualityVerdict::kOk || quality.missing > 0 || quality.skew > 0)) {
    ++events.windows_flagged;
    QuarantineRecord record;
    record.metric = id;
    record.worst = quality.verdict;
    record.windows_flagged = 1;
    record.windows_quarantined = quarantined ? 1 : 0;
    record.non_finite = quality.non_finite;
    record.negative = quality.negative;
    record.missing = quality.missing;
    record.flap_windows = (quality.late_start || quality.early_end) ? 1 : 0;
    record.max_skew = quality.skew;
    quarantine.push_back(std::move(record));
  }
  if (quarantined) {
    ++events.windows_quarantined;
    return;
  }

  const double sign = LowerIsRegression(id.kind) ? -1.0 : 1.0;
  const ScanView view = OrientWindows(windows, sign, scratch);

  // Detector exceptions are isolated to the series: one throwing detector
  // quarantines this metric for this re-run instead of unwinding through the
  // worker (ThreadPool would rethrow at join and abort the whole scan).
  try {
    // ---- Short-term path ----
    ++events.change_point_in;
    std::optional<ScanCandidate> candidate;
    {
      StageTimer timer(Timed(obs_.change_point.wall_ns));
      candidate = change_point_stage_.DetectCandidate(view);
    }
    if (candidate) {
      ++short_funnel.change_points;
      ++events.change_point_out;
      ++events.went_away_in;
      const size_t points_per_day = PointsPerDay(view.analysis_timestamps);
      WentAwayVerdict went_away;
      {
        StageTimer timer(Timed(obs_.went_away.wall_ns));
        went_away = went_away_.Evaluate(view, *candidate, points_per_day);
      }
      if (went_away.keep) {
        ++short_funnel.after_went_away;
        ++events.went_away_out;
        ++events.seasonality_in;
        SeasonalityVerdict seasonal;
        {
          StageTimer timer(Timed(obs_.seasonality.wall_ns));
          seasonal = seasonality_.Evaluate(view, *candidate);
        }
        if (!seasonal.seasonal_filtered) {
          ++short_funnel.after_seasonality;
          ++events.seasonality_out;
          ++events.threshold_in;
          bool passes;
          {
            StageTimer timer(Timed(obs_.threshold.wall_ns));
            passes = PassesThreshold(*candidate, options_.detection);
          }
          if (passes) {
            ++short_funnel.after_threshold;
            ++events.threshold_out;
            // First (and only) copy of window data on this path: the survivor.
            Regression regression = MaterializeRegression(id, view, *candidate);
            if (root_cause_ != nullptr) {
              regression.candidate_root_causes = root_cause_->QuickCandidates(regression);
            }
            survivors.push_back(std::move(regression));
          }
        }
      }
    }

    // ---- Long-term path ----
    if (options_.detection.enable_long_term) {
      ++events.long_term_in;
      std::optional<Regression> long_candidate;
      {
        StageTimer timer(Timed(obs_.long_term.wall_ns));
        long_candidate = long_term_.Detect(id, view);
      }
      if (long_candidate) {
        ++long_funnel.change_points;
        // The long-term detector applies the threshold internally; recheck for
        // the funnel row (Table 3 shows ~1/1.03 here).
        if (PassesThreshold(*long_candidate, options_.detection)) {
          ++long_funnel.after_threshold;
          // `out` counts post-threshold survivors, so stage.fingerprint.in ==
          // stage.threshold.out + stage.long_term.out reconciles exactly.
          ++events.long_term_out;
          if (root_cause_ != nullptr) {
            long_candidate->candidate_root_causes = root_cause_->QuickCandidates(*long_candidate);
          }
          survivors.push_back(std::move(*long_candidate));
        }
      }
    }
  } catch (const std::exception& e) {
    ++events.detector_exceptions;
    QuarantineDetectorException(id, e.what(), quarantine);
  } catch (...) {
    ++events.detector_exceptions;
    QuarantineDetectorException(id, "unknown exception", quarantine);
  }
}

// Counted by the caller (SeriesScanEvents::detector_exceptions), so a cached
// verdict replays the count exactly; this only builds the record.
void Pipeline::QuarantineDetectorException(const MetricId& id, const char* what,
                                           std::vector<QuarantineRecord>& quarantine) const {
  QuarantineRecord record;
  record.metric = id;
  record.worst = QualityVerdict::kCorrupt;
  record.windows_flagged = 1;
  record.windows_quarantined = 1;
  record.exceptions = 1;
  record.last_error = what;
  quarantine.push_back(std::move(record));
}

const std::vector<MetricId>& Pipeline::CachedMetrics(const std::string& service) {
  const uint64_t generation = db_->generation();
  if (!cache_valid_ || cached_service_ != service || cached_generation_ != generation) {
    cached_ids_ = db_->ListMetrics(service);
    cached_service_ = service;
    cached_generation_ = generation;
    cache_valid_ = true;
  }
  return cached_ids_;
}

std::vector<Regression> Pipeline::ScanAllMetrics(const std::string& service, TimePoint as_of) {
  const std::vector<MetricId>& ids = CachedMetrics(service);
  const int threads = std::max(1, options_.scan_threads);
  if (threads == 1 || ids.size() < 2) {
    std::vector<Regression> survivors;
    std::vector<QuarantineRecord> quarantine;
    for (const MetricId& id : ids) {
      ScanMetric(id, as_of, survivors, short_funnel_, long_funnel_, worker_scratch_[0],
                 worker_series_scratch_[0], quarantine);
    }
    MergeQuarantine(quarantine);
    return survivors;
  }
  // Static partition by stride; each worker keeps private survivors, funnel
  // counters, and quarantine records, merged afterwards in canonical order
  // (record merging is commutative) for determinism.
  const size_t num_workers = std::min<size_t>(static_cast<size_t>(threads), ids.size());
  std::vector<std::vector<Regression>> worker_survivors(num_workers);
  std::vector<FunnelStats> worker_short(num_workers);
  std::vector<FunnelStats> worker_long(num_workers);
  std::vector<std::vector<QuarantineRecord>> worker_quarantine(num_workers);
  pool_.ParallelFor(num_workers, [&](size_t w) {
    for (size_t i = w; i < ids.size(); i += num_workers) {
      ScanMetric(ids[i], as_of, worker_survivors[w], worker_short[w], worker_long[w],
                 worker_scratch_[w], worker_series_scratch_[w], worker_quarantine[w]);
    }
  });
  std::vector<Regression> survivors;
  for (size_t w = 0; w < num_workers; ++w) {
    short_funnel_.Accumulate(worker_short[w]);
    long_funnel_.Accumulate(worker_long[w]);
    MergeQuarantine(worker_quarantine[w]);
    survivors.insert(survivors.end(), std::make_move_iterator(worker_survivors[w].begin()),
                     std::make_move_iterator(worker_survivors[w].end()));
  }
  std::sort(survivors.begin(), survivors.end(), CanonicalSurvivorOrder);
  return survivors;
}

void Pipeline::MergeQuarantine(std::vector<QuarantineRecord>& records) {
  for (QuarantineRecord& record : records) {
    QuarantineRecord& merged = quarantine_[record.metric];
    merged.metric = record.metric;
    merged.Merge(record);
  }
  records.clear();
}

void Pipeline::RecordException(const MetricId& metric, std::string message) {
  if (obs_.enabled) {
    obs_.funnel_exceptions->Increment();
  }
  QuarantineRecord& record = quarantine_[metric];
  record.metric = metric;
  record.worst = std::max(record.worst, QualityVerdict::kCorrupt);
  ++record.exceptions;
  if (record.last_error.empty() && !message.empty()) {
    record.last_error = std::move(message);
  }
}

QuarantineReport Pipeline::quarantine_report() const {
  // Snapshot the scan-side records, then fold in the database's ingest-time
  // rejects (duplicates / out-of-order points dropped before storage).
  std::map<MetricId, QuarantineRecord> merged = quarantine_;
  db_->ForEachIngestReject([&merged](const MetricId& id, uint64_t duplicate,
                                     uint64_t out_of_order) {
    QuarantineRecord& record = merged[id];
    record.metric = id;
    record.dropped_duplicate = duplicate;
    record.dropped_out_of_order = out_of_order;
  });
  QuarantineReport report;
  report.records.reserve(merged.size());
  for (const auto& [id, record] : merged) {
    report.records.push_back(record);
  }
  return report;
}

ThreadPool* Pipeline::FunnelPool() {
  return options_.scan_threads > 1 ? &pool_ : nullptr;
}

std::vector<Regression> Pipeline::RunAt(const std::string& service, TimePoint as_of) {
  const uint64_t generation = db_->generation();
  if (detector_store_ != nullptr && last_run_valid_ && last_run_service_ == service &&
      last_run_generation_ == generation) {
    // Nothing was ingested, sealed, or expired since the last run of this
    // service: every verdict would replay and no new group could open. Skip
    // the scan and the funnel wholesale; previously reported groups remain
    // available via groups(). Every series counts as clean (series_in is
    // untouched — no scan happened).
    if (obs_.enabled) {
      obs_.runs->Increment();
      obs_.run_short_circuits->Increment();
      obs_.scan_clean->Add(CachedMetrics(service).size());
      SyncTelemetry();
      if (self_sink_ != nullptr) {
        self_sink_->Persist(telemetry_, as_of);
      }
    }
    return {};
  }
  // Telemetry bookkeeping for this run: wall-clock start plus the stage
  // histograms' accumulated sums, whose deltas become the trace's stage
  // spans. All zero-cost when telemetry is off.
  const uint64_t run_start_wall = obs_.enabled ? StageTimer::WallNowNanos() : 0;
  uint64_t stage_sums_before[kTraceStages] = {};
  uint64_t scan_wall_before = 0;
  if (obs_.enabled) {
    obs_.runs->Increment();
    StageWallSums(stage_sums_before);
    scan_wall_before = HistogramSum(obs_.scan_wall_ns);
  }

  std::vector<Regression> survivors;
  {
    StageTimer timer(Timed(obs_.scan_wall_ns));
    survivors = ScanAllMetrics(service, as_of);
  }

  auto count_candidate_paths = [](const std::vector<FunnelCandidate>& candidates,
                                  uint64_t& short_count, uint64_t& long_count) {
    for (const FunnelCandidate& candidate : candidates) {
      if (candidate.regression.long_term) {
        ++long_count;
      } else {
        ++short_count;
      }
    }
  };

  // Stage: fingerprints — the text/shape artifacts every later stage reuses,
  // computed exactly once per survivor, in parallel into per-index slots.
  const FingerprintConfig fp_config{options_.som_dedup.fourier_coefficients,
                                    options_.som_dedup.root_cause_bitmap_dims,
                                    /*som_features=*/true};
  if (obs_.enabled) {
    obs_.fingerprint.in->Add(survivors.size());
  }
  std::vector<FunnelCandidate> candidates(survivors.size());
  std::vector<uint8_t> fingerprint_failed(survivors.size(), 0);
  std::vector<std::string> fingerprint_errors(survivors.size());
  {
    StageTimer timer(Timed(obs_.fingerprint.wall_ns), Timed(obs_.fingerprint.cpu_ns));
    ParallelIndexFor(survivors.size(), FunnelPool(), [&](size_t i) {
      try {
        candidates[i].fingerprint = ComputeFingerprint(survivors[i], fp_config);
        candidates[i].regression = std::move(survivors[i]);
      } catch (const std::exception& e) {
        fingerprint_failed[i] = 1;  // Survivor left intact for accounting.
        fingerprint_errors[i] = e.what();
      } catch (...) {
        fingerprint_failed[i] = 1;
        fingerprint_errors[i] = "unknown exception";
      }
    });
  }
  if (std::find(fingerprint_failed.begin(), fingerprint_failed.end(), 1) !=
      fingerprint_failed.end()) {
    // Quarantine candidates whose fingerprinting threw; the rest keep their
    // original relative order.
    std::vector<FunnelCandidate> kept;
    kept.reserve(candidates.size());
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (fingerprint_failed[i] != 0) {
        RecordException(survivors[i].metric, std::move(fingerprint_errors[i]));
      } else {
        kept.push_back(std::move(candidates[i]));
      }
    }
    candidates = std::move(kept);
  }
  survivors.clear();
  if (obs_.enabled) {
    obs_.fingerprint.out->Add(candidates.size());
    obs_.same_merger.in->Add(candidates.size());
  }

  // Stage: SameRegressionMerger (stateful and order-dependent: serial).
  std::vector<FunnelCandidate> fresh;
  {
    StageTimer timer(Timed(obs_.same_merger.wall_ns), Timed(obs_.same_merger.cpu_ns));
    fresh = merger_.Filter(std::move(candidates));
  }
  if (obs_.enabled) {
    obs_.same_merger.out->Add(fresh.size());
    obs_.som_dedup.in->Add(fresh.size());
  }
  count_candidate_paths(fresh, short_funnel_.after_same_merger, long_funnel_.after_same_merger);

  // Stage: SOMDedup — clusters metrics of the SAME type within this run's
  // analysis window (§5.5.1); cross-type merging is PairwiseDedup's job.
  // A single cohort parallelizes internally; multiple cohorts run
  // concurrently with serial internals (the pool is not reentrant). Either
  // way results land in kind-ascending slots, independent of scheduling.
  std::vector<FunnelCandidate> representatives;
  {
    StageTimer timer(Timed(obs_.som_dedup.wall_ns), Timed(obs_.som_dedup.cpu_ns));
    std::map<MetricKind, std::vector<FunnelCandidate>> by_kind;
    for (FunnelCandidate& candidate : fresh) {
      by_kind[candidate.regression.metric.kind].push_back(std::move(candidate));
    }
    if (by_kind.size() <= 1) {
      for (auto& [kind, cohort] : by_kind) {
        representatives = som_dedup_.Deduplicate(std::move(cohort), FunnelPool());
      }
    } else {
      std::vector<std::vector<FunnelCandidate>*> cohorts;
      cohorts.reserve(by_kind.size());
      for (auto& [kind, cohort] : by_kind) {
        cohorts.push_back(&cohort);
      }
      std::vector<std::vector<FunnelCandidate>> cohort_reps(cohorts.size());
      ParallelIndexFor(cohorts.size(), FunnelPool(), [&](size_t i) {
        cohort_reps[i] = som_dedup_.Deduplicate(std::move(*cohorts[i]), nullptr);
      });
      for (std::vector<FunnelCandidate>& reps : cohort_reps) {
        representatives.insert(representatives.end(), std::make_move_iterator(reps.begin()),
                               std::make_move_iterator(reps.end()));
      }
    }
  }
  count_candidate_paths(representatives, short_funnel_.after_som_dedup,
                        long_funnel_.after_som_dedup);
  if (obs_.enabled) {
    obs_.som_dedup.out->Add(representatives.size());
  }

  // Stage: cost-shift filtering — verdicts in parallel into per-index slots,
  // then a serial in-order sweep keeps the survivors.
  std::vector<FunnelCandidate> shift_free;
  if (options_.enable_cost_shift) {
    if (obs_.enabled) {
      obs_.cost_shift.in->Add(representatives.size());
    }
    StageTimer timer(Timed(obs_.cost_shift.wall_ns), Timed(obs_.cost_shift.cpu_ns));
    std::vector<uint8_t> is_shift(representatives.size(), 0);
    std::vector<uint8_t> shift_failed(representatives.size(), 0);
    std::vector<std::string> shift_errors(representatives.size());
    ParallelIndexFor(representatives.size(), FunnelPool(), [&](size_t i) {
      try {
        is_shift[i] = cost_shift_.Evaluate(representatives[i].regression).is_cost_shift ? 1 : 0;
      } catch (const std::exception& e) {
        // A throwing detector must not abort the funnel; treat the candidate
        // as not-a-shift (it stays reportable) and account the exception.
        is_shift[i] = 0;
        shift_failed[i] = 1;
        shift_errors[i] = e.what();
      } catch (...) {
        is_shift[i] = 0;
        shift_failed[i] = 1;
        shift_errors[i] = "unknown exception";
      }
    });
    shift_free.reserve(representatives.size());
    for (size_t i = 0; i < representatives.size(); ++i) {
      if (shift_failed[i] != 0) {
        RecordException(representatives[i].regression.metric, std::move(shift_errors[i]));
      }
      if (is_shift[i] == 0) {
        shift_free.push_back(std::move(representatives[i]));
      }
    }
    if (obs_.enabled) {
      obs_.cost_shift.out->Add(shift_free.size());
    }
  } else {
    shift_free = std::move(representatives);
  }
  count_candidate_paths(shift_free, short_funnel_.after_cost_shift,
                        long_funnel_.after_cost_shift);

  // Stage: PairwiseDedup (per-candidate group scoring fans over the pool).
  if (obs_.enabled) {
    obs_.pairwise.in->Add(shift_free.size());
  }
  std::vector<int> new_groups;
  {
    StageTimer timer(Timed(obs_.pairwise.wall_ns), Timed(obs_.pairwise.cpu_ns));
    new_groups = pairwise_.Ingest(std::move(shift_free), FunnelPool());
  }
  if (obs_.enabled) {
    obs_.pairwise.out->Add(new_groups.size());
  }

  // Stage: root-cause analysis on the new groups' representatives, analyzed
  // IN PLACE inside their groups (distinct groups, so the parallel writes
  // never alias) and copied once into the report.
  if (root_cause_ != nullptr) {
    if (obs_.enabled) {
      obs_.root_cause.in->Add(new_groups.size());
    }
    StageTimer timer(Timed(obs_.root_cause.wall_ns), Timed(obs_.root_cause.cpu_ns));
    std::vector<uint8_t> analyze_failed(new_groups.size(), 0);
    std::vector<std::string> analyze_errors(new_groups.size());
    ParallelIndexFor(new_groups.size(), FunnelPool(), [&](size_t i) {
      try {
        root_cause_->Analyze(pairwise_.GroupRepresentative(new_groups[i]));
      } catch (const std::exception& e) {
        analyze_failed[i] = 1;  // Reported without root causes.
        analyze_errors[i] = e.what();
      } catch (...) {
        analyze_failed[i] = 1;
        analyze_errors[i] = "unknown exception";
      }
    });
    uint64_t analyzed = 0;
    for (size_t i = 0; i < new_groups.size(); ++i) {
      if (analyze_failed[i] != 0) {
        RecordException(pairwise_.GroupRepresentative(new_groups[i]).metric,
                        std::move(analyze_errors[i]));
      } else {
        ++analyzed;
      }
    }
    if (obs_.enabled) {
      obs_.root_cause.out->Add(analyzed);
    }
  }
  std::vector<Regression> reported;
  reported.reserve(new_groups.size());
  for (int group_id : new_groups) {
    reported.push_back(pairwise_.GroupRepresentative(group_id));
  }
  for (const Regression& regression : reported) {
    if (regression.long_term) {
      ++long_funnel_.after_pairwise;
    } else {
      ++short_funnel_.after_pairwise;
    }
  }

  if (obs_.enabled) {
    obs_.reported->Add(reported.size());
    SyncTelemetry();
    const uint64_t run_wall_ns = StageTimer::WallNowNanos() - run_start_wall;
    obs_.run_wall_ns->Record(run_wall_ns);
    ++run_counter_;
    EmitTrace(service, stage_sums_before, scan_wall_before, run_wall_ns);
    if (self_sink_ != nullptr) {
      // Self-hosting: persist this run's registry snapshot as ordinary series
      // (DESIGN.md §15). Runs after the scan's readers are done, so the sink
      // may target the scanned database itself; the resulting generation bump
      // correctly disarms the short-circuit when it does.
      self_sink_->Persist(telemetry_, as_of);
    }
  }
  // Arm the next run's short-circuit with the generation observed before the
  // scan (writers never run concurrently with a scan, so it is also the
  // generation after).
  last_run_service_ = service;
  last_run_generation_ = generation;
  last_run_valid_ = true;
  return reported;
}

std::vector<Regression> Pipeline::RunPeriod(const std::string& service, TimePoint begin,
                                            TimePoint end) {
  std::vector<Regression> all_reports;
  const Duration interval = options_.detection.rerun_interval;
  FBD_CHECK(interval > 0);
  for (TimePoint as_of = begin + interval; as_of <= end; as_of += interval) {
    std::vector<Regression> reports = RunAt(service, as_of);
    all_reports.insert(all_reports.end(), std::make_move_iterator(reports.begin()),
                       std::make_move_iterator(reports.end()));
  }
  return all_reports;
}

}  // namespace fbdetect
