#include "src/core/som_dedup.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "src/common/check.h"
#include "src/stats/text.h"

namespace fbdetect {
namespace {

// Z-score normalization per dimension (constant dimensions collapse to 0).
// Same summation order as the historical nested-vector version.
void NormalizeColumns(FlatMatrix& rows) {
  if (rows.rows == 0) {
    return;
  }
  for (size_t d = 0; d < rows.cols; ++d) {
    double mean = 0.0;
    for (size_t r = 0; r < rows.rows; ++r) {
      mean += rows.row(r)[d];
    }
    mean /= static_cast<double>(rows.rows);
    double var = 0.0;
    for (size_t r = 0; r < rows.rows; ++r) {
      const double diff = rows.row(r)[d] - mean;
      var += diff * diff;
    }
    var /= static_cast<double>(rows.rows);
    const double sd = std::sqrt(var);
    for (size_t r = 0; r < rows.rows; ++r) {
      double& value = rows.mutable_row(r)[d];
      value = sd > 0.0 ? (value - mean) / sd : 0.0;
    }
  }
}

}  // namespace

double SomDedup::ImportanceScore(const Regression& regression, double max_abs_delta,
                                 double max_rel_delta) const {
  const double relative =
      max_rel_delta > 0.0 ? std::fabs(regression.relative_delta) / max_rel_delta : 0.0;
  const double absolute = max_abs_delta > 0.0 ? std::fabs(regression.delta) / max_abs_delta : 0.0;
  // PopularityScore: probability of the regressed subroutine appearing in a
  // random stack-trace sample. For gCPU metrics the baseline mean IS that
  // probability; for other metrics use a neutral 0.5.
  const double popularity = regression.metric.kind == MetricKind::kGcpu
                                ? std::clamp(regression.baseline_mean, 0.0, 1.0)
                                : 0.5;
  const double has_root_cause = regression.candidate_root_causes.empty() ? 0.0 : 1.0;
  return config_.w_relative * relative + config_.w_absolute * absolute +
         config_.w_popularity * (1.0 - popularity) + config_.w_root_cause * has_root_cause;
}

std::vector<Regression> SomDedup::Deduplicate(std::vector<Regression> regressions) const {
  const FingerprintConfig fp_config{config_.fourier_coefficients, config_.root_cause_bitmap_dims,
                                    /*som_features=*/true};
  std::vector<FunnelCandidate> candidates(regressions.size());
  for (size_t i = 0; i < regressions.size(); ++i) {
    candidates[i].fingerprint = ComputeFingerprint(regressions[i], fp_config);
    candidates[i].regression = std::move(regressions[i]);
  }
  std::vector<FunnelCandidate> representatives = Deduplicate(std::move(candidates), nullptr);
  std::vector<Regression> out;
  out.reserve(representatives.size());
  for (FunnelCandidate& representative : representatives) {
    out.push_back(std::move(representative.regression));
  }
  return out;
}

std::vector<FunnelCandidate> SomDedup::Deduplicate(std::vector<FunnelCandidate> candidates,
                                                   ThreadPool* pool) const {
  if (candidates.size() <= 1) {
    for (FunnelCandidate& candidate : candidates) {
      candidate.regression.som_cluster = 0;
      candidate.regression.importance =
          ImportanceScore(candidate.regression, std::fabs(candidate.regression.delta),
                          std::fabs(candidate.regression.relative_delta));
    }
    return candidates;
  }

  // Fit the metric-ID TF-IDF model on this cohort's cached gram sets — the
  // metric strings are never re-tokenized here.
  std::vector<const HashedGrams*> corpus;
  corpus.reserve(candidates.size());
  for (const FunnelCandidate& candidate : candidates) {
    corpus.push_back(&candidate.fingerprint.grams);
  }
  TfIdfHasher hasher(config_.metric_id_dims);
  hasher.FitHashed(corpus);

  // Assemble the flat feature matrix: cached shape block + cohort-fitted
  // metric embedding, one row per candidate, filled in parallel.
  const size_t base_dims = candidates[0].fingerprint.som_base.size();
  FBD_CHECK(base_dims > 0);  // Fingerprints must carry som_features.
  FlatMatrix features;
  features.Resize(candidates.size(), base_dims + config_.metric_id_dims);
  ParallelIndexFor(candidates.size(), pool, [&](size_t i) {
    const RegressionFingerprint& fingerprint = candidates[i].fingerprint;
    FBD_CHECK(fingerprint.som_base.size() == base_dims);
    const std::span<double> row = features.mutable_row(i);
    std::copy(fingerprint.som_base.begin(), fingerprint.som_base.end(), row.begin());
    hasher.EmbedHashed(fingerprint.grams, row.subspan(base_dims));
  });
  NormalizeColumns(features);

  const int grid = SomGridSize(candidates.size());
  SelfOrganizingMap som(features.cols, grid, config_.training.seed);
  som.Train(features, config_.training, pool);
  std::vector<int> assignment(candidates.size());
  som.Assign(features, assignment, pool);

  // Cohort normalization bounds for ImportanceScore.
  double max_abs = 0.0;
  double max_rel = 0.0;
  for (const FunnelCandidate& candidate : candidates) {
    max_abs = std::max(max_abs, std::fabs(candidate.regression.delta));
    max_rel = std::max(max_rel, std::fabs(candidate.regression.relative_delta));
  }

  // Pick the max-importance member per cluster (ties break on the cached
  // metric string).
  std::vector<int> best_index(static_cast<size_t>(grid) * static_cast<size_t>(grid), -1);
  std::vector<size_t> cluster_sizes(best_index.size(), 0);
  for (size_t i = 0; i < candidates.size(); ++i) {
    Regression& regression = candidates[i].regression;
    regression.som_cluster = assignment[i];
    regression.importance = ImportanceScore(regression, max_abs, max_rel);
    const size_t cell = static_cast<size_t>(assignment[i]);
    ++cluster_sizes[cell];
    if (best_index[cell] < 0) {
      best_index[cell] = static_cast<int>(i);
      continue;
    }
    const FunnelCandidate& incumbent = candidates[static_cast<size_t>(best_index[cell])];
    const FunnelCandidate& challenger = candidates[i];
    const bool better =
        challenger.regression.importance > incumbent.regression.importance ||
        (challenger.regression.importance == incumbent.regression.importance &&
         challenger.fingerprint.metric_string < incumbent.fingerprint.metric_string);
    if (better) {
      best_index[cell] = static_cast<int>(i);
    }
  }

  std::vector<FunnelCandidate> representatives;
  for (size_t cell = 0; cell < best_index.size(); ++cell) {
    if (best_index[cell] >= 0) {
      FunnelCandidate representative =
          std::move(candidates[static_cast<size_t>(best_index[cell])]);
      representative.regression.merged_count = cluster_sizes[cell];
      representatives.push_back(std::move(representative));
    }
  }
  return representatives;
}

}  // namespace fbdetect
