#include "src/core/som_dedup.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "src/common/random.h"
#include "src/stats/descriptive.h"
#include "src/stats/fourier.h"
#include "src/stats/text.h"

namespace fbdetect {
namespace {

// Stable 64-bit hash for commit-id bitmap bucketing.
uint64_t MixCommitId(int64_t id) {
  uint64_t state = static_cast<uint64_t>(id) + 0x9e3779b97f4a7c15ULL;
  return SplitMix64(state);
}

std::vector<double> BuildFeatureVector(const Regression& regression,
                                       const SomDedupConfig& config,
                                       const TfIdfHasher& hasher) {
  std::vector<double> features;
  // Shape features.
  const std::vector<double> fourier =
      FourierMagnitudes(regression.analysis, config.fourier_coefficients);
  features.insert(features.end(), fourier.begin(), fourier.end());
  features.push_back(SampleVariance(regression.analysis));
  features.push_back(regression.analysis.empty()
                         ? 0.0
                         : static_cast<double>(regression.change_index) /
                               static_cast<double>(regression.analysis.size()));
  features.push_back(regression.delta);
  features.push_back(regression.relative_delta);
  // Candidate-root-cause bitmap (hashed to a fixed width).
  std::vector<double> bitmap(config.root_cause_bitmap_dims, 0.0);
  for (int64_t commit : regression.candidate_root_causes) {
    bitmap[MixCommitId(commit) % config.root_cause_bitmap_dims] = 1.0;
  }
  features.insert(features.end(), bitmap.begin(), bitmap.end());
  // Metric-ID TF-IDF embedding.
  const std::vector<double> metric_embedding = hasher.Embed(regression.metric.ToString());
  features.insert(features.end(), metric_embedding.begin(), metric_embedding.end());
  return features;
}

// Z-score normalization per dimension (constant dimensions collapse to 0).
void NormalizeColumns(std::vector<std::vector<double>>& rows) {
  if (rows.empty()) {
    return;
  }
  const size_t dims = rows[0].size();
  for (size_t d = 0; d < dims; ++d) {
    double mean = 0.0;
    for (const auto& row : rows) {
      mean += row[d];
    }
    mean /= static_cast<double>(rows.size());
    double var = 0.0;
    for (const auto& row : rows) {
      const double diff = row[d] - mean;
      var += diff * diff;
    }
    var /= static_cast<double>(rows.size());
    const double sd = std::sqrt(var);
    for (auto& row : rows) {
      row[d] = sd > 0.0 ? (row[d] - mean) / sd : 0.0;
    }
  }
}

}  // namespace

double SomDedup::ImportanceScore(const Regression& regression, double max_abs_delta,
                                 double max_rel_delta) const {
  const double relative =
      max_rel_delta > 0.0 ? std::fabs(regression.relative_delta) / max_rel_delta : 0.0;
  const double absolute = max_abs_delta > 0.0 ? std::fabs(regression.delta) / max_abs_delta : 0.0;
  // PopularityScore: probability of the regressed subroutine appearing in a
  // random stack-trace sample. For gCPU metrics the baseline mean IS that
  // probability; for other metrics use a neutral 0.5.
  const double popularity = regression.metric.kind == MetricKind::kGcpu
                                ? std::clamp(regression.baseline_mean, 0.0, 1.0)
                                : 0.5;
  const double has_root_cause = regression.candidate_root_causes.empty() ? 0.0 : 1.0;
  return config_.w_relative * relative + config_.w_absolute * absolute +
         config_.w_popularity * (1.0 - popularity) + config_.w_root_cause * has_root_cause;
}

std::vector<Regression> SomDedup::Deduplicate(std::vector<Regression> regressions) const {
  if (regressions.size() <= 1) {
    for (Regression& regression : regressions) {
      regression.som_cluster = 0;
      regression.importance = ImportanceScore(regression, std::fabs(regression.delta),
                                              std::fabs(regression.relative_delta));
    }
    return regressions;
  }

  // Fit the metric-ID TF-IDF model on this cohort.
  std::vector<std::string> corpus;
  corpus.reserve(regressions.size());
  for (const Regression& regression : regressions) {
    corpus.push_back(regression.metric.ToString());
  }
  TfIdfHasher hasher(config_.metric_id_dims);
  hasher.Fit(corpus);

  std::vector<std::vector<double>> features;
  features.reserve(regressions.size());
  for (const Regression& regression : regressions) {
    features.push_back(BuildFeatureVector(regression, config_, hasher));
  }
  NormalizeColumns(features);

  const int grid = SomGridSize(regressions.size());
  SelfOrganizingMap som(features[0].size(), grid, config_.training.seed);
  som.Train(features, config_.training);
  const std::vector<int> assignment = som.Assign(features);

  // Cohort normalization bounds for ImportanceScore.
  double max_abs = 0.0;
  double max_rel = 0.0;
  for (const Regression& regression : regressions) {
    max_abs = std::max(max_abs, std::fabs(regression.delta));
    max_rel = std::max(max_rel, std::fabs(regression.relative_delta));
  }

  // Pick the max-importance member per cluster.
  std::vector<int> best_index(static_cast<size_t>(grid) * static_cast<size_t>(grid), -1);
  std::vector<size_t> cluster_sizes(best_index.size(), 0);
  for (size_t i = 0; i < regressions.size(); ++i) {
    regressions[i].som_cluster = assignment[i];
    regressions[i].importance = ImportanceScore(regressions[i], max_abs, max_rel);
    const size_t cell = static_cast<size_t>(assignment[i]);
    ++cluster_sizes[cell];
    if (best_index[cell] < 0) {
      best_index[cell] = static_cast<int>(i);
      continue;
    }
    const Regression& incumbent = regressions[static_cast<size_t>(best_index[cell])];
    const Regression& challenger = regressions[i];
    const bool better =
        challenger.importance > incumbent.importance ||
        (challenger.importance == incumbent.importance &&
         challenger.metric.ToString() < incumbent.metric.ToString());
    if (better) {
      best_index[cell] = static_cast<int>(i);
    }
  }

  std::vector<Regression> representatives;
  for (size_t cell = 0; cell < best_index.size(); ++cell) {
    if (best_index[cell] >= 0) {
      Regression representative = std::move(regressions[static_cast<size_t>(best_index[cell])]);
      representative.merged_count = cluster_sizes[cell];
      representatives.push_back(std::move(representative));
    }
  }
  return representatives;
}

}  // namespace fbdetect
