// The end-to-end FBDetect pipeline (Fig. 6).
//
// Per re-run (every DetectionConfig::rerun_interval), for every time series
// of a service:
//   short-term path: change-point detector -> went-away detector ->
//     seasonality detector -> threshold filter;
//   long-term path: STL-first long-term detector -> threshold filter.
// Survivors from both paths then flow through SameRegressionMerger ->
// SOMDedup -> cost-shift detector -> PairwiseDedup -> root-cause analysis.
// Faster filters run first to starve the expensive later stages (§5.1).
//
// Scan path: per series, windows are extracted as zero-copy spans
// (ExtractWindowView) and oriented regression-positive once into a per-worker
// scratch buffer (a no-op for higher-is-worse metrics); candidates flow
// through the filter stages as scalars and are materialized into Regression
// objects only when they survive the threshold. Scans are fanned out over a
// persistent ThreadPool with a deterministic stride partition; per-worker
// survivors and funnel counters are merged in canonical (MetricId, path)
// order, so the output is byte-identical for any scan_threads value.
//
// Funnel path (PR 3): survivors are fingerprinted once (RegressionFingerprint
// — metric string, token vector, hashed grams, SOM shape features) right
// after the scan, in parallel, and the FunnelCandidate bundles flow through
// SameRegressionMerger -> SOMDedup -> cost-shift -> PairwiseDedup -> root
// cause without re-deriving any of those artifacts. Every parallel stage
// writes per-index slots and merges in a canonical order (SOM cohorts by
// kind, cost-shift verdicts by representative index, pairwise scores by
// group id, root cause by new-group index), so funnel output and counters
// are byte-identical for any scan_threads value.
//
// FunnelStats mirror Table 3: the count of surviving anomalies after each
// stage, kept separately for the short-term and long-term paths.
#ifndef FBDETECT_SRC_CORE_PIPELINE_H_
#define FBDETECT_SRC_CORE_PIPELINE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/observe/telemetry.h"
#include "src/observe/telemetry_sink.h"
#include "src/tracing/trace.h"
#include "src/core/change_point_stage.h"
#include "src/core/code_info.h"
#include "src/core/cost_shift.h"
#include "src/core/detector_state.h"
#include "src/core/funnel_stats.h"
#include "src/core/long_term.h"
#include "src/core/pairwise_dedup.h"
#include "src/core/regression.h"
#include "src/core/root_cause.h"
#include "src/core/same_regression_merger.h"
#include "src/core/sanitizer.h"
#include "src/core/scan_view.h"
#include "src/core/seasonality_stage.h"
#include "src/core/som_dedup.h"
#include "src/core/threshold_filter.h"
#include "src/core/went_away.h"
#include "src/core/workload_config.h"
#include "src/fleet/change_log.h"
#include "src/tsdb/database.h"

namespace fbdetect {

// How the scan stage treats series between re-runs (DESIGN §14).
enum class ScanMode {
  // Re-evaluate every series at every run: the byte-identical oracle.
  kBatch,
  // Per-series verdict cache behind the DetectorState seam: a series whose
  // TSDB version is unchanged replays its cached verdict instead of being
  // re-evaluated, and a run whose service saw no mutation at all is
  // short-circuited. Dirty series run the exact batch stages, so output is
  // byte-identical to kBatch whenever every series is dirty at a run
  // (live-ingest steady state); a clean series' replay across a shifted
  // as_of is the documented approximation.
  kGated,
  // kGated plus incremental per-point state (rolling Welford moments,
  // online CUSUM, BOCPD run-length posterior) fed by the TSDB append
  // observer, raising early-warning alerts at ingest time. Alert-only:
  // RunAt verdicts still come from the exact batch stages.
  kStreaming,
};

// Self-observability over the pipeline itself (DESIGN.md §12). Off by
// default: with enabled = false the hot path pays one predictable branch per
// instrumented site and no clock reads. When enabled, every stage records
// candidate-in/out attrition counters (deterministic: byte-identical for any
// scan_threads), wall/CPU latency histograms (runtime), and one Trace per
// re-run whose child spans follow Fig. 6 stage order.
struct TelemetryOptions {
  bool enabled = false;
  // Per-run traces retained (oldest dropped first); 0 disables tracing.
  size_t max_traces = 64;
  // Self-hosting (DESIGN.md §15): when set (and telemetry is enabled), every
  // RunAt ends by persisting a registry snapshot into this database as
  // ordinary series under `self_host_service` — counters as kApplication
  // levels, histogram per-interval means as kLatency series — so the
  // pipeline's own attrition/latency metrics are scanned for regressions by
  // the standard detection stack. May point at the scanned database itself
  // (the write happens after the run's readers are done). Must outlive the
  // pipeline.
  TimeSeriesDatabase* self_host_db = nullptr;
  std::string self_host_service = "fbdetect.self";
};

struct PipelineOptions {
  DetectionConfig detection;
  TelemetryOptions telemetry;
  bool enable_cost_shift = true;   // AdServing disables it (Table 3).
  CostShiftConfig cost_shift;
  SomDedupConfig som_dedup;
  PairwiseRule pairwise_rule;
  RootCauseConfig root_cause;
  // Change-point-time tolerance for SameRegressionMerger; 0 = one analysis
  // window.
  Duration same_regression_tolerance = 0;
  // Data-quality gate in front of the detectors; dirty windows are
  // quarantined (see src/core/sanitizer.h) instead of scanned.
  SanitizerConfig sanitizer;
  // Per-series detection (stages 1-3 + threshold) is embarrassingly
  // parallel; production FBDetect fans it out across a serverless platform
  // (§5.1). >1 scans series on that many threads (a persistent pool, spawned
  // once at construction); results are merged in deterministic metric order,
  // so outputs are identical for any value.
  int scan_threads = 1;
  // Incremental scan mode (see ScanMode). kBatch is the default and the
  // oracle every other mode is tested against.
  ScanMode scan_mode = ScanMode::kBatch;
  // Per-point state tuning, used only when scan_mode == kStreaming.
  StreamingConfig streaming;
};

class Pipeline {
 public:
  // `change_log` and `code_info` may be null (root-cause analysis and the
  // structural cost domains degrade gracefully). Non-null pointers must
  // outlive the pipeline.
  Pipeline(const TimeSeriesDatabase* db, const ChangeLog* change_log,
           const CodeInfoProvider* code_info, PipelineOptions options);

  // Supplies the stack-trace-overlap feature to PairwiseDedup. Must be called
  // before the first run to take effect. The function must be thread-safe
  // when scan_threads > 1 (pairwise scoring fans over the pool).
  void set_stack_overlap(StackOverlapFn overlap);

  // One re-run at `as_of`: scans every series of `service` and returns the
  // representatives of NEWLY opened regression groups, root causes attached.
  std::vector<Regression> RunAt(const std::string& service, TimePoint as_of);

  // Periodic re-runs over [begin + interval, end]; returns all newly reported
  // regressions across runs.
  std::vector<Regression> RunPeriod(const std::string& service, TimePoint begin, TimePoint end);

  const FunnelStats& short_term_funnel() const { return short_funnel_; }
  const FunnelStats& long_term_funnel() const { return long_funnel_; }

  // Self-observability registry (empty when TelemetryOptions::enabled is
  // false). Deterministic counters reconcile exactly with the funnel: e.g.
  // scan.series_in == series_no_data + decode_failures + windows_quarantined
  // + stage.change_point.in, and stage.fingerprint.in == stage.threshold.out
  // + stage.long_term.out.
  const TelemetryRegistry& telemetry() const { return telemetry_; }
  TelemetryRegistry& telemetry() { return telemetry_; }

  // One trace per RunAt (newest last, capped at TelemetryOptions::max_traces):
  // a root span with the Fig. 6 stages as children — the scan sub-stages under
  // a "scan" span, the funnel stages under the root. Span self costs are
  // milliseconds of accumulated stage wall time for that run.
  const std::vector<Trace>& run_traces() const { return run_traces_; }

  // The cost-shift stage, exposed so callers can register custom
  // CostDomainDetectors (also the seam robustness tests use to inject
  // throwing detectors). Must be called before the first run.
  CostShiftDetector& cost_shift_detector() { return cost_shift_; }

  // Everything the pipeline refused to trust so far: sanitizer-quarantined
  // windows, corrupt sealed storage, detector exceptions isolated to one
  // series, and the database's ingest-time duplicate/out-of-order drops —
  // one record per dirty series, in canonical MetricId order.
  QuarantineReport quarantine_report() const;
  const std::vector<RegressionGroup>& groups() const { return pairwise_.groups(); }
  const PipelineOptions& options() const { return options_; }

  // The per-series detector state store; null when scan_mode == kBatch.
  // To receive per-point streaming updates (kStreaming early warnings), the
  // caller wires it into the database during a quiescent phase:
  //   db.SetAppendObserver(pipeline.detector_store());
  // Generation gating itself needs no wiring — it is driven by the TSDB's
  // per-series version counters, not the observer.
  DetectorStateStore* detector_store() { return detector_store_.get(); }
  const DetectorStateStore* detector_store() const { return detector_store_.get(); }

 private:
  // Pre-resolved instrument handles. All null (and `enabled` false) when
  // telemetry is off, so the hot path pays one predictable branch per site
  // and never touches the registry, an atomic, or a clock. Counters tagged
  // deterministic count pipeline events only; histograms and pool mirrors are
  // runtime-dependent and excluded from the deterministic export.
  struct StageInstruments {
    Counter* in = nullptr;
    Counter* out = nullptr;
    Histogram* wall_ns = nullptr;
    Histogram* cpu_ns = nullptr;  // Orchestrating thread only; null on scan stages.
  };
  struct Instruments {
    bool enabled = false;
    Counter* runs = nullptr;
    Counter* series_in = nullptr;
    Counter* series_no_data = nullptr;
    Counter* series_decode_failures = nullptr;
    Counter* windows_flagged = nullptr;
    Counter* windows_quarantined = nullptr;
    Counter* sanitizer_verdict[4] = {};  // Indexed by QualityVerdict.
    Counter* detector_exceptions = nullptr;
    Counter* funnel_exceptions = nullptr;
    Counter* reported = nullptr;
    StageInstruments change_point, went_away, seasonality, threshold, long_term,
        fingerprint, same_merger, som_dedup, cost_shift, pairwise, root_cause;
    Histogram* scan_wall_ns = nullptr;  // Whole ScanAllMetrics, per run.
    Histogram* run_wall_ns = nullptr;   // Whole RunAt, per run.
    // Runtime mirrors, Set() from the pool/TSDB sources at SyncTelemetry.
    Counter* pool_batches = nullptr;
    Counter* pool_tasks = nullptr;
    Counter* pool_max_batch_tasks = nullptr;
    Counter* pool_wall_ns = nullptr;
    // Deterministic mirrors of the database's tier accounting (one lookup per
    // series per re-run regardless of scan_threads).
    Counter* tsdb_tail_hits = nullptr;
    Counter* tsdb_sealed_decodes = nullptr;
    Counter* tsdb_decode_failures = nullptr;
    Counter* tsdb_misses = nullptr;
    Counter* tsdb_list_cache_hits = nullptr;
    Counter* tsdb_list_cache_misses = nullptr;
    Counter* tsdb_list_cache_shard_refreshes = nullptr;
    // Generation-gated scan accounting (all zero in kBatch mode). Per run:
    // series_in == scan_dirty + scan_cache_hit (short-circuited runs skip
    // series_in entirely); scan_clean == scan_cache_hit + series skipped by
    // run short-circuits.
    Counter* scan_dirty = nullptr;
    Counter* scan_clean = nullptr;
    Counter* scan_cache_hit = nullptr;
    Counter* run_short_circuits = nullptr;
    // Deterministic mirror of DetectorStateStore::alerts_raised().
    Counter* streaming_alerts = nullptr;
    // Runtime mirrors of the durable tier (tsdb.durable.* / tsdb.memory.*).
    // Registered only when the scanned database has the tier enabled, so
    // non-durable pipelines see an unchanged instrument set. All kRuntime:
    // their values depend on budgets, commit batching, and crash history.
    bool durable = false;
    Counter* durable_group_commits = nullptr;
    Counter* durable_checkpoint_rewrites = nullptr;
    Counter* durable_log_bytes = nullptr;
    Counter* durable_chunk_file_bytes = nullptr;
    Counter* durable_chunks_persisted = nullptr;
    Counter* durable_chunks_evicted = nullptr;
    Counter* durable_evicted_bytes = nullptr;
    Counter* durable_mapped_readback_decodes = nullptr;
    Counter* durable_recoveries = nullptr;
    Counter* durable_recovered_points = nullptr;
    Counter* durable_materialized_evictions = nullptr;
    Counter* durable_io_errors = nullptr;
    Counter* durable_degraded = nullptr;  // 0/1 gauge.
    Counter* memory_resident_sealed_bytes = nullptr;
    Counter* memory_mapped_sealed_bytes = nullptr;
    Counter* memory_materialized_bytes = nullptr;
  };

  // Registers every instrument with the registry and fills `obs_`.
  void RegisterInstruments();

  // Null when telemetry is off: a StageTimer built from it never reads a
  // clock, which is the disabled-cost contract.
  Histogram* Timed(Histogram* histogram) const {
    return obs_.enabled ? histogram : nullptr;
  }

  // Mirrors the pool's and database's internal counters into the registry so
  // one snapshot covers the whole system. Called once per RunAt.
  void SyncTelemetry();

  // Fills `sums` (one slot per Fig. 6 trace stage, fixed order defined in the
  // .cc) with the current accumulated wall-time sums of the stage histograms.
  void StageWallSums(uint64_t* sums) const;

  // Appends the per-run trace (stage spans from histogram-sum deltas taken at
  // run start) and enforces the max_traces cap.
  void EmitTrace(const std::string& service, const uint64_t* sums_before,
                 uint64_t scan_wall_before, uint64_t run_wall_ns);

  // Runs detection stages 1-3 + threshold for one metric; appends survivors
  // and counts into the provided funnel accumulators. `scratch` is the
  // caller's orientation buffer (reused across metrics; untouched for
  // higher-is-worse kinds); `series_scratch` is the caller's decode buffer
  // for series whose scan range extends into Gorilla-sealed history
  // (untouched when the raw tail covers the detection windows — the common
  // case, which stays zero-copy). Dirty windows append a QuarantineRecord to
  // `quarantine` (the caller's private vector, merged after the parallel
  // scan) instead of reaching the detectors; detector exceptions are caught
  // and quarantined the same way, so one corrupt series can never take down
  // a re-run. In gated/streaming mode this is a thin wrapper that replays
  // the cached SeriesVerdict when the series' TSDB version is unchanged and
  // delegates to EvaluateSeries (filling the cache) when it moved.
  // Thread-safe: the scan visits each series exactly once per run, so the
  // per-series verdict slot is accessed exclusively.
  void ScanMetric(const MetricId& id, TimePoint as_of, std::vector<Regression>& survivors,
                  FunnelStats& short_funnel, FunnelStats& long_funnel,
                  std::vector<double>& scratch, TimeSeries& series_scratch,
                  std::vector<QuarantineRecord>& quarantine) const;

  // The full batch evaluation (window extraction → sanitizer → detectors),
  // shared verbatim by every scan mode. Deterministic counter increments are
  // recorded into `events` (applied by the caller via ApplyScanEvents) so a
  // cached verdict can replay them exactly.
  void EvaluateSeries(const MetricId& id, TimePoint as_of,
                      std::vector<Regression>& survivors, FunnelStats& short_funnel,
                      FunnelStats& long_funnel, std::vector<double>& scratch,
                      TimeSeries& series_scratch,
                      std::vector<QuarantineRecord>& quarantine,
                      SeriesScanEvents& events) const;

  // Applies one series' recorded counter increments to the registry (no-op
  // with telemetry off).
  void ApplyScanEvents(const SeriesScanEvents& events) const;

  // Scans all metrics of a service, optionally on several threads; returns
  // survivors in deterministic metric order.
  std::vector<Regression> ScanAllMetrics(const std::string& service, TimePoint as_of);

  // The service's metric list, sorted canonically. Cached across re-runs and
  // invalidated by the database's generation counter, so steady-state scans
  // skip the per-run enumerate-and-sort.
  const std::vector<MetricId>& CachedMetrics(const std::string& service);

  // The pool the funnel stages fan out on; null (serial) when scan_threads
  // <= 1. Funnel stages call this between ParallelIndexFor batches only —
  // never from inside one (the pool is not reentrant).
  ThreadPool* FunnelPool();

  // Folds per-worker quarantine records into the accumulated per-series map.
  // Record merging is commutative, so the map contents are independent of
  // worker interleaving (determinism across scan_threads values).
  void MergeQuarantine(std::vector<QuarantineRecord>& records);

  // Accounts one isolated exception (funnel stage) against `metric`;
  // `message` is the exception's what() (kept only if the record has none
  // yet — first error wins, which is deterministic because every series is
  // scanned once per run).
  void RecordException(const MetricId& metric, std::string message);

  // Builds the quarantine record for a detector exception isolated inside
  // ScanMetric and counts it against the telemetry.
  void QuarantineDetectorException(const MetricId& id, const char* what,
                                   std::vector<QuarantineRecord>& quarantine) const;

  const TimeSeriesDatabase* db_;
  const ChangeLog* change_log_;
  PipelineOptions options_;

  ChangePointStage change_point_stage_;
  WentAwayDetector went_away_;
  SeasonalityStage seasonality_;
  LongTermDetector long_term_;
  SameRegressionMerger merger_;
  Sanitizer sanitizer_;
  SomDedup som_dedup_;
  CostShiftDetector cost_shift_;
  PairwiseDedup pairwise_;
  std::unique_ptr<RootCauseAnalyzer> root_cause_;  // Null without a change log.

  // Persistent workers; scan_threads - 1 of them, the caller thread is the
  // Nth. Empty (serial) when scan_threads <= 1.
  ThreadPool pool_;
  // Per-worker orientation scratch, reused across metrics and re-runs.
  std::vector<std::vector<double>> worker_scratch_;
  // Per-worker decode buffers for scans that reach into sealed history.
  std::vector<TimeSeries> worker_series_scratch_;

  // CachedMetrics state.
  std::string cached_service_;
  std::vector<MetricId> cached_ids_;
  uint64_t cached_generation_ = 0;
  bool cache_valid_ = false;

  // Per-series detector states; null in kBatch mode.
  std::unique_ptr<DetectorStateStore> detector_store_;
  // Run short-circuit state: the (service, db generation) of the last
  // completed RunAt. A gated re-run over the same service with an unchanged
  // generation is skipped wholesale — no data can have changed any verdict.
  std::string last_run_service_;
  uint64_t last_run_generation_ = 0;
  bool last_run_valid_ = false;

  FunnelStats short_funnel_;
  FunnelStats long_funnel_;

  // Self-observability state. The registry owns the instruments; obs_ holds
  // pre-resolved handles so the hot path never does a name lookup.
  TelemetryRegistry telemetry_;
  Instruments obs_;
  std::vector<Trace> run_traces_;
  int64_t run_counter_ = 0;
  // Self-hosting sink; null unless TelemetryOptions::self_host_db is set.
  std::unique_ptr<TelemetrySink> self_sink_;

  // Accumulated dirty-series accounting across re-runs; std::map keeps
  // canonical MetricId order for the report snapshot.
  std::map<MetricId, QuarantineRecord> quarantine_;
};

}  // namespace fbdetect

#endif  // FBDETECT_SRC_CORE_PIPELINE_H_
