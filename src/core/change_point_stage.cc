#include "src/core/change_point_stage.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/common/check.h"
#include "src/stats/descriptive.h"

namespace fbdetect {

ChangePointStage::ChangePointStage(const DetectionConfig& config)
    : config_(config), backend_(MakeChangePointBackend(config.change_point_backend)) {
  // A misconfigured detector must fail loudly at construction, not silently
  // skip every scan.
  if (backend_ == nullptr) {
    std::fprintf(stderr, "unknown change-point backend: %s\n",
                 config.change_point_backend.c_str());
  }
  FBD_CHECK(backend_ != nullptr);
}

std::optional<ScanCandidate> ChangePointStage::DetectCandidate(const ScanView& view) const {
  // Minimum data requirements: the statistics below need a meaningful
  // baseline and enough analysis points to host a split.
  const size_t min_analysis = std::max<size_t>(2 * config_.min_segment, 8);
  if (view.analysis_size + view.extended_size < min_analysis ||
      view.historical_size < min_analysis) {
    return std::nullopt;
  }
  // Corrupt input (NaN/inf from a broken exporter) must not poison the
  // statistics; skip the series for this run.
  if (HasNonFinite(view.full)) {
    return std::nullopt;
  }

  // Context: a tail of the historical window equal to the analysis window, so
  // a step at the historical/analysis boundary is visible to the detector.
  // The view is contiguous, so the scan range is a subspan — no copy.
  const size_t context = std::min(view.historical_size, view.analysis_size);
  const std::span<const double> scan = view.full.subspan(view.historical_size - context);

  ChangePointBackendOptions backend_options;
  backend_options.min_segment = config_.min_segment;
  backend_options.significance_level = config_.significance_level;
  backend_options.max_em_iterations = config_.max_em_iterations;
  const ChangePoint cp = backend_->Detect(scan, backend_options);
  if (!cp.found) {
    return std::nullopt;
  }
  // The change must fall inside the analysis window proper (not the context
  // tail, not the extended window).
  if (cp.index < context || cp.index >= context + view.analysis_size) {
    return std::nullopt;
  }
  // Only regressions (increases in the oriented series) are reported.
  if (cp.delta <= 0.0) {
    return std::nullopt;
  }

  ScanCandidate candidate;
  candidate.change_index = cp.index - context;
  candidate.p_value = cp.p_value;
  // Baseline from the FULL historical window (oriented), not just the scan
  // context — the historical window is the comparison baseline (Fig. 4).
  candidate.baseline_mean = Mean(view.historical());
  candidate.regressed_mean =
      Mean(view.analysis_plus_extended().subspan(candidate.change_index));
  candidate.delta = candidate.regressed_mean - candidate.baseline_mean;
  candidate.relative_delta = candidate.baseline_mean != 0.0
                                 ? candidate.delta / std::abs(candidate.baseline_mean)
                                 : 0.0;
  if (candidate.delta <= 0.0) {
    // The split was significant locally but the level is not above the
    // historical baseline — not a regression against the baseline.
    return std::nullopt;
  }
  return candidate;
}

std::optional<Regression> ChangePointStage::Detect(const MetricId& metric,
                                                   const WindowExtract& windows) const {
  // Regression-positive orientation: for throughput-like metrics a drop is
  // the regression, so the detector works on negated values.
  const double sign = LowerIsRegression(metric.kind) ? -1.0 : 1.0;
  std::vector<double> scratch;
  const ScanView view = OrientWindows(windows, sign, scratch);
  const std::optional<ScanCandidate> candidate = DetectCandidate(view);
  if (!candidate) {
    return std::nullopt;
  }
  return MaterializeRegression(metric, view, *candidate);
}

}  // namespace fbdetect
