#include "src/core/change_point_stage.h"

#include <algorithm>
#include <vector>

#include "src/stats/descriptive.h"
#include "src/tsa/em_changepoint.h"

namespace fbdetect {

std::optional<Regression> ChangePointStage::Detect(const MetricId& metric,
                                                   const WindowExtract& windows) const {
  // Minimum data requirements: the statistics below need a meaningful
  // baseline and enough analysis points to host a split.
  const size_t min_analysis = std::max<size_t>(2 * config_.min_segment, 8);
  if (windows.analysis.size() + windows.extended.size() < min_analysis ||
      windows.historical.size() < min_analysis) {
    return std::nullopt;
  }
  // Corrupt input (NaN/inf from a broken exporter) must not poison the
  // statistics; skip the series for this run.
  if (HasNonFinite(windows.historical) || HasNonFinite(windows.analysis) ||
      HasNonFinite(windows.extended)) {
    return std::nullopt;
  }

  // Regression-positive orientation: for throughput-like metrics a drop is
  // the regression, so the detector works on negated values.
  const double sign = LowerIsRegression(metric.kind) ? -1.0 : 1.0;

  // Context: a tail of the historical window equal to the analysis window, so
  // a step at the historical/analysis boundary is visible to the detector.
  const size_t analysis_size = windows.analysis.size();
  const size_t extended_size = windows.extended.size();
  const size_t context = std::min(windows.historical.size(), analysis_size);

  std::vector<double> scan;
  scan.reserve(context + analysis_size + extended_size);
  for (size_t i = windows.historical.size() - context; i < windows.historical.size(); ++i) {
    scan.push_back(sign * windows.historical[i]);
  }
  for (double v : windows.analysis) {
    scan.push_back(sign * v);
  }
  for (double v : windows.extended) {
    scan.push_back(sign * v);
  }

  ChangePointConfig cp_config;
  cp_config.min_segment = config_.min_segment;
  cp_config.max_iterations = config_.max_em_iterations;
  cp_config.significance_level = config_.significance_level;
  const ChangePoint cp = DetectChangePoint(scan, cp_config);
  if (!cp.found) {
    return std::nullopt;
  }
  // The change must fall inside the analysis window proper (not the context
  // tail, not the extended window).
  if (cp.index < context || cp.index >= context + analysis_size) {
    return std::nullopt;
  }
  // Only regressions (increases in the oriented series) are reported.
  if (cp.delta <= 0.0) {
    return std::nullopt;
  }

  Regression regression;
  regression.metric = metric;
  regression.detected_at = windows.as_of;
  regression.change_index = cp.index - context;
  if (regression.change_index < windows.analysis_timestamps.size()) {
    regression.change_time = windows.analysis_timestamps[regression.change_index];
  } else {
    regression.change_time = windows.as_of;
  }
  regression.extended_size = extended_size;
  regression.p_value = cp.p_value;

  // Baseline from the FULL historical window (oriented), not just the scan
  // context — the historical window is the comparison baseline (Fig. 4).
  regression.historical.reserve(windows.historical.size());
  for (double v : windows.historical) {
    regression.historical.push_back(sign * v);
  }
  regression.analysis.assign(scan.begin() + static_cast<long>(context), scan.end());
  regression.analysis_timestamps = windows.analysis_timestamps;

  regression.baseline_mean = Mean(regression.historical);
  regression.regressed_mean =
      Mean(std::span<const double>(regression.analysis)
               .subspan(regression.change_index));
  regression.delta = regression.regressed_mean - regression.baseline_mean;
  regression.relative_delta = regression.baseline_mean != 0.0
                                  ? regression.delta / std::abs(regression.baseline_mean)
                                  : 0.0;
  if (regression.delta <= 0.0) {
    // The split was significant locally but the level is not above the
    // historical baseline — not a regression against the baseline.
    return std::nullopt;
  }
  return regression;
}

}  // namespace fbdetect
