// SOMDedup (§5.5.1): fast first-pass deduplication of regressions detected in
// the same analysis window over the same metric type.
//
// Each regression becomes a feature vector:
//   * time-series shape — Fourier magnitudes, variance, normalized change
//     index, absolute and relative magnitude;
//   * candidate root causes — a hashed bitmap of the commits that touched the
//     regressed subroutine right before the change;
//   * metric ID — a TF-IDF embedding over 2/3-character-grams.
// Vectors are z-score normalized per dimension, clustered on an L x L SOM
// with L = ceil(n^(1/4)), and each cluster is reduced to the regression with
// the highest ImportanceScore:
//   0.2*RelativeCostChange + 0.6*AbsoluteCostChange +
//   0.1*(1 - PopularityScore) + 0.1*PotentialRootCauseFound.
//
// Funnel path (PR 3): the shape block and the hashed gram set come
// precomputed in each candidate's RegressionFingerprint, so Deduplicate only
// fits the cohort TF-IDF model on cached grams, appends the embeddings into
// a flat feature matrix (in parallel), and runs the SOM. BMU assignment fans
// over the pool; training stays the sequential online algorithm so results
// are byte-identical with the historical implementation.
#ifndef FBDETECT_SRC_CORE_SOM_DEDUP_H_
#define FBDETECT_SRC_CORE_SOM_DEDUP_H_

#include <vector>

#include "src/common/thread_pool.h"
#include "src/core/fingerprint.h"
#include "src/core/regression.h"
#include "src/core/som.h"

namespace fbdetect {

struct SomDedupConfig {
  // ImportanceScore weights (paper defaults).
  double w_relative = 0.2;
  double w_absolute = 0.6;
  double w_popularity = 0.1;
  double w_root_cause = 0.1;

  size_t fourier_coefficients = 4;
  size_t root_cause_bitmap_dims = 8;
  size_t metric_id_dims = 8;
  SomTrainConfig training;
};

class SomDedup {
 public:
  explicit SomDedup(const SomDedupConfig& config = {}) : config_(config) {}

  // Clusters `regressions` and returns one representative per cluster (the
  // max-ImportanceScore member), with `som_cluster`, `importance`, and
  // `merged_count` filled in. Input order does not affect the set of
  // representatives chosen (ties break on metric ID). Convenience wrapper
  // that computes fingerprints itself.
  std::vector<Regression> Deduplicate(std::vector<Regression> regressions) const;

  // Funnel form: candidates arrive with fingerprints (whose som_base must
  // have been built with this config's fourier_coefficients /
  // root_cause_bitmap_dims). `pool` may be null (serial); results are
  // byte-identical for any pool size.
  std::vector<FunnelCandidate> Deduplicate(std::vector<FunnelCandidate> candidates,
                                           ThreadPool* pool) const;

  // The ImportanceScore of one regression given cohort-normalization bounds.
  double ImportanceScore(const Regression& regression, double max_abs_delta,
                         double max_rel_delta) const;

 private:
  SomDedupConfig config_;
};

}  // namespace fbdetect

#endif  // FBDETECT_SRC_CORE_SOM_DEDUP_H_
