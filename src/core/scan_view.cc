#include "src/core/scan_view.h"

#include <algorithm>

namespace fbdetect {

ScanView OrientWindows(const WindowView& view, double sign, std::vector<double>& scratch) {
  ScanView oriented;
  oriented.historical_size = view.historical.size();
  oriented.analysis_size = view.analysis.size();
  oriented.extended_size = view.extended.size();
  oriented.analysis_timestamps = view.analysis_timestamps;
  oriented.analysis_begin = view.analysis_begin;
  oriented.as_of = view.as_of;
  if (sign >= 0.0) {
    oriented.full = view.full;
    return oriented;
  }
  scratch.resize(view.full.size());
  for (size_t i = 0; i < view.full.size(); ++i) {
    scratch[i] = -view.full[i];
  }
  oriented.full = scratch;
  return oriented;
}

ScanView OrientWindows(const WindowExtract& extract, double sign,
                       std::vector<double>& scratch) {
  ScanView oriented;
  oriented.historical_size = extract.historical.size();
  oriented.analysis_size = extract.analysis.size();
  oriented.extended_size = extract.extended.size();
  oriented.analysis_timestamps = extract.analysis_timestamps;
  oriented.analysis_begin = extract.analysis_begin;
  oriented.as_of = extract.as_of;
  scratch.clear();
  scratch.reserve(extract.historical.size() + extract.analysis.size() +
                  extract.extended.size());
  for (double v : extract.historical) {
    scratch.push_back(sign * v);
  }
  for (double v : extract.analysis) {
    scratch.push_back(sign * v);
  }
  for (double v : extract.extended) {
    scratch.push_back(sign * v);
  }
  oriented.full = scratch;
  return oriented;
}

ScanView ViewOfRegression(const Regression& regression, std::vector<double>& scratch) {
  ScanView view;
  view.historical_size = regression.historical.size();
  view.extended_size = std::min(regression.extended_size, regression.analysis.size());
  view.analysis_size = regression.analysis.size() - view.extended_size;
  view.analysis_timestamps = regression.analysis_timestamps;
  view.analysis_begin = regression.analysis_timestamps.empty()
                            ? regression.change_time
                            : regression.analysis_timestamps.front();
  view.as_of = regression.detected_at;
  scratch.clear();
  scratch.reserve(regression.historical.size() + regression.analysis.size());
  scratch.insert(scratch.end(), regression.historical.begin(), regression.historical.end());
  scratch.insert(scratch.end(), regression.analysis.begin(), regression.analysis.end());
  view.full = scratch;
  return view;
}

ScanCandidate CandidateOfRegression(const Regression& regression) {
  ScanCandidate candidate;
  candidate.change_index = regression.change_index;
  candidate.p_value = regression.p_value;
  candidate.baseline_mean = regression.baseline_mean;
  candidate.regressed_mean = regression.regressed_mean;
  candidate.delta = regression.delta;
  candidate.relative_delta = regression.relative_delta;
  return candidate;
}

Regression MaterializeRegression(const MetricId& metric, const ScanView& view,
                                 const ScanCandidate& candidate) {
  Regression regression;
  regression.metric = metric;
  regression.detected_at = view.as_of;
  regression.change_index = candidate.change_index;
  regression.change_time = candidate.change_index < view.analysis_timestamps.size()
                               ? view.analysis_timestamps[candidate.change_index]
                               : view.as_of;
  regression.extended_size = view.extended_size;
  regression.p_value = candidate.p_value;
  regression.baseline_mean = candidate.baseline_mean;
  regression.regressed_mean = candidate.regressed_mean;
  regression.delta = candidate.delta;
  regression.relative_delta = candidate.relative_delta;
  const std::span<const double> historical = view.historical();
  const std::span<const double> analysis = view.analysis_plus_extended();
  regression.historical.assign(historical.begin(), historical.end());
  regression.analysis.assign(analysis.begin(), analysis.end());
  regression.analysis_timestamps.assign(view.analysis_timestamps.begin(),
                                        view.analysis_timestamps.end());
  return regression;
}

}  // namespace fbdetect
