#include "src/core/sanitizer.h"

#include <algorithm>
#include <cmath>

#include "src/common/simd.h"

namespace fbdetect {

const char* QualityVerdictName(QualityVerdict verdict) {
  switch (verdict) {
    case QualityVerdict::kOk:
      return "ok";
    case QualityVerdict::kGappy:
      return "gappy";
    case QualityVerdict::kFlapping:
      return "flapping";
    case QualityVerdict::kCorrupt:
      return "corrupt";
  }
  return "unknown";
}

void QuarantineRecord::Merge(const QuarantineRecord& other) {
  worst = std::max(worst, other.worst);
  windows_quarantined += other.windows_quarantined;
  windows_flagged += other.windows_flagged;
  non_finite += other.non_finite;
  negative += other.negative;
  missing += other.missing;
  flap_windows += other.flap_windows;
  max_skew = std::max(max_skew, other.max_skew);
  decode_failures += other.decode_failures;
  exceptions += other.exceptions;
  dropped_duplicate += other.dropped_duplicate;
  dropped_out_of_order += other.dropped_out_of_order;
  // Keep the FIRST exception identity: a series is scanned once per re-run,
  // so within a run there is at most one message and the merge order across
  // workers cannot change which one survives.
  if (last_error.empty()) {
    last_error = other.last_error;
  }
}

uint64_t QuarantineReport::total_windows_quarantined() const {
  uint64_t total = 0;
  for (const QuarantineRecord& record : records) {
    total += record.windows_quarantined;
  }
  return total;
}

uint64_t QuarantineReport::total_decode_failures() const {
  uint64_t total = 0;
  for (const QuarantineRecord& record : records) {
    total += record.decode_failures;
  }
  return total;
}

uint64_t QuarantineReport::total_exceptions() const {
  uint64_t total = 0;
  for (const QuarantineRecord& record : records) {
    total += record.exceptions;
  }
  return total;
}

uint64_t QuarantineReport::total_dropped_duplicate() const {
  uint64_t total = 0;
  for (const QuarantineRecord& record : records) {
    total += record.dropped_duplicate;
  }
  return total;
}

uint64_t QuarantineReport::total_dropped_out_of_order() const {
  uint64_t total = 0;
  for (const QuarantineRecord& record : records) {
    total += record.dropped_out_of_order;
  }
  return total;
}

size_t QuarantineReport::CountAtLeast(QualityVerdict verdict) const {
  size_t count = 0;
  for (const QuarantineRecord& record : records) {
    if (record.worst >= verdict) {
      ++count;
    }
  }
  return count;
}

WindowQuality Sanitizer::Inspect(MetricKind kind, const WindowView& view,
                                 const WindowSpec& spec) const {
  WindowQuality quality;
  if (view.full.empty()) {
    return quality;  // Absent in this window; nothing to classify.
  }
  quality.observed = true;

  // --- Value corruption: NaN/Inf, and counter-reset negatives for kinds
  // that are non-negative by definition (everything but free-form
  // application metrics).
  // The kernel counts non-finite values and finite negatives in one sweep;
  // the negative count only matters (and is only applied) for kinds that are
  // non-negative by definition.
  const bool non_negative_kind = kind != MetricKind::kApplication;
  const simd::Kernels& kernels = simd::Active();
  uint64_t non_finite = 0;
  uint64_t negative = 0;
  kernels.classify_values(view.full.data(), view.full.size(), &non_finite, &negative);
  quality.non_finite = static_cast<uint32_t>(non_finite);
  if (non_negative_kind) {
    quality.negative = static_cast<uint32_t>(negative);
  }

  // --- Grid inference: the sampling interval is the smallest positive gap
  // between adjacent analysis-window timestamps. Dirty data can only widen
  // gaps (drops) — duplicates and out-of-order points were already rejected
  // at ingest — so the minimum is the true tick even in faulted windows.
  const std::span<const TimePoint>& stamps = view.analysis_timestamps;
  const Duration dt = kernels.min_positive_gap(stamps.data(), stamps.size());

  if (dt > 0) {
    // Constant per-host clock skew shows up as a grid-phase offset. It is
    // recorded but tolerated: a constant shift moves window boundaries by
    // less than one tick and cannot fake a level change.
    quality.skew = ((stamps.front() % dt) + dt) % dt;

    const uint64_t expected_historical =
        static_cast<uint64_t>(spec.historical / dt);
    const uint64_t expected_recent =
        static_cast<uint64_t>((spec.analysis + spec.extended) / dt);
    const uint64_t expected_total = expected_historical + expected_recent;
    const uint64_t present =
        view.historical.size() + view.analysis_plus_extended.size();
    if (present < expected_total) {
      quality.missing = static_cast<uint32_t>(expected_total - present);
    }
    quality.late_start =
        static_cast<double>(view.historical.size()) <
        config_.min_historical_coverage * static_cast<double>(expected_historical);
    // Dark at the close: the newest sample should be within ~one tick of
    // as_of; two ticks of slack tolerates boundary jitter from skew.
    quality.early_end =
        stamps.empty() || (view.as_of - stamps.back()) > 2 * dt;

    const double gap_budget =
        config_.max_gap_fraction * static_cast<double>(expected_total);
    const bool gappy = static_cast<double>(quality.missing) > gap_budget;
    if (quality.non_finite > 0 || quality.negative > 0) {
      quality.verdict = QualityVerdict::kCorrupt;
    } else if (quality.late_start || quality.early_end) {
      quality.verdict = QualityVerdict::kFlapping;
    } else if (gappy) {
      quality.verdict = QualityVerdict::kGappy;
    }
  } else {
    // Too few recent samples to infer the grid. With historical data present
    // but (at most) one recent sample, the series went dark mid-window.
    quality.early_end = !view.historical.empty() && stamps.size() <= 1;
    if (quality.non_finite > 0 || quality.negative > 0) {
      quality.verdict = QualityVerdict::kCorrupt;
    } else if (quality.early_end) {
      quality.verdict = QualityVerdict::kFlapping;
    }
  }
  return quality;
}

bool Sanitizer::ShouldQuarantine(QualityVerdict verdict) const {
  if (!config_.enabled) {
    return false;
  }
  switch (verdict) {
    case QualityVerdict::kOk:
      return false;
    case QualityVerdict::kGappy:
      return config_.quarantine_gappy;
    case QualityVerdict::kFlapping:
      return config_.quarantine_flapping;
    case QualityVerdict::kCorrupt:
      return config_.quarantine_corrupt;
  }
  return false;
}

}  // namespace fbdetect
