#include "src/core/clustering_alternatives.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <unordered_map>

#include "src/common/check.h"
#include "src/common/random.h"

namespace fbdetect {
namespace {

double Distance2(const std::vector<double>& a, const std::vector<double>& b) {
  double d2 = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    d2 += d * d;
  }
  return d2;
}

}  // namespace

std::vector<int> KMeansCluster(const std::vector<std::vector<double>>& items, int k,
                               int max_iterations, uint64_t seed) {
  const size_t n = items.size();
  std::vector<int> assignment(n, 0);
  if (n == 0 || k <= 1) {
    return assignment;
  }
  k = std::min<int>(k, static_cast<int>(n));
  const size_t dims = items[0].size();
  Rng rng(seed);

  // k-means++ seeding.
  std::vector<std::vector<double>> centroids;
  centroids.push_back(items[rng.NextUint64(n)]);
  std::vector<double> min_d2(n, 0.0);
  while (static_cast<int>(centroids.size()) < k) {
    double total = 0.0;
    for (size_t i = 0; i < n; ++i) {
      double best = std::numeric_limits<double>::infinity();
      for (const auto& centroid : centroids) {
        best = std::min(best, Distance2(items[i], centroid));
      }
      min_d2[i] = best;
      total += best;
    }
    if (total <= 0.0) {
      centroids.push_back(items[rng.NextUint64(n)]);
      continue;
    }
    double target = rng.NextDouble() * total;
    size_t chosen = n - 1;
    for (size_t i = 0; i < n; ++i) {
      target -= min_d2[i];
      if (target <= 0.0) {
        chosen = i;
        break;
      }
    }
    centroids.push_back(items[chosen]);
  }

  // Lloyd iterations.
  for (int iteration = 0; iteration < max_iterations; ++iteration) {
    bool changed = false;
    for (size_t i = 0; i < n; ++i) {
      int best = 0;
      double best_d2 = Distance2(items[i], centroids[0]);
      for (int c = 1; c < k; ++c) {
        const double d2 = Distance2(items[i], centroids[static_cast<size_t>(c)]);
        if (d2 < best_d2) {
          best_d2 = d2;
          best = c;
        }
      }
      if (assignment[i] != best) {
        assignment[i] = best;
        changed = true;
      }
    }
    if (!changed) {
      break;
    }
    std::vector<std::vector<double>> sums(static_cast<size_t>(k),
                                          std::vector<double>(dims, 0.0));
    std::vector<int> counts(static_cast<size_t>(k), 0);
    for (size_t i = 0; i < n; ++i) {
      const size_t c = static_cast<size_t>(assignment[i]);
      ++counts[c];
      for (size_t d = 0; d < dims; ++d) {
        sums[c][d] += items[i][d];
      }
    }
    for (int c = 0; c < k; ++c) {
      if (counts[static_cast<size_t>(c)] > 0) {
        for (size_t d = 0; d < dims; ++d) {
          centroids[static_cast<size_t>(c)][d] =
              sums[static_cast<size_t>(c)][d] / counts[static_cast<size_t>(c)];
        }
      }
    }
  }
  return assignment;
}

std::vector<int> HierarchicalCluster(const std::vector<std::vector<double>>& items,
                                     double distance_threshold) {
  const size_t n = items.size();
  // Single linkage == connected components of the "distance < threshold"
  // graph; union-find keeps it O(n^2 alpha).
  std::vector<int> parent(n);
  for (size_t i = 0; i < n; ++i) {
    parent[i] = static_cast<int>(i);
  }
  std::function<int(int)> find = [&](int x) {
    while (parent[static_cast<size_t>(x)] != x) {
      parent[static_cast<size_t>(x)] =
          parent[static_cast<size_t>(parent[static_cast<size_t>(x)])];
      x = parent[static_cast<size_t>(x)];
    }
    return x;
  };
  const double threshold2 = distance_threshold * distance_threshold;
  for (size_t i = 0; i + 1 < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      if (Distance2(items[i], items[j]) < threshold2) {
        parent[static_cast<size_t>(find(static_cast<int>(i)))] =
            find(static_cast<int>(j));
      }
    }
  }
  // Compact component ids.
  std::unordered_map<int, int> remap;
  std::vector<int> assignment(n, 0);
  for (size_t i = 0; i < n; ++i) {
    const int root = find(static_cast<int>(i));
    const auto [it, inserted] = remap.emplace(root, static_cast<int>(remap.size()));
    assignment[i] = it->second;
  }
  return assignment;
}

double SilhouetteScore(const std::vector<std::vector<double>>& items,
                       const std::vector<int>& assignment) {
  const size_t n = items.size();
  if (n < 2 || CountClusters(assignment) < 2) {
    return 0.0;
  }
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    // Mean distance to own cluster (a) and to the nearest other cluster (b).
    std::unordered_map<int, double> sum_by_cluster;
    std::unordered_map<int, int> count_by_cluster;
    for (size_t j = 0; j < n; ++j) {
      if (j == i) {
        continue;
      }
      sum_by_cluster[assignment[j]] += std::sqrt(Distance2(items[i], items[j]));
      ++count_by_cluster[assignment[j]];
    }
    const int own = assignment[i];
    const int own_count = count_by_cluster.count(own) != 0 ? count_by_cluster[own] : 0;
    if (own_count == 0) {
      continue;  // Singleton: contributes 0.
    }
    const double a = sum_by_cluster[own] / own_count;
    double b = std::numeric_limits<double>::infinity();
    for (const auto& [cluster, sum] : sum_by_cluster) {
      if (cluster != own) {
        b = std::min(b, sum / count_by_cluster[cluster]);
      }
    }
    if (!std::isfinite(b)) {
      continue;
    }
    const double denom = std::max(a, b);
    if (denom > 0.0) {
      total += (b - a) / denom;
    }
  }
  return total / static_cast<double>(n);
}

int CountClusters(const std::vector<int>& assignment) {
  std::unordered_map<int, bool> seen;
  for (int cluster : assignment) {
    seen[cluster] = true;
  }
  return static_cast<int>(seen.size());
}

}  // namespace fbdetect
