// RegressionFingerprint (PR 3): the per-survivor text/shape artifacts that
// the funnel stages used to re-derive over and over — the canonical metric
// string, its tokenized term vector, its hashed 2/3-gram set, and the
// metric-independent part of the SOM feature vector. Computed exactly once
// (in parallel, right after the scan) and threaded through
// SameRegressionMerger, SOMDedup, PairwiseDedup, and root cause, so no
// funnel stage calls metric.ToString(), TokenizeIdentifier, or gram
// materialization on the hot path again.
//
// Lifetime rules: a fingerprint describes the Regression it was computed
// from and travels WITH it (FunnelCandidate bundles the two). Stages may
// move candidates freely — every field is self-contained — but a stage that
// mutates `regression.metric`, `analysis`, `delta`, `relative_delta`,
// `change_index`, or `candidate_root_causes` invalidates the fingerprint and
// must recompute it. No funnel stage does; they only attach results
// (importance, som_cluster, merged_count, root_causes).
#ifndef FBDETECT_SRC_CORE_FINGERPRINT_H_
#define FBDETECT_SRC_CORE_FINGERPRINT_H_

#include <cstddef>
#include <string>
#include <vector>

#include "src/core/regression.h"
#include "src/stats/text.h"

namespace fbdetect {

struct FingerprintConfig {
  // Sizing of the SOM shape-feature block; must match the SomDedupConfig the
  // cohort is clustered with.
  size_t fourier_coefficients = 4;
  size_t root_cause_bitmap_dims = 8;
  // Skip the SOM feature block entirely (cheap fingerprints for stages that
  // only need the text features, e.g. PairwiseDedup's compat path).
  bool som_features = true;
};

struct RegressionFingerprint {
  // metric.ToString(), computed once.
  std::string metric_string;
  // Hashed token term vector of metric_string (SameRegressionMerger key is
  // the string; PairwiseDedup's text cosine runs on this).
  TokenVector tokens;
  // Hashed 2/3-gram multiset of metric_string (SOMDedup's TF-IDF corpus and
  // embedding input).
  HashedGrams grams;
  // Metric-independent SOM features: Fourier magnitudes, variance, change
  // position, absolute/relative magnitude, root-cause bitmap. SOMDedup
  // appends the cohort-fitted TF-IDF metric embedding (from `grams`) to
  // form the full clustering vector. Empty when som_features was false.
  std::vector<double> som_base;
};

// A regression plus its fingerprint: the unit that flows through the funnel.
struct FunnelCandidate {
  Regression regression;
  RegressionFingerprint fingerprint;
};

// Computes the fingerprint of one regression. Pure; safe to call
// concurrently for distinct regressions.
RegressionFingerprint ComputeFingerprint(const Regression& regression,
                                         const FingerprintConfig& config);

}  // namespace fbdetect

#endif  // FBDETECT_SRC_CORE_FINGERPRINT_H_
