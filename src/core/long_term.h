// Long-term regression detection (§5.3): STL decomposition first, then
// trend-level regression detection, then change-point location.
//
// Unlike the short-term path, seasonality removal runs FIRST (smoothing helps
// gradual-regression detection and the path is insensitive to sudden steps),
// and no went-away detector is used.
//
// Regression-detection step: baseline = max(mean at the start of the
// analysis window, mean of the historical window); current = min(mean at the
// end of the analysis window, mean of the extended window); report when
// current - baseline exceeds the threshold.
//
// Change-point step: if a linear fit of the normalized trend has low RMSE the
// change is a gradual ramp starting at the trend's beginning; otherwise the
// normal-loss dynamic-programming search locates the split.
#ifndef FBDETECT_SRC_CORE_LONG_TERM_H_
#define FBDETECT_SRC_CORE_LONG_TERM_H_

#include <optional>

#include "src/core/regression.h"
#include "src/core/scan_view.h"
#include "src/core/workload_config.h"
#include "src/tsdb/metric_id.h"
#include "src/tsdb/window.h"

namespace fbdetect {

class LongTermDetector {
 public:
  explicit LongTermDetector(const DetectionConfig& config) : config_(config) {}

  // Zero-copy core: consumes a pre-oriented ScanView (no window copies are
  // made on the non-detecting path; the returned Regression stores the STL
  // trend, as before). DetectSeasonality underneath runs the O(n log n) FFT
  // autocorrelation for the long windows this path sees.
  std::optional<Regression> Detect(const MetricId& metric, const ScanView& view) const;

  // Convenience: orients `windows` by the metric's kind first.
  std::optional<Regression> Detect(const MetricId& metric, const WindowExtract& windows) const;

 private:
  const DetectionConfig& config_;
};

}  // namespace fbdetect

#endif  // FBDETECT_SRC_CORE_LONG_TERM_H_
