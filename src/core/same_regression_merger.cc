#include "src/core/same_regression_merger.h"

#include <cstdlib>

namespace fbdetect {

bool SameRegressionMerger::Admit(const Regression& regression) {
  return Admit(regression, regression.metric.ToString());
}

bool SameRegressionMerger::Admit(const Regression& regression,
                                 const std::string& metric_string) {
  std::vector<TimePoint>& times = seen_[metric_string];
  for (TimePoint t : times) {
    if (std::llabs(static_cast<long long>(t - regression.change_time)) <=
        static_cast<long long>(tolerance_)) {
      return false;
    }
  }
  times.push_back(regression.change_time);
  return true;
}

std::vector<Regression> SameRegressionMerger::Filter(std::vector<Regression> regressions) {
  std::vector<Regression> admitted;
  for (Regression& regression : regressions) {
    if (Admit(regression)) {
      admitted.push_back(std::move(regression));
    }
  }
  return admitted;
}

std::vector<FunnelCandidate> SameRegressionMerger::Filter(
    std::vector<FunnelCandidate> candidates) {
  std::vector<FunnelCandidate> admitted;
  for (FunnelCandidate& candidate : candidates) {
    if (Admit(candidate.regression, candidate.fingerprint.metric_string)) {
      admitted.push_back(std::move(candidate));
    }
  }
  return admitted;
}

}  // namespace fbdetect
