// Stage 2 of the short-term path: the went-away detector (§5.2.2), the
// technique that filters 99.7% of raw change points in production.
//
// A candidate regression is kept only if the predicate
//   NewPattern OR [SignificantRegression AND LastingTrend AND
//                  (NOT RegressionGoneAway)]
// holds, where all four terms are computed over the SAX discretization of
// the windows (N=20 buckets, 3% validity) and robust trend statistics:
//
//  * NewPattern — the post-regression SAX string is mostly made of letters
//    that are invalid in the historical window (a pattern never seen
//    before), unless its level is below the lowest valid historical bucket
//    (new pattern but no cost increase).
//  * SignificantRegression — the largest post-regression letter reaches the
//    largest valid historical letter, and P90(post) exceeds both
//    P95(historical) and P90(previous day).
//  * LastingTrend — Mann–Kendall on the post-regression window and on the
//    whole analysis window; if an upward trend exists, its Theil–Sen slope
//    (the smaller of the two windows' slopes, to avoid over/under-
//    estimation) must project to at least coefficient × MAD × 1.4826 over
//    the post window. A step regression with a stable elevated level (no
//    trend either way) also counts as lasting.
//  * RegressionGoneAway — the last few data points have recovered to near
//    the baseline (final sanity check).
#ifndef FBDETECT_SRC_CORE_WENT_AWAY_H_
#define FBDETECT_SRC_CORE_WENT_AWAY_H_

#include "src/core/regression.h"
#include "src/core/scan_view.h"
#include "src/core/workload_config.h"

namespace fbdetect {

struct WentAwayVerdict {
  bool keep = false;  // True = real regression; false = transient, filter out.
  // Term values, exposed for tests and the Fig. 7 bench.
  bool new_pattern = false;
  bool significant = false;
  bool lasting_trend = false;
  bool gone_away = false;
};

class WentAwayDetector {
 public:
  explicit WentAwayDetector(const DetectionConfig& config) : config_(config) {}

  // Zero-copy core: evaluates `candidate` against the oriented windows of
  // `view` (the SAX range reference is view.full — historical + analysis +
  // extended — with no materialization). A points-per-day hint (from the
  // metric's resolution) lets the previous-day percentile term pick the
  // right slice; pass 0 when unknown to fall back to the last quarter of the
  // historical window.
  WentAwayVerdict Evaluate(const ScanView& view, const ScanCandidate& candidate,
                           size_t points_per_day) const;

  // Convenience: re-evaluates a stored Regression (copies its windows into a
  // contiguous scratch first).
  WentAwayVerdict Evaluate(const Regression& regression, size_t points_per_day) const;

 private:
  const DetectionConfig& config_;
};

}  // namespace fbdetect

#endif  // FBDETECT_SRC_CORE_WENT_AWAY_H_
