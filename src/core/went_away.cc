#include "src/core/went_away.h"

#include <algorithm>
#include <cmath>
#include <span>
#include <string>
#include <vector>

#include "src/stats/descriptive.h"
#include "src/stats/trend.h"
#include "src/tsa/sax.h"

namespace fbdetect {

WentAwayVerdict WentAwayDetector::Evaluate(const ScanView& view,
                                           const ScanCandidate& candidate,
                                           size_t points_per_day) const {
  WentAwayVerdict verdict;
  const std::span<const double> historical = view.historical();
  const std::span<const double> analysis = view.analysis_plus_extended();
  if (historical.empty() || analysis.empty() ||
      candidate.change_index >= analysis.size()) {
    return verdict;
  }
  const std::span<const double> post = analysis.subspan(candidate.change_index);

  // SAX over the combined range so historical and post share bucket
  // boundaries — view.full IS that combined range, contiguous and already
  // oriented, so no concatenation is materialized. The encoder's validity is
  // computed from the historical distribution only.
  SaxConfig sax_config;
  sax_config.num_buckets = config_.sax_buckets;
  sax_config.min_bucket_fraction = config_.sax_min_bucket_fraction;
  // Bucket boundaries from the combined span; validity recomputed over the
  // historical span by counting historical encodings against the combined
  // range encoder.
  const SaxEncoder range_encoder(view.full, sax_config);
  // Validity per letter over the HISTORICAL window. A non-finite value that
  // survived the sanitizer (sub-threshold NaN fraction, or the gate disabled)
  // must neither vote for a bucket nor index out of the count table, so skip
  // it and bounds-check the encoding before indexing.
  std::vector<size_t> hist_counts(static_cast<size_t>(range_encoder.num_buckets()), 0);
  for (double v : historical) {
    if (!std::isfinite(v)) {
      continue;
    }
    const int bucket = range_encoder.Encode(v) - 'a';
    if (bucket < 0 || bucket >= range_encoder.num_buckets()) {
      continue;
    }
    ++hist_counts[static_cast<size_t>(bucket)];
  }
  const double min_count =
      sax_config.min_bucket_fraction * static_cast<double>(historical.size());
  auto is_valid = [&](char letter) {
    const int bucket = letter - 'a';
    if (bucket < 0 || bucket >= range_encoder.num_buckets()) {
      return false;
    }
    const size_t count = hist_counts[static_cast<size_t>(bucket)];
    return count > 0 && static_cast<double>(count) >= min_count;
  };
  char largest_valid = '\0';
  char lowest_valid = '\0';
  for (int b = 0; b < range_encoder.num_buckets(); ++b) {
    const char letter = static_cast<char>('a' + b);
    if (is_valid(letter)) {
      largest_valid = letter;
      if (lowest_valid == '\0') {
        lowest_valid = letter;
      }
    }
  }

  const std::string post_sax = range_encoder.EncodeSeries(post);

  // --- NewPattern ---
  size_t invalid = 0;
  for (char letter : post_sax) {
    if (!is_valid(letter)) {
      ++invalid;
    }
  }
  const double invalid_fraction =
      post_sax.empty() ? 1.0
                       : static_cast<double>(invalid) / static_cast<double>(post_sax.size());
  if (invalid_fraction >= config_.new_pattern_invalid_fraction) {
    // New pattern — unless the level is BELOW the lowest valid bucket, which
    // means a new pattern without a cost increase.
    const double post_mean = Mean(post);
    const bool below_history =
        lowest_valid != '\0' && post_mean < range_encoder.BucketLowerBound(lowest_valid);
    verdict.new_pattern = !below_history;
  }

  // --- SignificantRegression ---
  char largest_post = '\0';
  for (char letter : post_sax) {
    largest_post = std::max(largest_post, letter);
  }
  bool significant = largest_valid != '\0' && largest_post >= largest_valid;
  if (significant) {
    const double p90_post = Percentile(post, 90.0);
    const double p95_hist = Percentile(historical, 95.0);
    // "Previous day": the trailing day of the historical window when the
    // resolution is known, else its last quarter.
    const size_t day_points =
        points_per_day > 0
            ? std::min(points_per_day, historical.size())
            : std::max<size_t>(1, historical.size() / 4);
    const std::span<const double> previous_day =
        historical.subspan(historical.size() - day_points);
    const double p90_prev_day = Percentile(previous_day, 90.0);
    significant = p90_post > p95_hist && p90_post > p90_prev_day;
  }
  verdict.significant = significant;

  // --- LastingTrend ---
  const MannKendallResult mk_post = MannKendallTest(post, 0.05);
  const MannKendallResult mk_full = MannKendallTest(analysis, 0.05);
  const bool upward_post = mk_post.direction == TrendDirection::kIncreasing;
  const bool upward_full = mk_full.direction == TrendDirection::kIncreasing;
  if (upward_post || upward_full) {
    double slope = 0.0;
    if (upward_post && upward_full) {
      const TheilSenResult ts_post = TheilSenEstimate(post);
      const TheilSenResult ts_full = TheilSenEstimate(analysis);
      slope = std::min(ts_post.slope, ts_full.slope);  // Lower slope wins.
    } else if (upward_post) {
      slope = TheilSenEstimate(post).slope;
    } else {
      slope = TheilSenEstimate(analysis).slope;
    }
    // Threshold: coefficient x MAD x 1.4826 of the historical window. The
    // slope is per tick; project it over the post window to compare a total
    // movement against the noise scale.
    const double mad = MedianAbsoluteDeviation(historical, /*normalized=*/true);
    const double threshold = config_.trend_coefficient * mad;
    verdict.lasting_trend =
        slope * static_cast<double>(std::max<size_t>(post.size(), 1)) >= threshold;
  } else if (mk_post.direction != TrendDirection::kDecreasing) {
    // Step regression with a stable elevated plateau: no trend either way,
    // but the level persists — that IS lasting.
    verdict.lasting_trend = true;
  }

  // --- RegressionGoneAway ---
  const size_t tail = std::min<size_t>(std::max<size_t>(config_.gone_away_tail_points, 1),
                                       post.size());
  const double tail_mean = Mean(post.subspan(post.size() - tail));
  verdict.gone_away =
      tail_mean <= candidate.baseline_mean +
                       config_.gone_away_recovery_fraction * candidate.delta;

  verdict.keep = verdict.new_pattern ||
                 (verdict.significant && verdict.lasting_trend && !verdict.gone_away);
  return verdict;
}

WentAwayVerdict WentAwayDetector::Evaluate(const Regression& regression,
                                           size_t points_per_day) const {
  std::vector<double> scratch;
  const ScanView view = ViewOfRegression(regression, scratch);
  return Evaluate(view, CandidateOfRegression(regression), points_per_day);
}

}  // namespace fbdetect
