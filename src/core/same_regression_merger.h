// SameRegressionMerger (Table 3): the same regression keeps re-appearing in
// successive overlapping analysis windows until it ages out of the analysis
// window. This stage drops a regression when one with the same metric and a
// change point within `tolerance` was already admitted by a prior run.
#ifndef FBDETECT_SRC_CORE_SAME_REGRESSION_MERGER_H_
#define FBDETECT_SRC_CORE_SAME_REGRESSION_MERGER_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "src/core/fingerprint.h"
#include "src/core/regression.h"

namespace fbdetect {

class SameRegressionMerger {
 public:
  explicit SameRegressionMerger(Duration tolerance) : tolerance_(tolerance) {}

  // Returns true (and records the regression) when it is NEW; false when it
  // duplicates an already-seen one. The second form takes the precomputed
  // metric string (fingerprint path) instead of calling ToString().
  bool Admit(const Regression& regression);
  bool Admit(const Regression& regression, const std::string& metric_string);

  // Filters a batch, keeping only new regressions.
  std::vector<Regression> Filter(std::vector<Regression> regressions);

  // Funnel form: keys on the candidates' cached metric strings.
  std::vector<FunnelCandidate> Filter(std::vector<FunnelCandidate> candidates);

  size_t seen_count() const { return seen_.size(); }

 private:
  Duration tolerance_;
  // metric-id string -> change times already reported for that metric.
  std::unordered_map<std::string, std::vector<TimePoint>> seen_;
};

}  // namespace fbdetect

#endif  // FBDETECT_SRC_CORE_SAME_REGRESSION_MERGER_H_
