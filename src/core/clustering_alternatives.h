// The clustering alternatives the paper evaluated against SOM for
// SOMDedup and rejected for hyperparameter fragility (§5.5.1 "Discussion of
// alternatives"):
//  * K-means — needs the number of clusters K up front; iterating over K is
//    expensive and no single K fits diverse workloads;
//  * agglomerative hierarchical clustering — needs a cut level (distance
//    threshold); automated selection via the Silhouette score often fails to
//    converge to a good value.
// Both are implemented here, together with the Silhouette score, so the
// ablation bench can reproduce the comparison.
#ifndef FBDETECT_SRC_CORE_CLUSTERING_ALTERNATIVES_H_
#define FBDETECT_SRC_CORE_CLUSTERING_ALTERNATIVES_H_

#include <cstdint>
#include <vector>

namespace fbdetect {

// K-means with k-means++ seeding. Returns per-item cluster ids in [0, k).
std::vector<int> KMeansCluster(const std::vector<std::vector<double>>& items, int k,
                               int max_iterations, uint64_t seed);

// Single-linkage agglomerative clustering cut at `distance_threshold`:
// items closer than the threshold (transitively) share a cluster. Returns
// per-item cluster ids (compacted, 0-based).
std::vector<int> HierarchicalCluster(const std::vector<std::vector<double>>& items,
                                     double distance_threshold);

// Mean Silhouette coefficient of an assignment; in [-1, 1], higher is
// better. Items in singleton clusters contribute 0. Returns 0 when there are
// fewer than 2 clusters.
double SilhouetteScore(const std::vector<std::vector<double>>& items,
                       const std::vector<int>& assignment);

// Number of distinct clusters in an assignment.
int CountClusters(const std::vector<int>& assignment);

}  // namespace fbdetect

#endif  // FBDETECT_SRC_CORE_CLUSTERING_ALTERNATIVES_H_
