#include "src/core/detector_state.h"

#include <utility>

namespace fbdetect {

// --- StreamingDetectorState ---

StreamingDetectorState::StreamingDetectorState(const StreamingConfig& config)
    : config_(&config),
      rolling_(config.rolling_window),
      cusum_(config.cusum),
      bocpd_(config.bocpd) {}

bool StreamingDetectorState::OnAppend(TimePoint timestamp, double value) {
  rolling_.Add(timestamp, value);
  const bool cusum_fired = cusum_.Observe(value);
  bocpd_.Observe(value);
  const double change_probability =
      bocpd_.change_probability(config_->change_within);
  // BOCPD only counts once it has seen enough points to have a meaningful
  // posterior — early on, all mass sits at short run lengths by construction.
  const bool bocpd_fired =
      bocpd_.observations() > static_cast<int64_t>(config_->change_within) * 2 &&
      change_probability > config_->change_probability_threshold;
  if (alert_active_ || (!cusum_fired && !bocpd_fired)) {
    return false;
  }
  alert_active_ = true;
  alert_at_ = timestamp;
  alert_direction_ = cusum_.direction();
  alert_change_probability_ = change_probability;
  return true;
}

void StreamingDetectorState::DescribeAlert(StreamingAlert& alert) const {
  alert.triggered_at = alert_at_;
  alert.direction = alert_direction_;
  alert.change_probability = alert_change_probability_;
  alert.baseline_mean = cusum_.baseline_mean();
  alert.rolling_mean = rolling_.mean();
}

// --- DetectorStateStore ---

DetectorStateStore::DetectorStateStore(Mode mode, StreamingConfig config)
    : mode_(mode), config_(std::move(config)) {}

DetectorState& DetectorStateStore::StateFor(const InternedMetricId& id) {
  Stripe& stripe = stripes_[StripeIndex(id)];
  {
    std::shared_lock lock(stripe.mutex);
    const auto it = stripe.states.find(id);
    if (it != stripe.states.end()) {
      return *it->second;
    }
  }
  std::unique_lock lock(stripe.mutex);
  auto& slot = stripe.states[id];
  if (slot == nullptr) {
    if (mode_ == Mode::kStreaming) {
      slot = std::make_unique<StreamingDetectorState>(config_);
    } else {
      slot = std::make_unique<BatchDetectorState>();
    }
  }
  return *slot;
}

DetectorState* DetectorStateStore::FindState(const InternedMetricId& id) {
  Stripe& stripe = stripes_[StripeIndex(id)];
  std::shared_lock lock(stripe.mutex);
  const auto it = stripe.states.find(id);
  return it != stripe.states.end() ? it->second.get() : nullptr;
}

void DetectorStateStore::OnAppend(const InternedMetricId& id,
                                  std::span<const TimePoint> timestamps,
                                  std::span<const double> values) {
  DetectorState& state = StateFor(id);
  for (size_t i = 0; i < timestamps.size(); ++i) {
    if (!state.OnAppend(timestamps[i], values[i])) {
      continue;
    }
    StreamingAlert alert;
    alert.id = id;
    state.DescribeAlert(alert);
    std::lock_guard<std::mutex> lock(alerts_mutex_);
    ++alerts_raised_;
    alerts_.push_back(alert);
  }
}

size_t DetectorStateStore::series_count() const {
  size_t count = 0;
  for (const Stripe& stripe : stripes_) {
    std::shared_lock lock(stripe.mutex);
    count += stripe.states.size();
  }
  return count;
}

uint64_t DetectorStateStore::alerts_raised() const {
  std::lock_guard<std::mutex> lock(alerts_mutex_);
  return alerts_raised_;
}

std::vector<StreamingAlert> DetectorStateStore::DrainAlerts() {
  std::lock_guard<std::mutex> lock(alerts_mutex_);
  return std::exchange(alerts_, {});
}

}  // namespace fbdetect
