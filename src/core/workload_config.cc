#include "src/core/workload_config.h"

namespace fbdetect {
namespace {

DetectionConfig Base(std::string name, ThresholdMode mode, double threshold, Duration rerun,
                     Duration historical, Duration analysis, Duration extended) {
  DetectionConfig config;
  config.name = std::move(name);
  config.threshold_mode = mode;
  config.threshold = threshold;
  config.rerun_interval = rerun;
  config.windows.historical = historical;
  config.windows.analysis = analysis;
  config.windows.extended = extended;
  return config;
}

}  // namespace

DetectionConfig FrontFaaSLargeConfig() {
  return Base("FrontFaaS (large)", ThresholdMode::kAbsolute, 0.03, Minutes(30), Days(10),
              Hours(3), 0);
}

DetectionConfig FrontFaaSSmallConfig() {
  return Base("FrontFaaS (small)", ThresholdMode::kAbsolute, 0.00005, Hours(2), Days(10),
              Hours(4), Hours(6));
}

DetectionConfig PythonFaaSLargeConfig() {
  return Base("PythonFaaS (large)", ThresholdMode::kAbsolute, 0.005, Hours(1), Days(10),
              Hours(6), 0);
}

DetectionConfig PythonFaaSSmallConfig() {
  return Base("PythonFaaS (small)", ThresholdMode::kAbsolute, 0.0003, Hours(4), Days(10),
              Hours(6), Hours(6));
}

DetectionConfig TaoFrontFaaSConfig() {
  return Base("TAO (FrontFaaS)", ThresholdMode::kAbsolute, 0.0005, Hours(2), Days(10), Hours(4),
              Days(1));
}

DetectionConfig TaoNonFrontFaaSConfig() {
  return Base("TAO (non-FrontFaaS)", ThresholdMode::kAbsolute, 0.0005, Hours(1), Days(10),
              Days(1), Hours(6));
}

DetectionConfig AdServingShortConfig() {
  return Base("AdServing (short)", ThresholdMode::kAbsolute, 0.002, Hours(6), Days(10), Days(1),
              Hours(12));
}

DetectionConfig AdServingLongConfig() {
  DetectionConfig config = Base("AdServing (long)", ThresholdMode::kAbsolute, 0.001, Days(1),
                                Days(16), Days(9), 0);
  config.enable_long_term = true;
  return config;
}

DetectionConfig InvoicerShortConfig() {
  return Base("Invoicer (short)", ThresholdMode::kAbsolute, 0.005, Hours(12), Days(14), Days(1),
              Days(1));
}

DetectionConfig CtSupplyShortConfig() {
  return Base("CT-supply (short)", ThresholdMode::kRelative, 0.05, Hours(12), Days(7), Days(1),
              Days(1));
}

DetectionConfig CtSupplyLongConfig() {
  return Base("CT-supply (long)", ThresholdMode::kRelative, 0.05, Hours(12), Days(10), Days(7),
              Days(1));
}

DetectionConfig CtDemandConfig() {
  return Base("CT-demand", ThresholdMode::kRelative, 0.05, Hours(12), Days(7), Days(1), 0);
}

std::vector<DetectionConfig> AllTable1Configs() {
  return {FrontFaaSLargeConfig(),  FrontFaaSSmallConfig(), PythonFaaSLargeConfig(),
          PythonFaaSSmallConfig(), TaoFrontFaaSConfig(),   TaoNonFrontFaaSConfig(),
          AdServingShortConfig(),  AdServingLongConfig(),  InvoicerShortConfig(),
          CtSupplyShortConfig(),   CtSupplyLongConfig(),   CtDemandConfig()};
}

}  // namespace fbdetect
