#include "src/core/regression.h"

#include <cstdio>

namespace fbdetect {

std::string Regression::Summary() const {
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer), "%s %s@t=%lld delta=%+.6f (%+.2f%%) p=%.4g",
                metric.ToString().c_str(), long_term ? "[long]" : "[short]",
                static_cast<long long>(change_time), delta, relative_delta * 100.0, p_value);
  return std::string(buffer);
}

bool LowerIsRegression(MetricKind kind) {
  switch (kind) {
    case MetricKind::kThroughput:
    case MetricKind::kMaxThroughput:
      return true;
    default:
      return false;
  }
}

}  // namespace fbdetect
