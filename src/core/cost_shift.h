// Cost-shift detector (§5.4).
//
// A subroutine-level regression may be an artifact of refactoring that moved
// code (and hence cost) from one subroutine to another without changing any
// higher-level total. The detector examines "cost domains" — groups of
// subroutines within which a shift plausibly occurred — and filters the
// regression when a domain's total cost barely moved while the regressed
// member's cost jumped.
//
// Built-in domains (each a CostDomainDetector):
//  * upstream callers — a caller's gCPU already includes the regressed
//    subroutine's cost, so a pure shift among its callees leaves it flat;
//  * enclosing class — sum of class members' gCPU;
//  * metadata prefix — subroutines sharing a SetFrameMetadata prefix;
//  * endpoint prefix — endpoints with a common name prefix;
//  * commit — all subroutines modified by one code commit.
// Users can register custom detectors.
//
// Per-domain decision (§5.4's three checks):
//  1. domain absent before the regression (new subroutine) -> not a shift;
//  2. domain cost >> regression delta (default 50x) -> domain excluded
//     (its seasonal wiggle would swamp the effect);
//  3. domain delta negligible vs regression delta (default < 25%) -> the
//     regression IS a shift within this domain -> filter it.
#ifndef FBDETECT_SRC_CORE_COST_SHIFT_H_
#define FBDETECT_SRC_CORE_COST_SHIFT_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/core/code_info.h"
#include "src/core/regression.h"
#include "src/core/workload_config.h"
#include "src/fleet/change_log.h"
#include "src/tsdb/database.h"

namespace fbdetect {

// One cost domain: a name plus the member metrics whose series sum to the
// domain's cost.
struct CostDomain {
  std::string name;
  std::vector<MetricId> members;
};

// Produces the cost domains relevant to one regression.
class CostDomainDetector {
 public:
  virtual ~CostDomainDetector() = default;
  virtual std::string name() const = 0;
  virtual std::vector<CostDomain> DomainsFor(const Regression& regression) const = 0;
};

struct CostShiftConfig {
  double large_domain_ratio = 50.0;   // Check 2: exclude domains bigger than
                                      // ratio x regression delta.
  double negligible_ratio = 0.25;     // Check 3: domain delta below this
                                      // fraction of the regression delta.
  size_t min_window_points = 4;
};

struct CostShiftVerdict {
  bool is_cost_shift = false;
  std::string domain;  // The domain that explained the shift, when any.
};

class CostShiftDetector {
 public:
  CostShiftDetector(const TimeSeriesDatabase* db, CostShiftConfig config);

  // Registers a domain detector (takes ownership).
  void AddDomainDetector(std::unique_ptr<CostDomainDetector> detector);

  // Convenience: registers the built-in detectors that apply given the
  // available context (callers/class need `code_info`; commit domains need
  // `change_log`). Pointers may be null; they must outlive the detector.
  void AddDefaultDetectors(const CodeInfoProvider* code_info, const ChangeLog* change_log);

  CostShiftVerdict Evaluate(const Regression& regression) const;

 private:
  const TimeSeriesDatabase* db_;
  CostShiftConfig config_;
  std::vector<std::unique_ptr<CostDomainDetector>> detectors_;
};

// ---- Built-in domain detectors (exposed for tests) ----

class CallerDomainDetector : public CostDomainDetector {
 public:
  explicit CallerDomainDetector(const CodeInfoProvider* code_info) : code_info_(code_info) {}
  std::string name() const override { return "upstream_caller"; }
  std::vector<CostDomain> DomainsFor(const Regression& regression) const override;

 private:
  const CodeInfoProvider* code_info_;
};

class ClassDomainDetector : public CostDomainDetector {
 public:
  explicit ClassDomainDetector(const CodeInfoProvider* code_info) : code_info_(code_info) {}
  std::string name() const override { return "enclosing_class"; }
  std::vector<CostDomain> DomainsFor(const Regression& regression) const override;

 private:
  const CodeInfoProvider* code_info_;
};

class MetadataPrefixDomainDetector : public CostDomainDetector {
 public:
  explicit MetadataPrefixDomainDetector(const TimeSeriesDatabase* db) : db_(db) {}
  std::string name() const override { return "metadata_prefix"; }
  std::vector<CostDomain> DomainsFor(const Regression& regression) const override;

 private:
  const TimeSeriesDatabase* db_;
};

class EndpointPrefixDomainDetector : public CostDomainDetector {
 public:
  explicit EndpointPrefixDomainDetector(const TimeSeriesDatabase* db) : db_(db) {}
  std::string name() const override { return "endpoint_prefix"; }
  std::vector<CostDomain> DomainsFor(const Regression& regression) const override;

 private:
  const TimeSeriesDatabase* db_;
};

class CommitDomainDetector : public CostDomainDetector {
 public:
  CommitDomainDetector(const ChangeLog* change_log, Duration lookback)
      : change_log_(change_log), lookback_(lookback) {}
  std::string name() const override { return "commit"; }
  std::vector<CostDomain> DomainsFor(const Regression& regression) const override;

 private:
  const ChangeLog* change_log_;
  Duration lookback_;
};

}  // namespace fbdetect

#endif  // FBDETECT_SRC_CORE_COST_SHIFT_H_
