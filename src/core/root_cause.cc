#include "src/core/root_cause.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"
#include "src/stats/text.h"

namespace fbdetect {

AttributionResult GcpuAttribution(const std::vector<AttributedSample>& samples,
                                  const std::string& regressed,
                                  const std::vector<std::string>& touched) {
  AttributionResult result;
  auto contains = [](const std::vector<std::string>& stack, const std::string& name) {
    return std::find(stack.begin(), stack.end(), name) != stack.end();
  };
  for (const AttributedSample& sample : samples) {
    if (!contains(sample.stack, regressed)) {
      continue;
    }
    const double delta = sample.gcpu_after - sample.gcpu_before;
    result.regression_magnitude += delta;
    bool involves_touched = false;
    for (const std::string& name : touched) {
      if (contains(sample.stack, name)) {
        involves_touched = true;
        break;
      }
    }
    if (involves_touched) {
      result.attributed_magnitude += delta;
    }
  }
  if (result.regression_magnitude != 0.0) {
    result.fraction = result.attributed_magnitude / result.regression_magnitude;
  }
  return result;
}

RootCauseAnalyzer::RootCauseAnalyzer(const ChangeLog* change_log,
                                     const CodeInfoProvider* code_info, RootCauseConfig config)
    : change_log_(change_log), code_info_(code_info), config_(config) {
  FBD_CHECK(change_log_ != nullptr);
}

std::vector<int64_t> RootCauseAnalyzer::QuickCandidates(const Regression& regression) const {
  std::vector<int64_t> candidates;
  const std::vector<const Commit*> commits =
      change_log_->CommitsBetween(regression.metric.service,
                                  regression.change_time - config_.lookback,
                                  regression.change_time);
  for (const Commit* commit : commits) {
    for (const std::string& touched : commit->touched_subroutines) {
      if (touched == regression.metric.entity) {
        candidates.push_back(commit->id);
        break;
      }
    }
  }
  return candidates;
}

double RootCauseAnalyzer::StructuralScore(const Regression& regression,
                                          const Commit& commit) const {
  // For a regression in subroutine A, code changes that modify A itself or
  // subroutines transitively invoked by A are the prime suspects (§5.6 /
  // §1's "code and stack-trace analysis").
  const std::string& regressed = regression.metric.entity;
  if (regressed.empty()) {
    return 0.0;
  }
  double best = 0.0;
  for (const std::string& touched : commit.touched_subroutines) {
    double score = 0.0;
    if (touched == regressed) {
      score = 1.0;
    } else if (code_info_ != nullptr) {
      if (code_info_->IsDescendant(regressed, touched)) {
        score = 0.8;  // Downstream of the regressed subroutine.
      } else if (code_info_->IsDescendant(touched, regressed)) {
        score = 0.4;  // Upstream caller; its change can still matter.
      } else if (!code_info_->ClassOf(regressed).empty() &&
                 code_info_->ClassOf(touched) == code_info_->ClassOf(regressed)) {
        score = 0.3;
      }
    }
    best = std::max(best, score);
  }
  return best;
}

double RootCauseAnalyzer::TextScore(const Regression& regression, const Commit& commit) const {
  // Regression context: metric id (service, kind, subroutine). Change
  // context: title + description + touched subroutines.
  std::string regression_text = regression.metric.ToString();
  std::string change_text = commit.title + " " + commit.description;
  for (const std::string& touched : commit.touched_subroutines) {
    change_text += " " + touched;
  }
  return TextCosineSimilarity(regression_text, change_text);
}

double RootCauseAnalyzer::TimingScore(const Regression& regression, const Commit& commit) const {
  const double age = static_cast<double>(regression.change_time - commit.time);
  if (age < 0.0) {
    return 0.0;
  }
  const double tau = static_cast<double>(config_.lookback) / 3.0;
  return std::exp(-age / std::max(1.0, tau));
}

void RootCauseAnalyzer::Analyze(Regression& regression) const {
  regression.root_causes.clear();
  const std::vector<const Commit*> commits =
      change_log_->CommitsBetween(regression.metric.service,
                                  regression.change_time - config_.lookback,
                                  regression.change_time);
  std::vector<RankedCause> ranked;
  for (const Commit* commit : commits) {
    RankedCause cause;
    cause.commit_id = commit->id;
    cause.structural_score = StructuralScore(regression, *commit);
    cause.text_score = TextScore(regression, *commit);
    cause.timing_score = TimingScore(regression, *commit);
    cause.score = config_.w_structural * cause.structural_score +
                  config_.w_text * cause.text_score + config_.w_timing * cause.timing_score;
    ranked.push_back(cause);
  }
  std::sort(ranked.begin(), ranked.end(), [](const RankedCause& a, const RankedCause& b) {
    if (a.score != b.score) {
      return a.score > b.score;
    }
    return a.commit_id > b.commit_id;  // Newer commit wins ties.
  });
  // Only suggest when the top candidate clears the confidence bar (§6.3).
  if (ranked.empty() || ranked[0].score < config_.min_confidence) {
    return;
  }
  const size_t count = std::min(config_.max_suggestions, ranked.size());
  regression.root_causes.assign(ranked.begin(), ranked.begin() + static_cast<long>(count));
}

}  // namespace fbdetect
