#include "src/core/fingerprint.h"

#include "src/common/random.h"
#include "src/common/strings.h"
#include "src/stats/descriptive.h"
#include "src/stats/fourier.h"

namespace fbdetect {
namespace {

// Stable 64-bit hash for commit-id bitmap bucketing.
uint64_t MixCommitId(int64_t id) {
  uint64_t state = static_cast<uint64_t>(id) + 0x9e3779b97f4a7c15ULL;
  return SplitMix64(state);
}

}  // namespace

RegressionFingerprint ComputeFingerprint(const Regression& regression,
                                         const FingerprintConfig& config) {
  RegressionFingerprint fingerprint;
  fingerprint.metric_string = regression.metric.ToString();
  fingerprint.tokens = BuildTokenVector(TokenizeIdentifier(fingerprint.metric_string));
  HashGramsOf(fingerprint.metric_string, fingerprint.grams);
  if (!config.som_features) {
    return fingerprint;
  }
  // Shape features, in the order the pre-fingerprint SOMDedup built them.
  std::vector<double>& features = fingerprint.som_base;
  const std::vector<double> fourier =
      FourierMagnitudes(regression.analysis, config.fourier_coefficients);
  features.insert(features.end(), fourier.begin(), fourier.end());
  features.push_back(SampleVariance(regression.analysis));
  features.push_back(regression.analysis.empty()
                         ? 0.0
                         : static_cast<double>(regression.change_index) /
                               static_cast<double>(regression.analysis.size()));
  features.push_back(regression.delta);
  features.push_back(regression.relative_delta);
  // Candidate-root-cause bitmap (hashed to a fixed width).
  const size_t bitmap_begin = features.size();
  features.resize(bitmap_begin + config.root_cause_bitmap_dims, 0.0);
  for (int64_t commit : regression.candidate_root_causes) {
    features[bitmap_begin + MixCommitId(commit) % config.root_cause_bitmap_dims] = 1.0;
  }
  return fingerprint;
}

}  // namespace fbdetect
