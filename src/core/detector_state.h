// Per-series detector state for the incremental streaming scan (DESIGN §14).
//
// The scan stage runs behind this seam in two implementations:
//
//   BatchDetectorState — no incremental state. The pipeline re-runs the full
//   ExtractWindowView → OrientWindows → ChangePointStage/LongTerm flow for a
//   series whenever its TSDB version moved, and replays the cached
//   SeriesVerdict when it did not. Because the evaluation is exactly the
//   batch flow, gated output is byte-identical to the batch oracle whenever
//   every series is dirty at a run (live-ingest steady state).
//
//   StreamingDetectorState — additionally holds incremental per-point state
//   (rolling Welford window moments, an online two-sided CUSUM, and a BOCPD
//   run-length posterior), updated in amortized O(1) per ingested point from
//   the TSDB append observer (WriteBatch::Commit / Write / WriteSeries).
//   These feed EARLY-WARNING alerts only — RunAt verdicts always come from
//   the exact batch stages, which is what keeps streaming-vs-batch survivor
//   sets byte-identical after warm-up.
//
// DetectorStateStore owns one state per scanned series, lock-striped by
// InternedMetricIdHash, and implements AppendObserver so it can be wired
// straight into the database: db.SetAppendObserver(&store). The observer
// runs under the owning TSDB shard lock; the store only takes its own
// stripe locks (no call back into the database), so the lock order is
// acyclic. Verdict slots are accessed without the stripe lock under the
// scan-phase discipline: the pipeline visits each series exactly once per
// re-run and never scans concurrently with ingest.
#ifndef FBDETECT_SRC_CORE_DETECTOR_STATE_H_
#define FBDETECT_SRC_CORE_DETECTOR_STATE_H_

#include <array>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "src/common/sim_time.h"
#include "src/core/funnel_stats.h"
#include "src/core/regression.h"
#include "src/core/sanitizer.h"
#include "src/stats/accumulator.h"
#include "src/tsa/bocpd.h"
#include "src/tsa/cusum.h"
#include "src/tsdb/database.h"
#include "src/tsdb/metric_id.h"

namespace fbdetect {

// Every deterministic pipeline.* counter one series' evaluation can touch,
// recorded once at evaluation time and re-applied verbatim when the cached
// verdict is replayed — this is what keeps the telemetry reconciliation
// invariants (e.g. series_in == no_data + decode_failures + quarantined +
// change_point.in) exact in gated mode.
struct SeriesScanEvents {
  uint16_t series_no_data = 0;
  uint16_t decode_failures = 0;
  uint16_t windows_flagged = 0;
  uint16_t windows_quarantined = 0;
  int8_t sanitizer_verdict = -1;  // QualityVerdict index, -1 = unobserved.
  uint16_t detector_exceptions = 0;
  uint16_t change_point_in = 0;
  uint16_t change_point_out = 0;
  uint16_t went_away_in = 0;
  uint16_t went_away_out = 0;
  uint16_t seasonality_in = 0;
  uint16_t seasonality_out = 0;
  uint16_t threshold_in = 0;
  uint16_t threshold_out = 0;
  uint16_t long_term_in = 0;
  uint16_t long_term_out = 0;
};

// Cached outcome of evaluating one series at one re-run. The cache key is
// the pair (series version, as-of) — a verdict is replayed only while the
// series version is unchanged; any stored append, seal, or retention trim
// bumps the version and forces re-evaluation. Replaying across a shifted
// as-of is the documented gated approximation: window boundaries are pure
// functions of as_of, so a clean series' batch verdict could legitimately
// differ at a new as_of; gated mode trades that recomputation away and
// guarantees byte-identity whenever the series is dirty at the run.
struct SeriesVerdict {
  bool valid = false;
  uint64_t version = 0;  // TimeSeriesDatabase::SeriesVersion at evaluation.
  TimePoint as_of = 0;   // Re-run the verdict was computed for.
  std::vector<Regression> survivors;            // 0..2 (short + long path).
  FunnelStats short_delta;                      // Scan-stage funnel deltas.
  FunnelStats long_delta;
  std::vector<QuarantineRecord> quarantine;     // Records emitted, if any.
  SeriesScanEvents events;
};

// Tuning for the streaming per-point state.
struct StreamingConfig {
  // Sliding window for the rolling moments; defaults to one hour (the
  // detection analysis+extended scale at fleet resolution).
  Duration rolling_window = kHour;
  OnlineCusum::Config cusum;
  BocpdState::Config bocpd;
  // Early-warning trigger: BOCPD posterior mass on a change within the last
  // `change_within` points exceeding `change_probability_threshold`, or the
  // CUSUM alarm. Either alone suffices.
  double change_probability_threshold = 0.8;
  int change_within = 8;
};

// An early-warning alert raised by the streaming state at ingest time —
// typically several minutes before the next periodic re-run would have
// looked at the series. Advisory only; never feeds RunAt verdicts.
struct StreamingAlert {
  InternedMetricId id;
  TimePoint triggered_at = 0;  // Timestamp of the triggering point.
  int direction = 0;           // +1 shift up, -1 shift down, 0 BOCPD-only.
  double change_probability = 0.0;
  double baseline_mean = 0.0;
  double rolling_mean = 0.0;
};

class DetectorState {
 public:
  virtual ~DetectorState() = default;

  // Ingest hook, amortized O(1) per point. Returns true when this point
  // newly raised an early-warning alert (the store then records it).
  virtual bool OnAppend(TimePoint timestamp, double value) = 0;

  // Filled by the caller after an alert-raising OnAppend.
  virtual void DescribeAlert(StreamingAlert&) const {}

  SeriesVerdict& verdict() { return verdict_; }
  const SeriesVerdict& verdict() const { return verdict_; }

 protected:
  SeriesVerdict verdict_;
};

// The batch oracle behind the seam: no per-point state, verdict cache only.
class BatchDetectorState final : public DetectorState {
 public:
  bool OnAppend(TimePoint, double) override { return false; }
};

// Incremental per-point state: rolling window moments + online CUSUM +
// BOCPD run-length posterior. Alert-only (see file comment).
class StreamingDetectorState final : public DetectorState {
 public:
  explicit StreamingDetectorState(const StreamingConfig& config);

  bool OnAppend(TimePoint timestamp, double value) override;
  void DescribeAlert(StreamingAlert& alert) const override;

  const RollingMoments& rolling() const { return rolling_; }
  const OnlineCusum& cusum() const { return cusum_; }
  const BocpdState& bocpd() const { return bocpd_; }
  bool alert_active() const { return alert_active_; }

 private:
  const StreamingConfig* config_;  // Owned by the store; outlives the state.
  RollingMoments rolling_;
  OnlineCusum cusum_;
  BocpdState bocpd_;
  bool alert_active_ = false;
  TimePoint alert_at_ = 0;
  int alert_direction_ = 0;
  double alert_change_probability_ = 0.0;
};

// One DetectorState per scanned series, lock-striped; also the database's
// AppendObserver. See the file comment for the locking contract.
class DetectorStateStore final : public AppendObserver {
 public:
  enum class Mode { kBatch, kStreaming };

  explicit DetectorStateStore(Mode mode, StreamingConfig config = {});

  // AppendObserver: feeds every accepted point of `id` to its state (created
  // on first sight) and records any alert the point raised.
  void OnAppend(const InternedMetricId& id, std::span<const TimePoint> timestamps,
                std::span<const double> values) override;

  // The state for `id`, created if absent. Thread-safe (stripe lock held
  // only for the map operation); the returned reference is stable.
  DetectorState& StateFor(const InternedMetricId& id);

  // nullptr when the series has never been seen. Thread-safe.
  DetectorState* FindState(const InternedMetricId& id);

  Mode mode() const { return mode_; }
  const StreamingConfig& config() const { return config_; }
  size_t series_count() const;

  // Total alerts raised since construction (monotonic), and the alerts not
  // yet drained. Drained alerts are returned in the order they were raised;
  // with multi-threaded ingest that order is a valid interleaving, not a
  // deterministic one (the count is deterministic, the order is not).
  uint64_t alerts_raised() const;
  std::vector<StreamingAlert> DrainAlerts();

 private:
  struct Stripe {
    mutable std::shared_mutex mutex;
    std::unordered_map<InternedMetricId, std::unique_ptr<DetectorState>,
                       InternedMetricIdHash> states;
  };
  static constexpr size_t kStripes = 16;

  size_t StripeIndex(const InternedMetricId& id) const {
    return InternedMetricIdHash{}(id) % kStripes;
  }

  Mode mode_;
  StreamingConfig config_;
  std::array<Stripe, kStripes> stripes_;

  mutable std::mutex alerts_mutex_;
  uint64_t alerts_raised_ = 0;
  std::vector<StreamingAlert> alerts_;
};

}  // namespace fbdetect

#endif  // FBDETECT_SRC_CORE_DETECTOR_STATE_H_
