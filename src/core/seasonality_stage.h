// Stage 3 of the short-term path: the seasonality detector (§5.2.3).
//
// Checks the autocorrelation function for significant seasonality; when
// present, decomposes the series with STL, removes the seasonal component,
// and recomputes the regression's effect on trend+residual as a pseudo
// z-score (median shift normalized by residual stddev). The regression is
// filtered as seasonal when the z-score stays below the threshold in BOTH
// the analysis window and the extended window.
//
// The ACF underneath DetectSeasonality runs in O(n log n) via the FFT path
// in src/stats/correlation.h, so this stage is cheap even for long windows.
#ifndef FBDETECT_SRC_CORE_SEASONALITY_STAGE_H_
#define FBDETECT_SRC_CORE_SEASONALITY_STAGE_H_

#include "src/core/regression.h"
#include "src/core/scan_view.h"
#include "src/core/workload_config.h"

namespace fbdetect {

struct SeasonalityVerdict {
  bool seasonal_filtered = false;  // True = drop the regression.
  bool seasonality_present = false;
  size_t period = 0;
  double analysis_zscore = 0.0;
  double extended_zscore = 0.0;
};

class SeasonalityStage {
 public:
  explicit SeasonalityStage(const DetectionConfig& config) : config_(config) {}

  // Zero-copy core: seasonality is estimated over view.full (historical +
  // analysis + extended, contiguous and oriented) with no concatenation.
  SeasonalityVerdict Evaluate(const ScanView& view, const ScanCandidate& candidate) const;

  // Convenience: re-evaluates a stored Regression.
  SeasonalityVerdict Evaluate(const Regression& regression) const;

 private:
  const DetectionConfig& config_;
};

}  // namespace fbdetect

#endif  // FBDETECT_SRC_CORE_SEASONALITY_STAGE_H_
