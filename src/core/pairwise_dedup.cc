#include "src/core/pairwise_dedup.h"

#include <algorithm>
#include <unordered_map>

#include "src/stats/correlation.h"
#include "src/stats/text.h"

namespace fbdetect {
namespace {

// Pearson correlation over the timestamp-aligned overlap of two regressions'
// analysis windows. Regressions observed in disjoint windows share no
// co-movement evidence, so fewer than 8 aligned points yields 0 — merging
// them must then be justified by the identity features instead.
double AlignedPearson(const Regression& a, const Regression& b) {
  if (a.analysis.empty() || b.analysis.empty()) {
    return 0.0;
  }
  std::unordered_map<TimePoint, double> b_by_time;
  const size_t bn = std::min(b.analysis.size(), b.analysis_timestamps.size());
  for (size_t i = 0; i < bn; ++i) {
    b_by_time.emplace(b.analysis_timestamps[i], b.analysis[i]);
  }
  std::vector<double> xs;
  std::vector<double> ys;
  const size_t an = std::min(a.analysis.size(), a.analysis_timestamps.size());
  for (size_t i = 0; i < an; ++i) {
    const auto it = b_by_time.find(a.analysis_timestamps[i]);
    if (it != b_by_time.end()) {
      xs.push_back(a.analysis[i]);
      ys.push_back(it->second);
    }
  }
  if (xs.size() < 8) {
    return 0.0;
  }
  return PearsonCorrelation(xs, ys);
}

}  // namespace

PairwiseScores PairwiseDedup::Score(const Regression& candidate,
                                    const RegressionGroup& group) const {
  PairwiseScores scores;
  for (const Regression& member : group.members) {
    scores.pearson = std::max(scores.pearson, AlignedPearson(candidate, member));
    scores.text = std::max(
        scores.text,
        TextCosineSimilarity(candidate.metric.ToString(), member.metric.ToString()));
    if (overlap_ != nullptr && candidate.metric.kind == MetricKind::kGcpu &&
        member.metric.kind == MetricKind::kGcpu) {
      scores.stack_overlap =
          std::max(scores.stack_overlap, overlap_(candidate.metric, member.metric));
    }
  }
  return scores;
}

std::vector<int> PairwiseDedup::Ingest(std::vector<Regression> regressions) {
  std::vector<int> new_groups;
  for (Regression& regression : regressions) {
    int best_group = -1;
    double best_aggregate = 0.0;
    for (size_t g = 0; g < groups_.size(); ++g) {
      const PairwiseScores scores = Score(regression, groups_[g]);
      if (rule_.ShouldMerge(scores) && scores.Aggregate() > best_aggregate) {
        best_aggregate = scores.Aggregate();
        best_group = static_cast<int>(g);
      }
    }
    if (best_group >= 0) {
      groups_[static_cast<size_t>(best_group)].members.push_back(std::move(regression));
      continue;
    }
    RegressionGroup group;
    group.group_id = static_cast<int>(groups_.size());
    group.members.push_back(std::move(regression));
    groups_.push_back(std::move(group));
    new_groups.push_back(groups_.back().group_id);
  }
  return new_groups;
}

}  // namespace fbdetect
