#include "src/core/pairwise_dedup.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <span>

#include "src/common/arena.h"
#include "src/common/check.h"
#include "src/stats/correlation.h"

namespace fbdetect {

double AlignedPearson(const Regression& a, const Regression& b) {
  // Documented invariant (regression.h): both detector paths fill
  // analysis_timestamps over the exact analysis range. A mismatch would
  // silently truncate the alignment, so fail loudly instead.
  FBD_CHECK(a.analysis_timestamps.size() == a.analysis.size());
  FBD_CHECK(b.analysis_timestamps.size() == b.analysis.size());
  if (a.analysis.empty() || b.analysis.empty()) {
    return 0.0;
  }
  // One two-pointer merge over the sorted timestamp arrays gathers the
  // aligned pairs into arena scratch (ascending a-index — the order the
  // historical implementation materialized them), then the SIMD-kerneled
  // PearsonCorrelation runs over the contiguous pairs. Bit-exact with
  // PearsonCorrelation(xs, ys) on the materialized arrays by construction,
  // without a per-pair hash map or heap-allocated xs/ys vectors.
  const size_t an = a.analysis.size();
  const size_t bn = b.analysis.size();
  ArenaScope scope(Arena::ThreadLocal());
  const std::span<double> xs = scope.MakeUninitializedSpan<double>(std::min(an, bn));
  const std::span<double> ys = scope.MakeUninitializedSpan<double>(std::min(an, bn));
  size_t n = 0;
  for (size_t i = 0, j = 0; i < an && j < bn;) {
    const TimePoint ta = a.analysis_timestamps[i];
    const TimePoint tb = b.analysis_timestamps[j];
    if (ta < tb) {
      ++i;
    } else if (tb < ta) {
      ++j;
    } else {
      xs[n] = a.analysis[i];
      ys[n] = b.analysis[j];
      ++n;
      ++i;
      ++j;
    }
  }
  if (n < 8) {
    return 0.0;
  }
  return PearsonCorrelation(xs.first(n), ys.first(n));
}

PairwiseScores PairwiseDedup::Score(const Regression& candidate,
                                    const RegressionGroup& group) const {
  PairwiseScores scores;
  for (const Regression& member : group.members) {
    scores.pearson = std::max(scores.pearson, AlignedPearson(candidate, member));
    scores.text = std::max(
        scores.text,
        TextCosineSimilarity(candidate.metric.ToString(), member.metric.ToString()));
    if (overlap_ != nullptr && candidate.metric.kind == MetricKind::kGcpu &&
        member.metric.kind == MetricKind::kGcpu) {
      scores.stack_overlap =
          std::max(scores.stack_overlap, overlap_(candidate.metric, member.metric));
    }
  }
  return scores;
}

Regression& PairwiseDedup::GroupRepresentative(int group_id) {
  FBD_CHECK(group_id >= 0 && static_cast<size_t>(group_id) < groups_.size());
  FBD_CHECK(!groups_[static_cast<size_t>(group_id)].members.empty());
  return groups_[static_cast<size_t>(group_id)].members.front();
}

void PairwiseDedup::CollectCandidateGroups(const FunnelCandidate& candidate) {
  candidate_groups_.clear();
  if (groups_.empty()) {
    return;
  }
  // Index pruning is only conservative when both identity thresholds are
  // exclusionary: with min_text <= 0 or min_stack_overlap <= 0 the merge
  // rule can pass on Pearson alone, so every group must be scored.
  if (rule_.min_text <= 0.0 || rule_.min_stack_overlap <= 0.0) {
    candidate_groups_.resize(groups_.size());
    for (size_t g = 0; g < groups_.size(); ++g) {
      candidate_groups_[g] = static_cast<int>(g);
    }
    return;
  }
  if (mark_stamp_ == std::numeric_limits<uint32_t>::max()) {
    std::fill(group_mark_.begin(), group_mark_.end(), 0);
    mark_stamp_ = 0;
  }
  ++mark_stamp_;
  // Groups sharing at least one metric token (text > 0 is impossible
  // otherwise).
  for (const HashedGram& term : candidate.fingerprint.tokens.terms) {
    const auto it = token_index_.find(term.hash);
    if (it == token_index_.end()) {
      continue;
    }
    for (int g : it->second) {
      if (group_mark_[static_cast<size_t>(g)] != mark_stamp_) {
        group_mark_[static_cast<size_t>(g)] = mark_stamp_;
        candidate_groups_.push_back(g);
      }
    }
  }
  // Groups that can satisfy the stack-overlap clause: it is only evaluated
  // for gCPU<->gCPU pairs with an overlap provider.
  if (overlap_ != nullptr && candidate.regression.metric.kind == MetricKind::kGcpu) {
    for (int g : gcpu_groups_) {
      if (group_mark_[static_cast<size_t>(g)] != mark_stamp_) {
        group_mark_[static_cast<size_t>(g)] = mark_stamp_;
        candidate_groups_.push_back(g);
      }
    }
  }
  // Ascending ids restore the historical scan order for the argmax
  // tie-break.
  std::sort(candidate_groups_.begin(), candidate_groups_.end());
}

void PairwiseDedup::ScoreCandidate(const FunnelCandidate& candidate, ThreadPool* pool) {
  aggregates_.assign(candidate_groups_.size(), 0.0);
  eligible_.assign(candidate_groups_.size(), 0);
  const bool candidate_gcpu = candidate.regression.metric.kind == MetricKind::kGcpu;
  // Token-index pruning usually leaves a handful of candidate groups; a pool
  // dispatch per probe would cost more than scoring them. The granularity
  // floor keeps tiny group lists on the calling thread (identical results
  // either way — per-index slots).
  constexpr size_t kMinGroupsPerLane = 4;
  ParallelIndexFor(
      candidate_groups_.size(), pool,
      [&](size_t k) {
        const size_t g = static_cast<size_t>(candidate_groups_[k]);
        const RegressionGroup& group = groups_[g];
        const GroupSummary& summary = summaries_[g];
        PairwiseScores scores;
        for (size_t m = 0; m < group.members.size(); ++m) {
          const Regression& member = group.members[m];
          scores.pearson =
              std::max(scores.pearson, AlignedPearson(candidate.regression, member));
          scores.text = std::max(
              scores.text,
              CosineSimilarity(candidate.fingerprint.tokens, summary.member_tokens[m]));
          if (overlap_ != nullptr && candidate_gcpu &&
              member.metric.kind == MetricKind::kGcpu) {
            scores.stack_overlap = std::max(
                scores.stack_overlap, overlap_(candidate.regression.metric, member.metric));
          }
        }
        eligible_[k] = rule_.ShouldMerge(scores) ? 1 : 0;
        aggregates_[k] = scores.Aggregate();
      },
      kMinGroupsPerLane);
}

void PairwiseDedup::IndexTokens(const TokenVector& tokens, int group_id) {
  for (const HashedGram& term : tokens.terms) {
    std::vector<int>& list = token_index_[term.hash];
    if (list.empty() || list.back() != group_id) {
      list.push_back(group_id);
    }
  }
}

void PairwiseDedup::AppendMember(int group_id, FunnelCandidate candidate) {
  const size_t g = static_cast<size_t>(group_id);
  IndexTokens(candidate.fingerprint.tokens, group_id);
  if (candidate.regression.metric.kind == MetricKind::kGcpu && !summaries_[g].has_gcpu) {
    summaries_[g].has_gcpu = true;
    gcpu_groups_.push_back(group_id);
  }
  summaries_[g].member_tokens.push_back(std::move(candidate.fingerprint.tokens));
  groups_[g].members.push_back(std::move(candidate.regression));
}

int PairwiseDedup::OpenGroup(FunnelCandidate candidate) {
  const int group_id = static_cast<int>(groups_.size());
  groups_.emplace_back();
  groups_.back().group_id = group_id;
  summaries_.emplace_back();
  group_mark_.push_back(0);
  AppendMember(group_id, std::move(candidate));
  return group_id;
}

std::vector<int> PairwiseDedup::Ingest(std::vector<FunnelCandidate> candidates,
                                       ThreadPool* pool) {
  std::vector<int> new_groups;
  for (FunnelCandidate& candidate : candidates) {
    FBD_CHECK(candidate.regression.analysis_timestamps.size() ==
              candidate.regression.analysis.size());
    CollectCandidateGroups(candidate);
    ScoreCandidate(candidate, pool);
    // Serial argmax in ascending group id: strict > keeps the first (lowest
    // id) group on ties and rejects aggregates of exactly 0.0 — the same
    // semantics as the historical all-pairs loop.
    int best_group = -1;
    double best_aggregate = 0.0;
    for (size_t k = 0; k < candidate_groups_.size(); ++k) {
      if (eligible_[k] != 0 && aggregates_[k] > best_aggregate) {
        best_aggregate = aggregates_[k];
        best_group = candidate_groups_[k];
      }
    }
    if (best_group >= 0) {
      AppendMember(best_group, std::move(candidate));
      continue;
    }
    new_groups.push_back(OpenGroup(std::move(candidate)));
  }
  return new_groups;
}

std::vector<int> PairwiseDedup::Ingest(std::vector<Regression> regressions) {
  const FingerprintConfig fp_config{0, 0, /*som_features=*/false};
  std::vector<FunnelCandidate> candidates(regressions.size());
  for (size_t i = 0; i < regressions.size(); ++i) {
    candidates[i].fingerprint = ComputeFingerprint(regressions[i], fp_config);
    candidates[i].regression = std::move(regressions[i]);
  }
  return Ingest(std::move(candidates), nullptr);
}

}  // namespace fbdetect
