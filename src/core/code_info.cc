#include "src/core/code_info.h"

namespace fbdetect {

bool CallGraphCodeInfo::Exists(const std::string& subroutine) const {
  return graph_->FindByName(subroutine) != kInvalidNode;
}

std::vector<std::string> CallGraphCodeInfo::CallersOf(const std::string& subroutine) const {
  std::vector<std::string> names;
  const NodeId id = graph_->FindByName(subroutine);
  if (id == kInvalidNode) {
    return names;
  }
  for (NodeId caller : graph_->CallersOf(id)) {
    names.push_back(graph_->node(caller).name);
  }
  return names;
}

std::string CallGraphCodeInfo::ClassOf(const std::string& subroutine) const {
  const NodeId id = graph_->FindByName(subroutine);
  return id == kInvalidNode ? std::string() : graph_->node(id).class_name;
}

std::vector<std::string> CallGraphCodeInfo::ClassMembers(const std::string& class_name) const {
  std::vector<std::string> names;
  for (NodeId id : graph_->NodesInClass(class_name)) {
    names.push_back(graph_->node(id).name);
  }
  return names;
}

bool CallGraphCodeInfo::IsDescendant(const std::string& ancestor,
                                     const std::string& descendant) const {
  const NodeId from = graph_->FindByName(ancestor);
  const NodeId target = graph_->FindByName(descendant);
  if (from == kInvalidNode || target == kInvalidNode) {
    return false;
  }
  std::vector<NodeId> stack = {from};
  std::vector<bool> visited(graph_->node_count(), false);
  while (!stack.empty()) {
    const NodeId v = stack.back();
    stack.pop_back();
    if (visited[static_cast<size_t>(v)]) {
      continue;
    }
    visited[static_cast<size_t>(v)] = true;
    for (const CallEdge& edge : graph_->edges(v)) {
      if (edge.callee == target) {
        return true;
      }
      stack.push_back(edge.callee);
    }
  }
  return false;
}

}  // namespace fbdetect
