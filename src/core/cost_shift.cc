#include "src/core/cost_shift.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <span>

#include "src/common/check.h"
#include "src/common/strings.h"
#include "src/stats/descriptive.h"

namespace fbdetect {
namespace {

// Sums the member series around the regression's change point, returning the
// domain's mean cost before/after and whether every member existed before the
// change. Sampling is aligned on the regression's analysis timestamps plus an
// equally long pre-change slice.
struct DomainWindow {
  bool any_data = false;
  bool existed_before = false;
  double mean_before = 0.0;
  double mean_after = 0.0;
};

DomainWindow MeasureDomain(const TimeSeriesDatabase& db, const CostDomain& domain,
                           const Regression& regression, size_t min_points) {
  DomainWindow window;
  const TimePoint change = regression.change_time;
  // Compare an equally long window on each side of the change point.
  TimePoint post_end = regression.detected_at;
  const Duration post_span = post_end - change;
  if (post_span <= 0) {
    return window;
  }
  const TimePoint pre_begin = change - post_span;

  double before_sum = 0.0;
  double after_sum = 0.0;
  size_t before_points = 0;
  size_t after_points = 0;
  bool all_existed_before = true;
  bool any_series = false;
  for (const MetricId& member : domain.members) {
    const TimeSeries* series = db.Find(member);
    if (series == nullptr) {
      continue;
    }
    any_series = true;
    // Zero-copy: sum directly over spans into the series storage instead of
    // materializing ValuesBetween copies (bit-identical sums — same values,
    // same order).
    const auto [before_first, before_last] = series->SliceIndices(pre_begin, change);
    const auto [after_first, after_last] = series->SliceIndices(change, post_end);
    const std::span<const double> before =
        series->value_span().subspan(before_first, before_last - before_first);
    const std::span<const double> after =
        series->value_span().subspan(after_first, after_last - after_first);
    if (before.empty()) {
      all_existed_before = false;
    }
    before_sum += Sum(before);
    before_points = std::max(before_points, before.size());
    after_sum += Sum(after);
    after_points = std::max(after_points, after.size());
  }
  if (!any_series || before_points < min_points || after_points < min_points) {
    return window;
  }
  window.any_data = true;
  window.existed_before = all_existed_before;
  window.mean_before = before_sum / static_cast<double>(before_points);
  window.mean_after = after_sum / static_cast<double>(after_points);
  return window;
}

}  // namespace

CostShiftDetector::CostShiftDetector(const TimeSeriesDatabase* db, CostShiftConfig config)
    : db_(db), config_(config) {
  FBD_CHECK(db_ != nullptr);
}

void CostShiftDetector::AddDomainDetector(std::unique_ptr<CostDomainDetector> detector) {
  detectors_.push_back(std::move(detector));
}

void CostShiftDetector::AddDefaultDetectors(const CodeInfoProvider* code_info,
                                            const ChangeLog* change_log) {
  if (code_info != nullptr) {
    AddDomainDetector(std::make_unique<CallerDomainDetector>(code_info));
    AddDomainDetector(std::make_unique<ClassDomainDetector>(code_info));
  }
  AddDomainDetector(std::make_unique<MetadataPrefixDomainDetector>(db_));
  AddDomainDetector(std::make_unique<EndpointPrefixDomainDetector>(db_));
  if (change_log != nullptr) {
    AddDomainDetector(std::make_unique<CommitDomainDetector>(change_log, Days(1)));
  }
}

CostShiftVerdict CostShiftDetector::Evaluate(const Regression& regression) const {
  CostShiftVerdict verdict;
  const double regression_delta = std::fabs(regression.delta);
  if (regression_delta <= 0.0) {
    return verdict;
  }
  for (const auto& detector : detectors_) {
    for (const CostDomain& domain : detector->DomainsFor(regression)) {
      const DomainWindow window =
          MeasureDomain(*db_, domain, regression, config_.min_window_points);
      if (!window.any_data) {
        continue;
      }
      // Check 1: a domain that did not exist before the regression (e.g. a
      // new subroutine) cannot host a shift.
      if (!window.existed_before) {
        continue;
      }
      // Check 2: a domain far larger than the regression is excluded — its
      // own variation would mask the shift signal.
      if (window.mean_before > config_.large_domain_ratio * regression_delta) {
        continue;
      }
      // Check 3: domain total barely moved while the member jumped -> shift.
      const double domain_delta = std::fabs(window.mean_after - window.mean_before);
      if (domain_delta < config_.negligible_ratio * regression_delta) {
        verdict.is_cost_shift = true;
        verdict.domain = detector->name() + ":" + domain.name;
        return verdict;
      }
    }
  }
  return verdict;
}

std::vector<CostDomain> CallerDomainDetector::DomainsFor(const Regression& regression) const {
  std::vector<CostDomain> domains;
  if (regression.metric.kind != MetricKind::kGcpu) {
    return domains;
  }
  // The domain is the UNION of the regressed subroutine's direct callers:
  // every stack sample containing the subroutine also contains exactly one
  // of them, so the summed caller gCPU transitively includes all of the
  // subroutine's cost. A single caller must not be its own domain — a caller
  // that rarely reaches the subroutine stays flat during a real regression
  // and would wrongly vote "cost shift".
  const std::vector<std::string> callers = code_info_->CallersOf(regression.metric.entity);
  if (callers.empty()) {
    return domains;
  }
  CostDomain domain;
  domain.name = "callers_of/" + regression.metric.entity;
  for (const std::string& caller : callers) {
    MetricId member = regression.metric;
    member.entity = caller;
    domain.members.push_back(std::move(member));
  }
  domains.push_back(std::move(domain));
  return domains;
}

std::vector<CostDomain> ClassDomainDetector::DomainsFor(const Regression& regression) const {
  std::vector<CostDomain> domains;
  if (regression.metric.kind != MetricKind::kGcpu) {
    return domains;
  }
  const std::string class_name = code_info_->ClassOf(regression.metric.entity);
  if (class_name.empty()) {
    return domains;
  }
  CostDomain domain;
  domain.name = "class/" + class_name;
  for (const std::string& member_name : code_info_->ClassMembers(class_name)) {
    MetricId member = regression.metric;
    member.entity = member_name;
    domain.members.push_back(std::move(member));
  }
  if (domain.members.size() >= 2) {
    domains.push_back(std::move(domain));
  }
  return domains;
}

std::vector<CostDomain> MetadataPrefixDomainDetector::DomainsFor(
    const Regression& regression) const {
  std::vector<CostDomain> domains;
  if (regression.metric.metadata.empty()) {
    return domains;
  }
  // Prefix = metadata up to the last '/' (or the whole string).
  const std::string& metadata = regression.metric.metadata;
  const size_t slash = metadata.rfind('/');
  const std::string prefix = slash == std::string::npos ? metadata : metadata.substr(0, slash);
  CostDomain domain;
  domain.name = "metadata/" + prefix;
  for (const MetricId& id :
       db_->ListMetricsOfKind(regression.metric.service, regression.metric.kind)) {
    if (StartsWith(id.metadata, prefix)) {
      domain.members.push_back(id);
    }
  }
  if (domain.members.size() >= 2) {
    domains.push_back(std::move(domain));
  }
  return domains;
}

std::vector<CostDomain> EndpointPrefixDomainDetector::DomainsFor(
    const Regression& regression) const {
  std::vector<CostDomain> domains;
  if (regression.metric.kind != MetricKind::kEndpointCost || regression.metric.entity.empty()) {
    return domains;
  }
  const std::string& endpoint = regression.metric.entity;
  const size_t slash = endpoint.rfind('/');
  const std::string prefix = slash == std::string::npos ? endpoint : endpoint.substr(0, slash);
  CostDomain domain;
  domain.name = "endpoint/" + prefix;
  for (const MetricId& id :
       db_->ListMetricsOfKind(regression.metric.service, regression.metric.kind)) {
    if (StartsWith(id.entity, prefix)) {
      domain.members.push_back(id);
    }
  }
  if (domain.members.size() >= 2) {
    domains.push_back(std::move(domain));
  }
  return domains;
}

std::vector<CostDomain> CommitDomainDetector::DomainsFor(const Regression& regression) const {
  std::vector<CostDomain> domains;
  if (regression.metric.kind != MetricKind::kGcpu) {
    return domains;
  }
  const std::vector<const Commit*> commits = change_log_->CommitsBetween(
      regression.metric.service, regression.change_time - lookback_, regression.change_time);
  for (const Commit* commit : commits) {
    // Only commits that touch the regressed subroutine (plus others) define a
    // plausible shift domain.
    const auto& touched = commit->touched_subroutines;
    if (touched.size() < 2 ||
        std::find(touched.begin(), touched.end(), regression.metric.entity) == touched.end()) {
      continue;
    }
    CostDomain domain;
    domain.name = "commit/" + std::to_string(commit->id);
    for (const std::string& subroutine : touched) {
      MetricId member = regression.metric;
      member.entity = subroutine;
      domain.members.push_back(std::move(member));
    }
    domains.push_back(std::move(domain));
  }
  return domains;
}

}  // namespace fbdetect
