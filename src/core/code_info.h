// Code-structure information consumed by the cost-shift detector and
// root-cause analysis: callers, enclosing classes, existence, and descendant
// relations of subroutines. Production FBDetect derives this from stack
// traces and source analysis; here an adapter over the profiling CallGraph
// provides it (and tests can supply hand-built fakes).
#ifndef FBDETECT_SRC_CORE_CODE_INFO_H_
#define FBDETECT_SRC_CORE_CODE_INFO_H_

#include <string>
#include <vector>

#include "src/profiling/call_graph.h"

namespace fbdetect {

class CodeInfoProvider {
 public:
  virtual ~CodeInfoProvider() = default;

  virtual bool Exists(const std::string& subroutine) const = 0;
  virtual std::vector<std::string> CallersOf(const std::string& subroutine) const = 0;
  virtual std::string ClassOf(const std::string& subroutine) const = 0;
  virtual std::vector<std::string> ClassMembers(const std::string& class_name) const = 0;
  // True when `descendant` is transitively invoked by `ancestor`.
  virtual bool IsDescendant(const std::string& ancestor, const std::string& descendant) const = 0;
};

// Adapter over a CallGraph. The graph must outlive the adapter.
class CallGraphCodeInfo : public CodeInfoProvider {
 public:
  explicit CallGraphCodeInfo(const CallGraph* graph) : graph_(graph) {}

  bool Exists(const std::string& subroutine) const override;
  std::vector<std::string> CallersOf(const std::string& subroutine) const override;
  std::string ClassOf(const std::string& subroutine) const override;
  std::vector<std::string> ClassMembers(const std::string& class_name) const override;
  bool IsDescendant(const std::string& ancestor, const std::string& descendant) const override;

 private:
  const CallGraph* graph_;
};

}  // namespace fbdetect

#endif  // FBDETECT_SRC_CORE_CODE_INFO_H_
