// Survivor counts after each Fig. 6 funnel stage (Table 3), kept separately
// for the short-term and long-term paths. Lives in its own header because
// both the pipeline (per-run accumulation) and the per-series detector
// state (cached per-series deltas, src/core/detector_state.h) embed it.
#ifndef FBDETECT_SRC_CORE_FUNNEL_STATS_H_
#define FBDETECT_SRC_CORE_FUNNEL_STATS_H_

#include <cstdint>

namespace fbdetect {

struct FunnelStats {
  uint64_t change_points = 0;
  uint64_t after_went_away = 0;
  uint64_t after_seasonality = 0;
  uint64_t after_threshold = 0;
  uint64_t after_same_merger = 0;
  uint64_t after_som_dedup = 0;
  uint64_t after_cost_shift = 0;
  uint64_t after_pairwise = 0;

  void Accumulate(const FunnelStats& other);
};

}  // namespace fbdetect

#endif  // FBDETECT_SRC_CORE_FUNNEL_STATS_H_
