// Data-quality gate in front of the detectors (graceful degradation, §6 of
// the repo DESIGN notes). Fleet telemetry is dirty — collector crashes drop
// samples, retransmits duplicate them, counter resets go negative, hosts
// flap in and out, NaN/Inf leak out of broken exporters. FBDetect must
// neither abort on such series nor false-alarm on artifacts that look like
// step changes (a half-dark window reads as a level shift).
//
// The Sanitizer classifies each detection window against a small quality
// taxonomy BEFORE the detectors see it. Windows that fail are quarantined:
// the series is skipped for that re-run and accounted in a structured
// QuarantineReport instead of flowing into the funnel. Clean series are
// completely unaffected — the inspection is read-only and the verdict for a
// well-formed window is kOk.
#ifndef FBDETECT_SRC_CORE_SANITIZER_H_
#define FBDETECT_SRC_CORE_SANITIZER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/sim_time.h"
#include "src/tsdb/metric_id.h"
#include "src/tsdb/window.h"

namespace fbdetect {

// Quality taxonomy for one detection window, ordered by severity (worst
// last) so records can keep the max across windows.
enum class QualityVerdict : int {
  kOk = 0,       // Usable; minor artifacts (e.g. constant clock skew) at most.
  kGappy,        // Too many missing samples on the inferred grid.
  kFlapping,     // Series dark at the window edges (host flapping / churn).
  kCorrupt,      // Non-finite values or counter-reset negatives present.
};

const char* QualityVerdictName(QualityVerdict verdict);

struct SanitizerConfig {
  bool enabled = true;
  // A window is kGappy when missing > max_gap_fraction * expected samples.
  double max_gap_fraction = 0.25;
  // A window is kFlapping when the historical window holds less than this
  // fraction of its expected samples (series appeared late / was dark), or
  // when the series goes dark before the analysis window ends.
  double min_historical_coverage = 0.5;
  // Which verdicts cause the window to be skipped (quarantined) rather than
  // handed to the detectors. Corrupt windows should essentially always be
  // quarantined; gappy/flapping quarantine trades recall on churning hosts
  // for precision.
  bool quarantine_corrupt = true;
  bool quarantine_gappy = true;
  bool quarantine_flapping = true;
};

// What Inspect found in one window. Counts are over the full window span
// (historical + analysis + extended).
struct WindowQuality {
  // False when the window held no points at all — nothing to classify and
  // nothing to record (absent series are not dirty series).
  bool observed = false;
  QualityVerdict verdict = QualityVerdict::kOk;
  uint32_t non_finite = 0;  // NaN or +-Inf values.
  uint32_t negative = 0;    // Negative values of a non-negative metric kind.
  uint32_t missing = 0;     // Absent samples on the inferred time grid.
  bool late_start = false;  // Historical coverage below the floor.
  bool early_end = false;   // Series went dark before the window closed.
  Duration skew = 0;        // Grid-phase offset (per-host clock skew).
};

// One quarantined (or otherwise dirty) series, accumulated across re-runs.
struct QuarantineRecord {
  MetricId metric;
  QualityVerdict worst = QualityVerdict::kOk;
  uint64_t windows_quarantined = 0;
  uint64_t windows_flagged = 0;  // Windows with any artifact, incl. tolerated.
  uint64_t non_finite = 0;
  uint64_t negative = 0;
  uint64_t missing = 0;
  uint64_t flap_windows = 0;
  Duration max_skew = 0;
  uint64_t decode_failures = 0;  // Corrupt sealed storage (SeriesForScan).
  uint64_t exceptions = 0;       // Detector exceptions isolated to the series.
  uint64_t dropped_duplicate = 0;     // Ingest-time rejects (from the TSDB).
  uint64_t dropped_out_of_order = 0;  // Ingest-time rejects (from the TSDB).
  // Identity of the first error isolated to this series: the what() of the
  // first detector/funnel exception (the identity the bare catch sites used
  // to discard; a non-std::exception throw records "unknown exception"), or
  // the Status message of a sealed-chunk decode failure. Empty when clean.
  std::string last_error;

  // Folds another record for the same metric into this one.
  void Merge(const QuarantineRecord& other);
};

// Snapshot of everything the pipeline refused to trust, in canonical
// MetricId order. Built by Pipeline::quarantine_report().
struct QuarantineReport {
  std::vector<QuarantineRecord> records;

  uint64_t total_windows_quarantined() const;
  uint64_t total_decode_failures() const;
  uint64_t total_exceptions() const;
  uint64_t total_dropped_duplicate() const;
  uint64_t total_dropped_out_of_order() const;
  // Records whose worst verdict is at least `verdict`.
  size_t CountAtLeast(QualityVerdict verdict) const;
};

class Sanitizer {
 public:
  explicit Sanitizer(SanitizerConfig config) : config_(config) {}

  // Read-only inspection of one extracted window. `kind` decides whether
  // negative values count as corruption (all kinds except the free-form
  // kApplication are non-negative by definition).
  WindowQuality Inspect(MetricKind kind, const WindowView& view,
                        const WindowSpec& spec) const;

  // Whether a window with this verdict is withheld from the detectors.
  bool ShouldQuarantine(QualityVerdict verdict) const;

  const SanitizerConfig& config() const { return config_; }

 private:
  SanitizerConfig config_;
};

}  // namespace fbdetect

#endif  // FBDETECT_SRC_CORE_SANITIZER_H_
