// The went-away detector's first two production iterations (§5.2.2),
// kept as comparable baselines for the ablation bench:
//
//  Iteration 1 — inverse-CUSUM: after the detected change point, run CUSUM
//    again on the post-change data looking for an inverse shift whose
//    magnitude compensates the original regression. Weakness (per the
//    paper): a temporary dip right after a TRUE regression looks like a
//    compensating inverse shift, so true regressions get filtered.
//
//  Iteration 2 — trend + historical compare: Mann–Kendall on the
//    post-change window; a significant decreasing trend plus recovery to
//    the level of a sampled historical window means "went away". Weakness:
//    if the sampled historical window happens to contain a spike, the
//    still-regressed level compares as "recovered" and a true regression is
//    filtered (the Fig. 7 failure).
//
// The current (third) iteration lives in went_away.h.
#ifndef FBDETECT_SRC_CORE_WENT_AWAY_LEGACY_H_
#define FBDETECT_SRC_CORE_WENT_AWAY_LEGACY_H_

#include "src/core/regression.h"
#include "src/core/workload_config.h"

namespace fbdetect {

// Iteration 1. Returns true when the regression should be KEPT.
class InverseCusumWentAway {
 public:
  explicit InverseCusumWentAway(const DetectionConfig& config) : config_(config) {}

  bool Keep(const Regression& regression) const;

 private:
  const DetectionConfig& config_;
};

// Iteration 2. `historical_window_offset` selects which slice of the
// historical window serves as the recovery baseline (the paper's point is
// precisely that this choice is fragile): 0 = the latest slice, 1 = one
// analysis-window earlier, etc.
class TrendCompareWentAway {
 public:
  TrendCompareWentAway(const DetectionConfig& config, size_t historical_window_offset)
      : config_(config), offset_(historical_window_offset) {}

  bool Keep(const Regression& regression) const;

 private:
  const DetectionConfig& config_;
  size_t offset_;
};

}  // namespace fbdetect

#endif  // FBDETECT_SRC_CORE_WENT_AWAY_LEGACY_H_
