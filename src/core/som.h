// Self-Organizing Map (Kohonen, 1990) — the scalable clustering backbone of
// SOMDedup (§5.5.1). O(n) per epoch: each item updates its best-matching unit
// and that unit's grid neighborhood with a decaying learning rate and radius.
//
// The paper's key operational insight is hyperparameter robustness: a grid of
// L x L with L = ceil(n^(1/4)) works across workloads; SomGridSize implements
// that rule.
//
// Storage (PR 3): weights live in one flat contiguous buffer (grid*grid rows
// x dimensions columns, row-major) instead of a vector-of-vectors — BMU
// search is a linear sweep over one allocation. Items can likewise be passed
// as a FlatMatrix. Two training modes:
// * Online (default): the classic sequential Kohonen updates, bit-exact with
//   the historical nested-vector implementation (each item's update depends
//   on all previous updates, so it is inherently serial).
// * Batch (SomTrainConfig::batch): per epoch, all BMU searches run in
//   parallel on a ThreadPool into per-item slots, then cell updates are
//   reduced per cell in deterministic item order — byte-identical results
//   for any thread count.
// BestMatchingUnit / Assign are pure and parallelize in both modes.
#ifndef FBDETECT_SRC_CORE_SOM_H_
#define FBDETECT_SRC_CORE_SOM_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "src/common/thread_pool.h"

namespace fbdetect {

// L = ceil(n^(1/4)); at least 1.
int SomGridSize(size_t num_items);

// Dense row-major matrix; the funnel's flat item layout (one row per
// regression feature vector).
struct FlatMatrix {
  size_t rows = 0;
  size_t cols = 0;
  std::vector<double> data;  // rows * cols, row-major.

  void Resize(size_t new_rows, size_t new_cols) {
    rows = new_rows;
    cols = new_cols;
    data.assign(rows * cols, 0.0);
  }
  std::span<const double> row(size_t r) const { return {data.data() + r * cols, cols}; }
  std::span<double> mutable_row(size_t r) { return {data.data() + r * cols, cols}; }
};

struct SomTrainConfig {
  int epochs = 30;
  double initial_learning_rate = 0.5;
  double final_learning_rate = 0.02;
  uint64_t seed = 7;
  // Batch-mode training: deterministic parallel BMU search + per-cell
  // reduction instead of sequential online updates. Changes the (equally
  // valid) converged map, so the pipeline keeps it off to stay byte-
  // identical with the online path; benches and tests exercise it.
  bool batch = false;
};

class SelfOrganizingMap {
 public:
  // grid x grid cells, each a weight vector of `dimensions`.
  SelfOrganizingMap(size_t dimensions, int grid, uint64_t seed);

  // Trains on the items. `pool` (optional) is used by batch mode and is
  // ignored by online mode; both are deterministic for any pool size.
  // The nested-vector overload copies nothing — rows are viewed in place.
  void Train(const std::vector<std::vector<double>>& items, const SomTrainConfig& config,
             ThreadPool* pool = nullptr);
  void Train(const FlatMatrix& items, const SomTrainConfig& config, ThreadPool* pool = nullptr);

  // Index (row * grid + col) of the cell closest to `item`.
  int BestMatchingUnit(std::span<const double> item) const;

  // Assigns every item to its BMU. The span overload writes into per-item
  // slots (out.size() == items.rows) and fans the search over `pool`;
  // results are byte-identical for any pool size.
  std::vector<int> Assign(const std::vector<std::vector<double>>& items) const;
  void Assign(const FlatMatrix& items, std::span<int> out, ThreadPool* pool = nullptr) const;

  int grid() const { return grid_; }
  size_t dimensions() const { return dimensions_; }
  size_t cell_count() const { return static_cast<size_t>(grid_) * static_cast<size_t>(grid_); }
  // Flat weight buffer, cell-major (cell c's weights at [c*dimensions,
  // (c+1)*dimensions)). Exposed for oracle tests.
  std::span<const double> weights() const { return weights_; }

 private:
  // Row accessor used by both Train overloads so online training is
  // bit-exact regardless of the item container.
  using RowFn = std::span<const double> (*)(const void* items, size_t index);

  void TrainOnline(const void* items, size_t num_items, RowFn row, const SomTrainConfig& config);
  void TrainBatch(const void* items, size_t num_items, RowFn row, const SomTrainConfig& config,
                  ThreadPool* pool);
  void InitCellsFromItems(const void* items, size_t num_items, RowFn row, uint64_t seed);

  std::span<double> Cell(size_t c) { return {weights_.data() + c * dimensions_, dimensions_}; }
  std::span<const double> Cell(size_t c) const {
    return {weights_.data() + c * dimensions_, dimensions_};
  }

  size_t dimensions_;
  int grid_;
  std::vector<double> weights_;  // cell_count() x dimensions_, row-major.
};

}  // namespace fbdetect

#endif  // FBDETECT_SRC_CORE_SOM_H_
