// Self-Organizing Map (Kohonen, 1990) — the scalable clustering backbone of
// SOMDedup (§5.5.1). O(n) per epoch: each item updates its best-matching unit
// and that unit's grid neighborhood with a decaying learning rate and radius.
//
// The paper's key operational insight is hyperparameter robustness: a grid of
// L x L with L = ceil(n^(1/4)) works across workloads; SomGridSize implements
// that rule.
#ifndef FBDETECT_SRC_CORE_SOM_H_
#define FBDETECT_SRC_CORE_SOM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace fbdetect {

// L = ceil(n^(1/4)); at least 1.
int SomGridSize(size_t num_items);

struct SomTrainConfig {
  int epochs = 30;
  double initial_learning_rate = 0.5;
  double final_learning_rate = 0.02;
  uint64_t seed = 7;
};

class SelfOrganizingMap {
 public:
  // grid x grid cells, each a weight vector of `dimensions`.
  SelfOrganizingMap(size_t dimensions, int grid, uint64_t seed);

  // Trains on the items (each of `dimensions` length).
  void Train(const std::vector<std::vector<double>>& items, const SomTrainConfig& config);

  // Index (row * grid + col) of the cell closest to `item`.
  int BestMatchingUnit(const std::vector<double>& item) const;

  // Assigns every item to its BMU.
  std::vector<int> Assign(const std::vector<std::vector<double>>& items) const;

  int grid() const { return grid_; }
  size_t dimensions() const { return dimensions_; }

 private:
  double Distance2(const std::vector<double>& weights, const std::vector<double>& item) const;

  size_t dimensions_;
  int grid_;
  std::vector<std::vector<double>> cells_;
};

}  // namespace fbdetect

#endif  // FBDETECT_SRC_CORE_SOM_H_
