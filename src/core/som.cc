#include "src/core/som.h"

#include <algorithm>
#include <cmath>

#include "src/common/arena.h"
#include "src/common/check.h"
#include "src/common/random.h"
#include "src/common/simd.h"

namespace fbdetect {
namespace {

std::span<const double> NestedRow(const void* items, size_t index) {
  return (*static_cast<const std::vector<std::vector<double>>*>(items))[index];
}

std::span<const double> FlatRow(const void* items, size_t index) {
  return static_cast<const FlatMatrix*>(items)->row(index);
}

// Granularity floor for fanning BMU searches over the pool: one search costs
// roughly cells x dims mul+adds (~a microsecond for funnel-sized maps), so a
// lane below this many items loses more to the pool wake than it gains.
constexpr size_t kMinBmuSearchesPerLane = 8;

}  // namespace

int SomGridSize(size_t num_items) {
  if (num_items == 0) {
    return 1;
  }
  return std::max(1, static_cast<int>(std::ceil(std::pow(static_cast<double>(num_items), 0.25))));
}

SelfOrganizingMap::SelfOrganizingMap(size_t dimensions, int grid, uint64_t seed)
    : dimensions_(dimensions), grid_(std::max(1, grid)) {
  FBD_CHECK(dimensions > 0);
  Rng rng(seed);
  weights_.resize(cell_count() * dimensions_);
  for (double& w : weights_) {  // Same fill order as the nested layout.
    w = rng.Uniform(-0.1, 0.1);
  }
}

int SelfOrganizingMap::BestMatchingUnit(std::span<const double> item) const {
  FBD_CHECK(item.size() == dimensions_);
  const size_t cells = cell_count();
  // The distance sweep over the flat weight buffer is the SOM hot loop; the
  // simd.h kernel computes all cell distances with each cell's accumulation
  // kept in the historical serial dimension order (bit-exact with the
  // nested-vector implementation on every instruction set). The argmin stays
  // serial: strict '<' keeps the first minimum, preserving the historical
  // tie-break and NaN semantics.
  ArenaScope scope(Arena::ThreadLocal());
  const std::span<double> d2 = scope.MakeUninitializedSpan<double>(cells);
  simd::Active().squared_distances(weights_.data(), cells, dimensions_, item.data(),
                                   d2.data());
  int best = 0;
  double best_d2 = d2[0];
  for (size_t c = 1; c < cells; ++c) {
    if (d2[c] < best_d2) {
      best_d2 = d2[c];
      best = static_cast<int>(c);
    }
  }
  return best;
}

void SelfOrganizingMap::InitCellsFromItems(const void* items, size_t num_items, RowFn row,
                                           uint64_t seed) {
  // Initialize cells from random items so the map starts in-distribution.
  // Same RNG stream and assignment order as the historical implementation.
  Rng rng(seed);
  const size_t cells = cell_count();
  for (size_t c = 0; c < cells; ++c) {
    const std::span<const double> item = row(items, rng.NextUint64(num_items));
    FBD_CHECK(item.size() == dimensions_);
    std::copy(item.begin(), item.end(), Cell(c).begin());
  }
}

void SelfOrganizingMap::TrainOnline(const void* items, size_t num_items, RowFn row,
                                    const SomTrainConfig& config) {
  InitCellsFromItems(items, num_items, row, config.seed);
  const int epochs = std::max(1, config.epochs);
  const double initial_radius = std::max(1.0, static_cast<double>(grid_) / 2.0);
  for (int epoch = 0; epoch < epochs; ++epoch) {
    const double progress = static_cast<double>(epoch) / static_cast<double>(epochs);
    const double lr = config.initial_learning_rate +
                      (config.final_learning_rate - config.initial_learning_rate) * progress;
    const double radius = std::max(0.5, initial_radius * (1.0 - progress));
    const double radius2 = radius * radius;
    for (size_t index = 0; index < num_items; ++index) {
      const std::span<const double> item = row(items, index);
      const int bmu = BestMatchingUnit(item);
      const int bmu_row = bmu / grid_;
      const int bmu_col = bmu % grid_;
      for (int r = 0; r < grid_; ++r) {
        for (int c = 0; c < grid_; ++c) {
          const double dr = static_cast<double>(r - bmu_row);
          const double dc = static_cast<double>(c - bmu_col);
          const double grid_d2 = dr * dr + dc * dc;
          if (grid_d2 > radius2) {
            continue;
          }
          const double influence = std::exp(-grid_d2 / (2.0 * radius2));
          const std::span<double> cell = Cell(static_cast<size_t>(r * grid_ + c));
          for (size_t i = 0; i < dimensions_; ++i) {
            cell[i] += lr * influence * (item[i] - cell[i]);
          }
        }
      }
    }
  }
}

void SelfOrganizingMap::TrainBatch(const void* items, size_t num_items, RowFn row,
                                   const SomTrainConfig& config, ThreadPool* pool) {
  InitCellsFromItems(items, num_items, row, config.seed);
  const int epochs = std::max(1, config.epochs);
  const double initial_radius = std::max(1.0, static_cast<double>(grid_) / 2.0);
  const size_t cells = cell_count();
  std::vector<int> bmu(num_items);
  // Per-cell accumulator rows (numerator vectors); written by one task each.
  FlatMatrix numerators;
  for (int epoch = 0; epoch < epochs; ++epoch) {
    const double progress = static_cast<double>(epoch) / static_cast<double>(epochs);
    const double lr = config.initial_learning_rate +
                      (config.final_learning_rate - config.initial_learning_rate) * progress;
    const double radius = std::max(0.5, initial_radius * (1.0 - progress));
    const double radius2 = radius * radius;
    // Phase 1: all BMU searches against the epoch-start weights, in parallel
    // into per-item slots. A single BMU search is ~a microsecond, so small
    // cohorts stay on the calling thread (granularity floor) instead of
    // paying a pool wake per epoch.
    ParallelIndexFor(
        num_items, pool,
        [&](size_t index) { bmu[index] = BestMatchingUnit(row(items, index)); },
        kMinBmuSearchesPerLane);
    // Phase 2: per-cell reduction. Each cell sums its neighborhood-weighted
    // items in ascending item order — the result depends only on the bmu
    // slots, never on task scheduling.
    numerators.Resize(cells, dimensions_);
    // Each cell's reduction walks every item, so the per-cell work scales
    // with the cohort: only tiny cohorts (where a 3x3..5x5 grid's total work
    // is a few microseconds) fall back to the serial path.
    const size_t min_cells_per_lane = num_items >= 64 ? 1 : 8;
    ParallelIndexFor(
        cells, pool,
        [&](size_t cell_index) {
      const int cell_row = static_cast<int>(cell_index) / grid_;
      const int cell_col = static_cast<int>(cell_index) % grid_;
      const std::span<double> numerator = numerators.mutable_row(cell_index);
      double denominator = 0.0;
      for (size_t index = 0; index < num_items; ++index) {
        const int bmu_row = bmu[index] / grid_;
        const int bmu_col = bmu[index] % grid_;
        const double dr = static_cast<double>(cell_row - bmu_row);
        const double dc = static_cast<double>(cell_col - bmu_col);
        const double grid_d2 = dr * dr + dc * dc;
        if (grid_d2 > radius2) {
          continue;
        }
        const double influence = std::exp(-grid_d2 / (2.0 * radius2));
        denominator += influence;
        const std::span<const double> item = row(items, index);
        for (size_t i = 0; i < dimensions_; ++i) {
          numerator[i] += influence * item[i];
        }
      }
      if (denominator > 0.0) {
        const std::span<double> cell = Cell(cell_index);
        for (size_t i = 0; i < dimensions_; ++i) {
          cell[i] += lr * (numerator[i] / denominator - cell[i]);
        }
      }
        },
        min_cells_per_lane);
  }
}

void SelfOrganizingMap::Train(const std::vector<std::vector<double>>& items,
                              const SomTrainConfig& config, ThreadPool* pool) {
  if (items.empty()) {
    return;
  }
  if (config.batch) {
    TrainBatch(&items, items.size(), &NestedRow, config, pool);
  } else {
    TrainOnline(&items, items.size(), &NestedRow, config);
  }
}

void SelfOrganizingMap::Train(const FlatMatrix& items, const SomTrainConfig& config,
                              ThreadPool* pool) {
  if (items.rows == 0) {
    return;
  }
  FBD_CHECK(items.cols == dimensions_);
  if (config.batch) {
    TrainBatch(&items, items.rows, &FlatRow, config, pool);
  } else {
    TrainOnline(&items, items.rows, &FlatRow, config);
  }
}

std::vector<int> SelfOrganizingMap::Assign(const std::vector<std::vector<double>>& items) const {
  std::vector<int> assignment;
  assignment.reserve(items.size());
  for (const std::vector<double>& item : items) {
    assignment.push_back(BestMatchingUnit(item));
  }
  return assignment;
}

void SelfOrganizingMap::Assign(const FlatMatrix& items, std::span<int> out,
                               ThreadPool* pool) const {
  FBD_CHECK(out.size() == items.rows);
  FBD_CHECK(items.rows == 0 || items.cols == dimensions_);
  ParallelIndexFor(
      items.rows, pool,
      [&](size_t index) { out[index] = BestMatchingUnit(items.row(index)); },
      kMinBmuSearchesPerLane);
}

}  // namespace fbdetect
