#include "src/core/som.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"
#include "src/common/random.h"

namespace fbdetect {

int SomGridSize(size_t num_items) {
  if (num_items == 0) {
    return 1;
  }
  return std::max(1, static_cast<int>(std::ceil(std::pow(static_cast<double>(num_items), 0.25))));
}

SelfOrganizingMap::SelfOrganizingMap(size_t dimensions, int grid, uint64_t seed)
    : dimensions_(dimensions), grid_(std::max(1, grid)) {
  FBD_CHECK(dimensions > 0);
  Rng rng(seed);
  cells_.resize(static_cast<size_t>(grid_) * static_cast<size_t>(grid_));
  for (auto& cell : cells_) {
    cell.resize(dimensions_);
    for (double& w : cell) {
      w = rng.Uniform(-0.1, 0.1);
    }
  }
}

double SelfOrganizingMap::Distance2(const std::vector<double>& weights,
                                    const std::vector<double>& item) const {
  double d2 = 0.0;
  for (size_t i = 0; i < dimensions_; ++i) {
    const double d = weights[i] - item[i];
    d2 += d * d;
  }
  return d2;
}

int SelfOrganizingMap::BestMatchingUnit(const std::vector<double>& item) const {
  FBD_CHECK(item.size() == dimensions_);
  int best = 0;
  double best_d2 = Distance2(cells_[0], item);
  for (size_t c = 1; c < cells_.size(); ++c) {
    const double d2 = Distance2(cells_[c], item);
    if (d2 < best_d2) {
      best_d2 = d2;
      best = static_cast<int>(c);
    }
  }
  return best;
}

void SelfOrganizingMap::Train(const std::vector<std::vector<double>>& items,
                              const SomTrainConfig& config) {
  if (items.empty()) {
    return;
  }
  Rng rng(config.seed);
  // Initialize cells from random items so the map starts in-distribution.
  for (auto& cell : cells_) {
    cell = items[rng.NextUint64(items.size())];
  }
  const int epochs = std::max(1, config.epochs);
  const double initial_radius = std::max(1.0, static_cast<double>(grid_) / 2.0);
  for (int epoch = 0; epoch < epochs; ++epoch) {
    const double progress = static_cast<double>(epoch) / static_cast<double>(epochs);
    const double lr = config.initial_learning_rate +
                      (config.final_learning_rate - config.initial_learning_rate) * progress;
    const double radius = std::max(0.5, initial_radius * (1.0 - progress));
    const double radius2 = radius * radius;
    for (const std::vector<double>& item : items) {
      const int bmu = BestMatchingUnit(item);
      const int bmu_row = bmu / grid_;
      const int bmu_col = bmu % grid_;
      for (int row = 0; row < grid_; ++row) {
        for (int col = 0; col < grid_; ++col) {
          const double dr = static_cast<double>(row - bmu_row);
          const double dc = static_cast<double>(col - bmu_col);
          const double grid_d2 = dr * dr + dc * dc;
          if (grid_d2 > radius2) {
            continue;
          }
          const double influence = std::exp(-grid_d2 / (2.0 * radius2));
          std::vector<double>& cell = cells_[static_cast<size_t>(row * grid_ + col)];
          for (size_t i = 0; i < dimensions_; ++i) {
            cell[i] += lr * influence * (item[i] - cell[i]);
          }
        }
      }
    }
  }
}

std::vector<int> SelfOrganizingMap::Assign(const std::vector<std::vector<double>>& items) const {
  std::vector<int> assignment;
  assignment.reserve(items.size());
  for (const std::vector<double>& item : items) {
    assignment.push_back(BestMatchingUnit(item));
  }
  return assignment;
}

}  // namespace fbdetect
