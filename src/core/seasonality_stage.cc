#include "src/core/seasonality_stage.h"

#include <algorithm>
#include <cmath>
#include <span>
#include <vector>

#include "src/stats/correlation.h"
#include "src/stats/descriptive.h"
#include "src/tsa/stl.h"

namespace fbdetect {

SeasonalityVerdict SeasonalityStage::Evaluate(const ScanView& view,
                                              const ScanCandidate& candidate) const {
  SeasonalityVerdict verdict;
  const size_t analysis_total = view.analysis_size + view.extended_size;
  if (view.historical_size < 16 || analysis_total == 0) {
    return verdict;
  }

  // Seasonality is estimated over historical + analysis so the period seen in
  // the baseline can be projected into the analysis window. view.full IS that
  // combined range — contiguous, already oriented, nothing materialized.
  const std::span<const double> combined = view.full;

  const SeasonalityEstimate season = DetectSeasonality(
      combined, /*min_period=*/4, /*max_period=*/combined.size() / 3,
      config_.seasonality_min_correlation);
  if (!season.present) {
    return verdict;  // No seasonality: the stage passes the regression on.
  }
  verdict.seasonality_present = true;
  verdict.period = season.period;

  const Decomposition stl = StlDecompose(combined, season.period);
  if (!stl.valid) {
    return verdict;
  }
  const std::vector<double> deseasonalized = stl.Deseasonalized();
  const double residual_sd = SampleStdDev(stl.residual);
  if (residual_sd <= 0.0) {
    return verdict;
  }

  // Index of the change point within `combined`.
  const size_t change = view.historical_size + candidate.change_index;
  const size_t analysis_end = combined.size() - view.extended_size;
  if (change >= combined.size()) {
    return verdict;
  }
  const std::span<const double> cleaned(deseasonalized);
  const double median_before = Median(cleaned.subspan(0, change));

  // z-score over the post-change part of the analysis window.
  const size_t analysis_post = analysis_end > change ? analysis_end - change : 0;
  if (analysis_post > 0) {
    const double median_after = Median(cleaned.subspan(change, analysis_post));
    verdict.analysis_zscore = (median_after - median_before) / residual_sd;
  }
  // z-score over the extended window (when present).
  if (view.extended_size > 0 && analysis_end < combined.size()) {
    const double median_ext = Median(cleaned.subspan(analysis_end));
    verdict.extended_zscore = (median_ext - median_before) / residual_sd;
  } else {
    verdict.extended_zscore = verdict.analysis_zscore;
  }

  // Filter as seasonal only when the deseasonalized shift is small in BOTH
  // windows (§5.2.3 requires both z-scores below the threshold).
  verdict.seasonal_filtered =
      verdict.analysis_zscore < config_.seasonality_zscore_threshold &&
      verdict.extended_zscore < config_.seasonality_zscore_threshold;
  return verdict;
}

SeasonalityVerdict SeasonalityStage::Evaluate(const Regression& regression) const {
  std::vector<double> scratch;
  const ScanView view = ViewOfRegression(regression, scratch);
  return Evaluate(view, CandidateOfRegression(regression));
}

}  // namespace fbdetect
