// Threshold filter (Table 1 / Table 3's "after threshold filtering" row):
// keeps a regression only when its magnitude exceeds the workload's detection
// threshold — absolute delta for the first nine Table 1 rows, relative delta
// for the CT rows.
#ifndef FBDETECT_SRC_CORE_THRESHOLD_FILTER_H_
#define FBDETECT_SRC_CORE_THRESHOLD_FILTER_H_

#include "src/core/regression.h"
#include "src/core/scan_view.h"
#include "src/core/workload_config.h"

namespace fbdetect {

// Scalar core — usable on a ScanCandidate before any Regression exists.
bool PassesThreshold(double delta, double relative_delta, const DetectionConfig& config);

// True when the candidate clears the configured threshold.
bool PassesThreshold(const ScanCandidate& candidate, const DetectionConfig& config);

// True when the regression clears the configured threshold.
bool PassesThreshold(const Regression& regression, const DetectionConfig& config);

}  // namespace fbdetect

#endif  // FBDETECT_SRC_CORE_THRESHOLD_FILTER_H_
