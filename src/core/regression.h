// The Regression record that flows through the Fig. 6 pipeline. Each stage
// consumes and produces vectors of these; later stages attach deduplication
// and root-cause results.
#ifndef FBDETECT_SRC_CORE_REGRESSION_H_
#define FBDETECT_SRC_CORE_REGRESSION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/sim_time.h"
#include "src/tsdb/metric_id.h"

namespace fbdetect {

// A ranked root-cause candidate (commit id + relevance breakdown).
struct RankedCause {
  int64_t commit_id = -1;
  double score = 0.0;
  double structural_score = 0.0;  // gCPU / call-graph attribution factor.
  double text_score = 0.0;        // Regression-context vs change-context.
  double timing_score = 0.0;      // Proximity of commit to the change point.
};

struct Regression {
  MetricId metric;
  bool long_term = false;

  TimePoint detected_at = 0;   // The re-run's as-of time.
  TimePoint change_time = 0;   // Timestamp of the change point.
  size_t change_index = 0;     // Index within the scanned window.

  double baseline_mean = 0.0;   // Mean before the change point.
  double regressed_mean = 0.0;  // Mean after the change point.
  double delta = 0.0;           // regressed_mean - baseline_mean, regression-
                                // positive orientation (increase = worse).
  double relative_delta = 0.0;  // delta / |baseline_mean| (0 if baseline 0).
  double p_value = 1.0;

  // Window data carried for the dedup and root-cause stages. `analysis`
  // includes the extended window when one is configured; values are in
  // regression-positive orientation. Invariant: `analysis_timestamps` has
  // exactly one (strictly increasing) timestamp per `analysis` value — both
  // detector paths fill the two from the same window — and PairwiseDedup's
  // timestamp alignment checks this rather than silently truncating.
  std::vector<double> historical;
  std::vector<double> analysis;
  std::vector<TimePoint> analysis_timestamps;
  size_t extended_size = 0;  // Trailing points of `analysis` that belong to
                             // the extended window.

  // Candidate root-cause commit ids discovered cheaply at detection time
  // (commits touching the regressed subroutine shortly before the change);
  // used as a SOMDedup clustering feature (§5.5.1).
  std::vector<int64_t> candidate_root_causes;

  // Filled by SOMDedup.
  double importance = 0.0;
  int som_cluster = -1;
  size_t merged_count = 1;  // How many raw regressions this one represents.

  // Filled by root-cause analysis: top candidates, best first. Empty when
  // confidence was too low to suggest anything (§6.3 behaviour).
  std::vector<RankedCause> root_causes;

  // Short display line for reports.
  std::string Summary() const;
};

// Whether a decrease (rather than an increase) of this metric kind is the
// regression direction. Throughput-like metrics regress downward.
bool LowerIsRegression(MetricKind kind);

}  // namespace fbdetect

#endif  // FBDETECT_SRC_CORE_REGRESSION_H_
