#include "src/core/long_term.h"

#include <algorithm>
#include <cmath>
#include <span>
#include <vector>

#include "src/stats/correlation.h"
#include "src/stats/descriptive.h"
#include "src/stats/linreg.h"
#include "src/tsa/dp_changepoint.h"
#include "src/tsa/stl.h"

namespace fbdetect {

std::optional<Regression> LongTermDetector::Detect(const MetricId& metric,
                                                   const ScanView& view) const {
  const size_t analysis_size = view.analysis_size;
  const size_t hist_size = view.historical_size;
  if (analysis_size < 16 || hist_size < 16) {
    return std::nullopt;
  }
  if (HasNonFinite(view.full)) {
    return std::nullopt;  // Corrupt exporter data: skip this run.
  }

  // Full oriented series: historical + analysis + extended — view.full,
  // contiguous, already regression-positive. Nothing copied here.
  const std::span<const double> full = view.full;

  // Step 1: seasonality decomposition. When seasonality is present, work on
  // the trend alone; otherwise smooth with STL's trend extraction anyway
  // (period fallback) to suppress noise.
  const SeasonalityEstimate season =
      DetectSeasonality(full, 4, full.size() / 3, config_.seasonality_min_correlation);
  const size_t period = season.present ? season.period : std::max<size_t>(4, full.size() / 20);
  const Decomposition stl = StlDecompose(full, period);
  const std::span<const double> trend_span =
      stl.valid ? std::span<const double>(stl.trend) : full;

  // Step 2: regression detection on the trend.
  const size_t edge = std::max<size_t>(4, analysis_size / 8);
  const std::span<const double> analysis_trend = trend_span.subspan(hist_size, analysis_size);
  const std::span<const double> extended_trend =
      trend_span.subspan(hist_size + analysis_size);

  const double analysis_start_mean = Mean(analysis_trend.subspan(0, edge));
  const double historical_mean = Mean(trend_span.subspan(0, hist_size));
  const double baseline = std::max(analysis_start_mean, historical_mean);

  const double analysis_end_mean = Mean(analysis_trend.subspan(analysis_trend.size() - edge));
  double current = analysis_end_mean;
  if (!extended_trend.empty()) {
    current = std::min(analysis_end_mean, Mean(extended_trend));
  }

  const double delta = current - baseline;
  const double threshold = config_.threshold_mode == ThresholdMode::kAbsolute
                               ? config_.threshold
                               : config_.threshold * std::fabs(baseline);
  if (delta < threshold) {
    return std::nullopt;
  }

  // Step 3: change-point location within the analysis window's trend.
  std::vector<double> normalized(analysis_trend.begin(), analysis_trend.end());
  const double lo = Min(normalized);
  const double hi = Max(normalized);
  if (hi > lo) {
    for (double& v : normalized) {
      v = (v - lo) / (hi - lo);
    }
  }
  size_t change_index = 0;
  const LinearFit fit = FitLine(normalized);
  if (!(fit.valid && fit.rmse < config_.long_term_rmse_threshold)) {
    // Not a clean ramp: DP search (normal loss) for the split.
    change_index = BestSingleSplit(analysis_trend, /*min_segment=*/edge);
  }

  Regression regression;
  regression.metric = metric;
  regression.long_term = true;
  regression.detected_at = view.as_of;
  regression.change_index = change_index;
  regression.change_time = change_index < view.analysis_timestamps.size()
                               ? view.analysis_timestamps[change_index]
                               : view.analysis_begin;
  regression.extended_size = view.extended_size;
  regression.baseline_mean = baseline;
  regression.regressed_mean = current;
  regression.delta = delta;
  regression.relative_delta = baseline != 0.0 ? delta / std::fabs(baseline) : 0.0;
  regression.p_value = 0.0;  // Threshold-based decision; no test here.
  regression.historical.assign(trend_span.begin(),
                               trend_span.begin() + static_cast<long>(hist_size));
  regression.analysis.assign(trend_span.begin() + static_cast<long>(hist_size),
                             trend_span.end());
  regression.analysis_timestamps.assign(view.analysis_timestamps.begin(),
                                        view.analysis_timestamps.end());
  return regression;
}

std::optional<Regression> LongTermDetector::Detect(const MetricId& metric,
                                                   const WindowExtract& windows) const {
  const double sign = LowerIsRegression(metric.kind) ? -1.0 : 1.0;
  std::vector<double> scratch;
  const ScanView view = OrientWindows(windows, sign, scratch);
  return Detect(metric, view);
}

}  // namespace fbdetect
