#include "src/core/long_term.h"

#include <algorithm>
#include <cmath>
#include <span>
#include <vector>

#include "src/stats/correlation.h"
#include "src/stats/descriptive.h"
#include "src/stats/linreg.h"
#include "src/tsa/dp_changepoint.h"
#include "src/tsa/stl.h"

namespace fbdetect {

std::optional<Regression> LongTermDetector::Detect(const MetricId& metric,
                                                   const WindowExtract& windows) const {
  const size_t analysis_size = windows.analysis.size();
  if (analysis_size < 16 || windows.historical.size() < 16) {
    return std::nullopt;
  }
  if (HasNonFinite(windows.historical) || HasNonFinite(windows.analysis) ||
      HasNonFinite(windows.extended)) {
    return std::nullopt;  // Corrupt exporter data: skip this run.
  }
  const double sign = LowerIsRegression(metric.kind) ? -1.0 : 1.0;

  // Full oriented series: historical + analysis + extended.
  std::vector<double> full;
  full.reserve(windows.historical.size() + analysis_size + windows.extended.size());
  for (double v : windows.historical) {
    full.push_back(sign * v);
  }
  for (double v : windows.analysis) {
    full.push_back(sign * v);
  }
  for (double v : windows.extended) {
    full.push_back(sign * v);
  }

  // Step 1: seasonality decomposition. When seasonality is present, work on
  // the trend alone; otherwise smooth with STL's trend extraction anyway
  // (period fallback) to suppress noise.
  const SeasonalityEstimate season =
      DetectSeasonality(full, 4, full.size() / 3, config_.seasonality_min_correlation);
  const size_t period = season.present ? season.period : std::max<size_t>(4, full.size() / 20);
  const Decomposition stl = StlDecompose(full, period);
  const std::vector<double>& trend = stl.valid ? stl.trend : full;

  // Step 2: regression detection on the trend.
  const size_t hist_size = windows.historical.size();
  const size_t edge = std::max<size_t>(4, analysis_size / 8);
  const std::span<const double> trend_span(trend);
  const std::span<const double> analysis_trend = trend_span.subspan(hist_size, analysis_size);
  const std::span<const double> extended_trend =
      trend_span.subspan(hist_size + analysis_size);

  const double analysis_start_mean = Mean(analysis_trend.subspan(0, edge));
  const double historical_mean = Mean(trend_span.subspan(0, hist_size));
  const double baseline = std::max(analysis_start_mean, historical_mean);

  const double analysis_end_mean = Mean(analysis_trend.subspan(analysis_trend.size() - edge));
  double current = analysis_end_mean;
  if (!extended_trend.empty()) {
    current = std::min(analysis_end_mean, Mean(extended_trend));
  }

  const double delta = current - baseline;
  const double threshold = config_.threshold_mode == ThresholdMode::kAbsolute
                               ? config_.threshold
                               : config_.threshold * std::fabs(baseline);
  if (delta < threshold) {
    return std::nullopt;
  }

  // Step 3: change-point location within the analysis window's trend.
  std::vector<double> normalized(analysis_trend.begin(), analysis_trend.end());
  const double lo = Min(normalized);
  const double hi = Max(normalized);
  if (hi > lo) {
    for (double& v : normalized) {
      v = (v - lo) / (hi - lo);
    }
  }
  size_t change_index = 0;
  const LinearFit fit = FitLine(normalized);
  if (!(fit.valid && fit.rmse < config_.long_term_rmse_threshold)) {
    // Not a clean ramp: DP search (normal loss) for the split.
    change_index = BestSingleSplit(analysis_trend, /*min_segment=*/edge);
  }

  Regression regression;
  regression.metric = metric;
  regression.long_term = true;
  regression.detected_at = windows.as_of;
  regression.change_index = change_index;
  regression.change_time = change_index < windows.analysis_timestamps.size()
                               ? windows.analysis_timestamps[change_index]
                               : windows.analysis_begin;
  regression.extended_size = windows.extended.size();
  regression.baseline_mean = baseline;
  regression.regressed_mean = current;
  regression.delta = delta;
  regression.relative_delta = baseline != 0.0 ? delta / std::fabs(baseline) : 0.0;
  regression.p_value = 0.0;  // Threshold-based decision; no test here.
  regression.historical.assign(trend_span.begin(),
                               trend_span.begin() + static_cast<long>(hist_size));
  regression.analysis.assign(trend_span.begin() + static_cast<long>(hist_size),
                             trend_span.end());
  regression.analysis_timestamps = windows.analysis_timestamps;
  return regression;
}

}  // namespace fbdetect
