// Quickstart: the smallest end-to-end FBDetect program.
//
// 1. Write a few subroutine-level gCPU series into the time-series database
//    (here: synthetic, with a planted 10% step regression in one of them).
// 2. Configure detection windows and a threshold.
// 3. Run the pipeline and print the reported regressions.
//
// Build & run:  ./build/examples/quickstart
//               ./build/examples/quickstart --telemetry-out telemetry.json
#include <cstdio>
#include <string>

#include "src/common/random.h"
#include "src/core/pipeline.h"
#include "src/observe/telemetry_export.h"
#include "src/tsdb/database.h"

using namespace fbdetect;

int main(int argc, char** argv) {
  std::string telemetry_out;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--telemetry-out" && i + 1 < argc) {
      telemetry_out = argv[++i];
    }
  }
  // --- 1. Ingest data ------------------------------------------------------
  TimeSeriesDatabase db;
  Rng rng(7);
  const Duration tick = Minutes(10);
  const Duration total = Days(3);
  const TimePoint regression_at = total - Hours(5);

  for (int sub = 0; sub < 8; ++sub) {
    const MetricId metric{"demo_service", MetricKind::kGcpu, "sub_" + std::to_string(sub), ""};
    const double baseline = 0.01 + 0.005 * sub;
    for (TimePoint t = 0; t < total; t += tick) {
      double level = baseline;
      if (sub == 3 && t >= regression_at) {
        level *= 1.10;  // The planted regression: +10% in sub_3.
      }
      db.Write(metric, t, rng.Normal(level, baseline * 0.02));
    }
  }

  // --- 2. Configure --------------------------------------------------------
  PipelineOptions options;
  options.detection.threshold = 0.0005;            // 0.05% absolute gCPU.
  options.detection.windows.historical = Days(2);  // Baseline.
  options.detection.windows.analysis = Hours(4);   // Where regressions are reported.
  options.detection.windows.extended = Hours(2);   // Persistence check.
  options.detection.rerun_interval = Hours(4);
  options.telemetry.enabled = !telemetry_out.empty();  // Self-observability.

  // --- 3. Detect ------------------------------------------------------------
  Pipeline pipeline(&db, /*change_log=*/nullptr, /*code_info=*/nullptr, options);
  const std::vector<Regression> reports = pipeline.RunPeriod("demo_service", Days(2), total);

  std::printf("Reported regressions: %zu\n", reports.size());
  for (const Regression& report : reports) {
    std::printf("  %s\n", report.Summary().c_str());
  }
  const FunnelStats& funnel = pipeline.short_term_funnel();
  std::printf("Funnel: %llu change points -> %llu after went-away -> %llu reported\n",
              static_cast<unsigned long long>(funnel.change_points),
              static_cast<unsigned long long>(funnel.after_went_away),
              static_cast<unsigned long long>(funnel.after_pairwise));
  if (!telemetry_out.empty() && WriteTelemetryFile(pipeline.telemetry(), telemetry_out)) {
    std::printf("Wrote telemetry to %s\n", telemetry_out.c_str());
  }
  return 0;
}
