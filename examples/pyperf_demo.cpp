// PyPerf demo: what the eBPF probe sees vs what PyPerf reconstructs.
//
// Samples a simulated CPython process, prints one raw native stack next to
// its merged end-to-end stack (Fig. 5 of the paper), then aggregates many
// samples into per-function gCPU — the metric FBDetect monitors.
//
// Build & run:  ./build/examples/pyperf_demo
#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "src/profiling/pyperf.h"

using namespace fbdetect;

namespace {

const char* KindName(NativeFrameKind kind) {
  switch (kind) {
    case NativeFrameKind::kSystem:
      return "system ";
    case NativeFrameKind::kInterpreterCall:
      return "cpython";
    case NativeFrameKind::kPyEvalFrame:
      return "pyeval ";
    case NativeFrameKind::kNativeLibrary:
      return "nativeC";
  }
  return "?";
}

}  // namespace

int main() {
  SimulatedInterpreterProcess::Options options;
  options.max_python_depth = 4;
  options.native_leaf_probability = 1.0;  // Force a C-library leaf for the demo.
  SimulatedInterpreterProcess process(options, 99);

  // --- One sample, side by side ------------------------------------------
  const InterpreterSnapshot snapshot = process.Sample();
  bool torn = false;
  const std::vector<MergedFrame> merged = MergeStacks(snapshot, &torn);

  std::printf("Raw native stack (what perf/eBPF sees):\n");
  for (const NativeFrame& frame : snapshot.native_stack) {
    std::printf("  [%s] %s\n", KindName(frame.kind), frame.symbol.c_str());
  }
  std::printf("\nPython virtual call stack (CPython's frame list):\n");
  for (const VirtualFrame& frame : snapshot.virtual_call_stack) {
    std::printf("  %s (%s:%d)\n", frame.function.c_str(), frame.file.c_str(), frame.line);
  }
  std::printf("\nPyPerf merged end-to-end stack:\n");
  for (const MergedFrame& frame : merged) {
    std::printf("  [%s] %s\n", frame.is_python ? "python" : "native", frame.symbol.c_str());
  }
  std::printf("(torn sample: %s)\n", torn ? "yes" : "no");

  // --- Aggregate gCPU -------------------------------------------------------
  const int kSamples = 50000;
  std::map<std::string, int> containment;
  SimulatedInterpreterProcess busy(SimulatedInterpreterProcess::Options{}, 5);
  for (int i = 0; i < kSamples; ++i) {
    const InterpreterSnapshot s = busy.Sample();
    const std::vector<MergedFrame> m = MergeStacks(s);
    std::map<std::string, bool> seen;
    for (const MergedFrame& frame : m) {
      if (frame.is_python && !seen[frame.symbol]) {
        seen[frame.symbol] = true;
        ++containment[frame.symbol];
      }
    }
  }
  std::vector<std::pair<int, std::string>> ranked;
  for (const auto& [function, count] : containment) {
    ranked.emplace_back(count, function);
  }
  std::sort(ranked.rbegin(), ranked.rend());
  std::printf("\nTop Python functions by gCPU over %d samples:\n", kSamples);
  for (size_t i = 0; i < ranked.size() && i < 8; ++i) {
    std::printf("  %-12s %.2f%%\n", ranked[i].second.c_str(),
                100.0 * ranked[i].first / kSamples);
  }
  return 0;
}
