// Capacity Triage (CT) demo: throughput regressions with relative thresholds.
//
// CT (§3) watches two service-agnostic signals produced by load testing:
//   * CT-supply — per-server maximum throughput (a DROP is a regression);
//   * CT-demand — total peak requests across all servers (a RISE is a
//     regression on the demand side).
// This example simulates a service emitting both series, injects a supply
// regression (a service-level CPU regression lowers max throughput) and a
// demand surge, and runs the pipeline with the Table 1 CT configs' 5%
// relative threshold.
//
// Build & run:  ./build/examples/capacity_triage
#include <cstdio>

#include "src/core/pipeline.h"
#include "src/fleet/fleet.h"

using namespace fbdetect;

int main() {
  FleetSimulator fleet;
  ServiceConfig config;
  config.name = "ct_watched_service";
  config.num_servers = 800;
  config.emit_gcpu = false;  // CT does not use stack traces (Table 1).
  config.emit_process_cpu = true;
  config.emit_endpoint_metrics = false;
  config.emit_ct_metrics = true;
  config.seasonal_load_amplitude = 0.05;  // Mild diurnal load for clarity.
  config.tick = Minutes(30);
  config.seed = 77;
  fleet.AddService(config);

  const Duration total = Days(14);

  // Supply-side regression: a service-level CPU regression of 12% lowers the
  // per-server maximum throughput measured by load tests.
  InjectedEvent supply;
  supply.kind = EventKind::kStepRegression;
  supply.service = config.name;
  supply.start = Days(9);
  supply.magnitude = 0.12;
  Commit commit;
  commit.type = ChangeType::kConfiguration;
  commit.time = supply.start - Hours(1);
  commit.title = "Enable extra request validation";
  commit.description = "Turns on deep validation for all requests.";
  fleet.InjectEvent(supply, &commit);

  // Demand-side surge: sustained traffic increase of 15%.
  InjectedEvent demand;
  demand.kind = EventKind::kTransientIssue;
  demand.transient_kind = TransientKind::kLoadSpike;
  demand.service = config.name;
  demand.start = Days(11);
  demand.duration = Days(3);  // Sustained through the end of the simulation.
  demand.magnitude = 0.15;
  fleet.InjectEvent(demand);

  fleet.Run(0, total);

  // CT-supply configuration (Table 1): 5% relative threshold.
  PipelineOptions options;
  options.detection = CtSupplyShortConfig();
  // Scale the Table 1 windows to this demo's 2-week simulation.
  options.detection.windows.historical = Days(6);
  options.detection.windows.analysis = Days(1);
  options.detection.windows.extended = Days(1);
  options.detection.rerun_interval = Hours(12);
  options.detection.enable_long_term = false;

  Pipeline pipeline(&fleet.db(), &fleet.change_log(), nullptr, options);
  const std::vector<Regression> reports = pipeline.RunPeriod(config.name, Days(6), total);

  auto side_of = [](MetricKind kind) {
    switch (kind) {
      case MetricKind::kMaxThroughput:
        return "SUPPLY";
      case MetricKind::kPeakDemand:
        return "DEMAND";
      default:
        return "other ";
    }
  };

  std::printf("CT reports (threshold: 5%% relative):\n");
  for (const Regression& report : reports) {
    std::printf("  [%s] %s\n", side_of(report.metric.kind), report.Summary().c_str());
    for (const RankedCause& cause : report.root_causes) {
      const Commit* c = fleet.change_log().Find(cause.commit_id);
      std::printf("      suspect: %s (score %.2f)\n",
                  c != nullptr ? c->title.c_str() : "?", cause.score);
    }
  }
  if (reports.empty()) {
    std::printf("  (none — unexpected; both injected events exceed the threshold)\n");
  }

  // A single change regresses several metrics at once; PairwiseDedup folds
  // them into one group per cause. Show the full membership.
  std::printf("\nDeduplicated regression groups:\n");
  for (const RegressionGroup& group : pipeline.groups()) {
    std::printf("  group %d:\n", group.group_id);
    for (const Regression& member : group.members) {
      std::printf("    [%s] %s\n", side_of(member.metric.kind), member.Summary().c_str());
    }
  }
  return 0;
}
