// Invoicer: tiny-service detection (§3) with ticket-style reports.
//
// Invoicer runs on just 16 servers. To gather enough stack-trace samples,
// eBPF samples about once per server per second (vs once per minute for
// FrontFaaS) and the windows are long: 14-day history, 1-day analysis, 1-day
// extended (Table 1), detecting gCPU regressions down to 0.5%.
//
// This example simulates Invoicer, injects one 1.2% regression in a billing
// subroutine, runs the pipeline with the Table 1 Invoicer preset, and prints
// developer-facing tickets via the report module.
//
// Build & run:  ./build/examples/invoicer
//               ./build/examples/invoicer --telemetry-out telemetry.json
#include <cstdio>
#include <string>

#include "src/core/pipeline.h"
#include "src/fleet/fleet.h"
#include "src/observe/telemetry_export.h"
#include "src/report/report.h"

using namespace fbdetect;

int main(int argc, char** argv) {
  std::string telemetry_out;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--telemetry-out" && i + 1 < argc) {
      telemetry_out = argv[++i];
    }
  }
  FleetSimulator fleet;
  ServiceConfig config;
  config.name = "invoicer";
  config.num_servers = 16;
  config.call_graph.num_subroutines = 80;
  // ~1 sample/server/second over a 1-hour bucket: 16 * 3600 ≈ 57600 samples.
  config.sampling.samples_per_bucket = 57600;
  config.sampling.bucket_width = Hours(1);
  config.tick = Hours(1);
  config.num_endpoints = 1;
  config.num_seasonal_subroutines = 6;
  config.seed = 20;
  fleet.AddService(config);

  // Find a mid-weight leaf billing subroutine and regress it.
  ServiceSimulator* service = fleet.FindService("invoicer");
  const CallGraph& graph = service->graph();
  const std::vector<double> reach = graph.ReachProbabilities();
  NodeId target = kInvalidNode;
  for (size_t i = 0; i < reach.size(); ++i) {
    if (reach[i] > 0.02 && reach[i] < 0.2 && graph.edges(static_cast<NodeId>(i)).empty()) {
      target = static_cast<NodeId>(i);
      break;
    }
  }
  if (target == kInvalidNode) {
    std::fprintf(stderr, "no suitable target subroutine\n");
    return 1;
  }

  const Duration total = Days(18);
  InjectedEvent event;
  event.kind = EventKind::kStepRegression;
  event.service = "invoicer";
  event.subroutine = graph.node(target).name;
  event.start = Days(15);
  // +30% of a ~4% subroutine: a ~1.2% absolute gCPU regression, comfortably
  // above the 0.5% Invoicer threshold.
  event.magnitude = 0.30;
  Commit commit;
  commit.time = event.start - Hours(2);
  commit.title = "Support new invoice currency in " + event.subroutine;
  commit.description = "Adds currency conversion inside " + event.subroutine + ".";
  commit.touched_subroutines = {event.subroutine};
  fleet.InjectEvent(event, &commit);

  std::printf("Simulating %lld days of invoicer (16 servers, 1 sample/server/s)...\n",
              static_cast<long long>(total / kDay));
  fleet.Run(0, total);

  // Table 1 Invoicer preset, analysis/extended scaled to the sim length.
  PipelineOptions options;
  options.detection = InvoicerShortConfig();
  options.detection.enable_long_term = false;
  options.telemetry.enabled = !telemetry_out.empty();

  CallGraphCodeInfo code_info(&graph);
  Pipeline pipeline(&fleet.db(), &fleet.change_log(), &code_info, options);
  const std::vector<Regression> reports =
      pipeline.RunPeriod("invoicer", Days(14), total);

  std::printf("\n%zu ticket(s):\n\n", reports.size());
  for (const Regression& report : reports) {
    std::printf("%s\n", RenderTicket(report, &fleet.change_log()).c_str());
    std::printf("JSON: %s\n\n", ToJsonLine(report).c_str());
  }
  std::printf("%s", RenderFunnel(pipeline.short_term_funnel(), pipeline.long_term_funnel(),
                                 /*long_term_enabled=*/false)
                       .c_str());
  if (!telemetry_out.empty()) {
    std::printf("\n%s", RenderTelemetry(pipeline.telemetry()).c_str());
    if (WriteTelemetryFile(pipeline.telemetry(), telemetry_out)) {
      std::printf("\nWrote telemetry to %s\n", telemetry_out.c_str());
    }
  }
  return 0;
}
