// A FrontFaaS-style serverless fleet, end to end:
//   fleet simulator -> stack-trace profiler -> TSDB -> FBDetect pipeline,
// with a code-change log so root-cause analysis can name culprits.
//
// The scenario injects step/gradual regressions (with culprit commits), cost
// shifts, transient issues, and seasonal shifts over two simulated weeks;
// the pipeline reports deduplicated regressions with ranked root causes.
//
// Build & run:  ./build/examples/serverless_fleet
//               ./build/examples/serverless_fleet --telemetry-out telemetry.json
#include <cstdio>
#include <string>

#include "src/core/pipeline.h"
#include "src/fleet/fleet.h"
#include "src/fleet/scenario.h"
#include "src/observe/telemetry_export.h"

using namespace fbdetect;

int main(int argc, char** argv) {
  std::string telemetry_out;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--telemetry-out" && i + 1 < argc) {
      telemetry_out = argv[++i];
    }
  }
  // --- Simulate the fleet ---------------------------------------------------
  FleetSimulator fleet;
  ScenarioOptions scenario_options;
  scenario_options.service_name = "frontfaas_demo";
  scenario_options.language = "php";
  scenario_options.num_servers = 5000;
  scenario_options.num_subroutines = 120;
  scenario_options.duration = Days(14);
  scenario_options.num_step_regressions = 4;
  scenario_options.num_gradual_regressions = 1;
  scenario_options.num_cost_shifts = 2;
  scenario_options.num_transients = 15;
  scenario_options.num_background_commits = 80;
  scenario_options.seed = 1234;
  const Scenario scenario = GenerateScenario(fleet, scenario_options);
  std::printf("Simulating %d days of %s (%d servers, %d subroutines)...\n",
              static_cast<int>(scenario_options.duration / kDay),
              scenario_options.service_name.c_str(), scenario_options.num_servers,
              scenario_options.num_subroutines);
  fleet.Run(scenario.begin, scenario.end);
  std::printf("  %zu time series, %zu points, %zu commits in the change log\n",
              fleet.db().metric_count(), fleet.db().total_points(),
              fleet.change_log().size());

  std::printf("\nInjected ground truth:\n");
  for (const InjectedEvent& event : fleet.ground_truth()) {
    std::printf("  [%s] %s%s at day %.1f (magnitude %.0f%%)\n", EventKindName(event.kind),
                event.subroutine.empty() ? "(service level)" : event.subroutine.c_str(),
                event.kind == EventKind::kCostShift
                    ? (" <- " + event.shift_source).c_str()
                    : "",
                static_cast<double>(event.start) / kDay, event.magnitude * 100.0);
  }

  // --- Detect ----------------------------------------------------------------
  PipelineOptions options;
  options.detection.threshold = 0.0003;
  options.detection.windows.historical = Days(4);
  options.detection.windows.analysis = Hours(4);
  options.detection.windows.extended = Hours(2);
  options.detection.rerun_interval = Hours(4);
  options.telemetry.enabled = !telemetry_out.empty();

  CallGraphCodeInfo code_info(&scenario.service->graph());
  Pipeline pipeline(&fleet.db(), &fleet.change_log(), &code_info, options);
  const std::vector<Regression> reports =
      pipeline.RunPeriod(scenario_options.service_name, scenario.begin + Days(4), scenario.end);

  std::printf("\nFBDetect reports (%zu):\n", reports.size());
  for (const Regression& report : reports) {
    std::printf("  %s\n", report.Summary().c_str());
    for (const RankedCause& cause : report.root_causes) {
      const Commit* commit = fleet.change_log().Find(cause.commit_id);
      std::printf("      suspect commit #%lld (score %.2f): %s\n",
                  static_cast<long long>(cause.commit_id), cause.score,
                  commit != nullptr ? commit->title.c_str() : "?");
    }
  }

  const FunnelStats& funnel = pipeline.short_term_funnel();
  std::printf("\nShort-term funnel: %llu change points -> %llu went-away -> %llu seasonality"
              " -> %llu threshold -> %llu merged/deduped/reported\n",
              static_cast<unsigned long long>(funnel.change_points),
              static_cast<unsigned long long>(funnel.after_went_away),
              static_cast<unsigned long long>(funnel.after_seasonality),
              static_cast<unsigned long long>(funnel.after_threshold),
              static_cast<unsigned long long>(funnel.after_pairwise));
  if (!telemetry_out.empty() && WriteTelemetryFile(pipeline.telemetry(), telemetry_out)) {
    std::printf("Wrote telemetry to %s\n", telemetry_out.c_str());
  }
  return 0;
}
