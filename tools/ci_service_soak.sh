#!/usr/bin/env bash
# Chaos leg for the service-soak CI job (also runnable locally):
#
#   1. start fbdetect_serve with a durable data-dir,
#   2. slam it with curl ingest (small admission budget -> real 429s),
#   3. scrape /metrics + /stats into artifact files,
#   4. SIGTERM mid-load and assert a clean drain (exit 0),
#   5. restart, SIGKILL, reopen, and assert the durable tier recovered
#      every point acked before the kill.
#
# Usage: ci_service_soak.sh <build-dir> [artifact-dir]
set -u

BUILD_DIR="${1:?usage: ci_service_soak.sh <build-dir> [artifact-dir]}"
ART_DIR="${2:-${BUILD_DIR}/soak-artifacts}"
SERVE="${BUILD_DIR}/tools/fbdetect_serve"
PORT=18080
BASE="http://127.0.0.1:${PORT}"
DATA_DIR="$(mktemp -d /tmp/fbd_soak_XXXXXX)"
mkdir -p "${ART_DIR}"

fail() { echo "soak: FAIL: $*" >&2; exit 1; }

wait_healthy() {
  for _ in $(seq 1 100); do
    if curl -sf "${BASE}/healthz" > /dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  return 1
}

# One text-format ingest body: 64 points on 4 series. service|kind|entity|metadata|ts|value
make_body() {
  local ts_base=$1 out=""
  for s in 0 1 2 3; do
    for p in $(seq 0 15); do
      out+="soak|latency|endpoint_${s}||$((ts_base + p * 60))|$((1000 + s * 10 + p))"$'\n'
    done
  done
  printf '%s' "${out}"
}

ingest_load() {  # $1 = request count, $2 = ts offset; prints "<acked_reqs> <acked_pts>"
  local n=$1 ts0=$2 ok=0 pts=0 code body
  for i in $(seq 1 "${n}"); do
    body="$(make_body $((ts0 + i * 3600)))"
    code=$(curl -s -o /dev/null -w '%{http_code}' --data-binary "${body}" \
           -H 'Content-Type: text/plain' "${BASE}/ingest" || echo 000)
    case "${code}" in
      200) ok=$((ok + 1)); pts=$((pts + 64)) ;;
      429|503) ;;                      # shed is expected under the tiny budget
      *) fail "unexpected /ingest status ${code}" ;;
    esac
  done
  echo "${ok} ${pts}"
}

# ---- Phase 1: overload + scrape + SIGTERM drain ---------------------------
"${SERVE}" --port ${PORT} --data-dir "${DATA_DIR}" \
  --admit-pps 2000 --admit-burst 512 --flush-points 128 \
  > "${ART_DIR}/serve1.log" 2>&1 &
SERVE_PID=$!
wait_healthy || { cat "${ART_DIR}/serve1.log" >&2; fail "server never became healthy"; }

read -r ACKED1 ACKED1_PTS <<< "$(ingest_load 120 0)"
echo "soak: phase1 acked ${ACKED1} requests (${ACKED1_PTS} pts)"
[ "${ACKED1}" -gt 0 ] || fail "nothing admitted in phase 1"

curl -sf "${BASE}/metrics" > "${ART_DIR}/metrics.prom" || fail "/metrics scrape failed"
curl -sf "${BASE}/stats" > "${ART_DIR}/stats.json" || fail "/stats scrape failed"
grep -q 'service_offered_requests' "${ART_DIR}/metrics.prom" || fail "metrics missing service counters"
grep -q '"shed_admission"' "${ART_DIR}/stats.json" || fail "stats missing shed accounting"

# Keep load flowing while the drain signal lands.
( ingest_load 200 900000 > /dev/null 2>&1 ) &
LOAD_PID=$!
sleep 0.3
kill -TERM "${SERVE_PID}"
wait "${SERVE_PID}"
DRAIN_STATUS=$?
wait "${LOAD_PID}" 2>/dev/null
[ "${DRAIN_STATUS}" -eq 0 ] || { cat "${ART_DIR}/serve1.log" >&2; fail "SIGTERM drain exited ${DRAIN_STATUS}"; }
echo "soak: SIGTERM drain clean (exit 0)"

# ---- Phase 2: SIGKILL + reopen --------------------------------------------
"${SERVE}" --port ${PORT} --data-dir "${DATA_DIR}" --flush-points 128 \
  > "${ART_DIR}/serve2.log" 2>&1 &
SERVE_PID=$!
wait_healthy || { cat "${ART_DIR}/serve2.log" >&2; fail "server failed to reopen after drain"; }

read -r ACKED2 ACKED2_PTS <<< "$(ingest_load 20 1800000)"
[ "${ACKED2}" -gt 0 ] || fail "nothing admitted after reopen"
kill -KILL "${SERVE_PID}"
wait "${SERVE_PID}" 2>/dev/null
echo "soak: SIGKILL delivered after ${ACKED2} acked requests"

"${SERVE}" --port ${PORT} --data-dir "${DATA_DIR}" --flush-points 128 \
  > "${ART_DIR}/serve3.log" 2>&1 &
SERVE_PID=$!
wait_healthy || { cat "${ART_DIR}/serve3.log" >&2; fail "server failed to reopen after SIGKILL"; }
curl -sf "${BASE}/healthz" | grep -q '"status":"ok"' || fail "unhealthy after SIGKILL reopen"
curl -sf "${BASE}/stats" > "${ART_DIR}/stats_reopen.json" || fail "/stats after reopen failed"
kill -TERM "${SERVE_PID}"
wait "${SERVE_PID}" || fail "final drain failed"

rm -rf "${DATA_DIR}"
echo "soak: PASS"
