// fbdetect_sim — command-line driver for the FBDetect pipeline on a
// configurable simulated fleet.
//
// Generates a labelled scenario (regressions, cost shifts, transients),
// runs the full Fig. 6 pipeline, and prints tickets, the funnel, and a
// precision/recall scorecard against the injected ground truth.
//
// Usage:
//   fbdetect_sim [--days N] [--subroutines N] [--servers N]
//                [--regressions N] [--cost-shifts N] [--transients N]
//                [--threshold F] [--rerun-hours N] [--seed N]
//                [--threads N] [--json] [--quiet]
//                [--telemetry-out PATH]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/core/pipeline.h"
#include "src/fleet/fleet.h"
#include "src/fleet/scenario.h"
#include "src/observe/telemetry_export.h"
#include "src/report/report.h"

namespace fbdetect {
namespace {

struct CliOptions {
  int days = 14;
  int subroutines = 150;
  int servers = 5000;
  int regressions = 6;
  int cost_shifts = 3;
  int transients = 20;
  double threshold = 0.0003;
  int rerun_hours = 4;
  uint64_t seed = 42;
  int threads = 1;
  bool json = false;
  bool quiet = false;
  std::string telemetry_out;
};

void PrintUsage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --days N          simulated days (default 14)\n"
      "  --subroutines N   call-graph size (default 150)\n"
      "  --servers N       fleet size (default 5000)\n"
      "  --regressions N   injected true regressions (default 6)\n"
      "  --cost-shifts N   injected cost shifts (default 3)\n"
      "  --transients N    injected transient issues (default 20)\n"
      "  --threshold F     absolute gCPU detection threshold (default 0.0003)\n"
      "  --rerun-hours N   re-run interval in hours (default 4)\n"
      "  --seed N          simulation seed (default 42)\n"
      "  --threads N       parallel scan threads (default 1)\n"
      "  --json            print reports as JSON lines instead of tickets\n"
      "  --quiet           suppress tickets; print only the scorecard\n"
      "  --telemetry-out PATH  enable the telemetry registry and write its\n"
      "                        JSON export to PATH after the run\n",
      argv0);
}

bool ParseArgs(int argc, char** argv, CliOptions& options) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&](const char* name) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", name);
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      PrintUsage(argv[0]);
      return false;
    } else if (arg == "--json") {
      options.json = true;
    } else if (arg == "--quiet") {
      options.quiet = true;
    } else if (arg == "--days") {
      const char* v = next_value("--days");
      if (v == nullptr) return false;
      options.days = std::atoi(v);
    } else if (arg == "--subroutines") {
      const char* v = next_value("--subroutines");
      if (v == nullptr) return false;
      options.subroutines = std::atoi(v);
    } else if (arg == "--servers") {
      const char* v = next_value("--servers");
      if (v == nullptr) return false;
      options.servers = std::atoi(v);
    } else if (arg == "--regressions") {
      const char* v = next_value("--regressions");
      if (v == nullptr) return false;
      options.regressions = std::atoi(v);
    } else if (arg == "--cost-shifts") {
      const char* v = next_value("--cost-shifts");
      if (v == nullptr) return false;
      options.cost_shifts = std::atoi(v);
    } else if (arg == "--transients") {
      const char* v = next_value("--transients");
      if (v == nullptr) return false;
      options.transients = std::atoi(v);
    } else if (arg == "--threshold") {
      const char* v = next_value("--threshold");
      if (v == nullptr) return false;
      options.threshold = std::atof(v);
    } else if (arg == "--rerun-hours") {
      const char* v = next_value("--rerun-hours");
      if (v == nullptr) return false;
      options.rerun_hours = std::atoi(v);
    } else if (arg == "--seed") {
      const char* v = next_value("--seed");
      if (v == nullptr) return false;
      options.seed = static_cast<uint64_t>(std::atoll(v));
    } else if (arg == "--threads") {
      const char* v = next_value("--threads");
      if (v == nullptr) return false;
      options.threads = std::atoi(v);
    } else if (arg == "--telemetry-out") {
      const char* v = next_value("--telemetry-out");
      if (v == nullptr) return false;
      options.telemetry_out = v;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      PrintUsage(argv[0]);
      return false;
    }
  }
  if (options.days < 6 || options.subroutines < 10 || options.rerun_hours < 1) {
    std::fprintf(stderr, "invalid configuration (need days>=6, subroutines>=10, rerun>=1)\n");
    return false;
  }
  return true;
}

int Run(const CliOptions& cli) {
  FleetSimulator fleet;
  ScenarioOptions scenario_options;
  scenario_options.service_name = "sim_service";
  scenario_options.num_servers = cli.servers;
  scenario_options.num_subroutines = cli.subroutines;
  scenario_options.duration = Days(cli.days);
  scenario_options.num_step_regressions = cli.regressions;
  scenario_options.num_gradual_regressions = 0;
  scenario_options.num_cost_shifts = cli.cost_shifts;
  scenario_options.num_transients = cli.transients;
  scenario_options.seed = cli.seed;
  const Scenario scenario = GenerateScenario(fleet, scenario_options);

  if (!cli.quiet) {
    std::printf("simulating %d days, %d subroutines, %d servers (seed %llu)...\n", cli.days,
                cli.subroutines, cli.servers, static_cast<unsigned long long>(cli.seed));
  }
  fleet.Run(scenario.begin, scenario.end);

  PipelineOptions options;
  options.detection.threshold = cli.threshold;
  options.detection.windows.historical = Days(4);
  options.detection.windows.analysis = Hours(4);
  options.detection.windows.extended = Hours(2);
  options.detection.rerun_interval = Hours(cli.rerun_hours);
  options.scan_threads = cli.threads;
  options.telemetry.enabled = !cli.telemetry_out.empty();

  CallGraphCodeInfo code_info(&scenario.service->graph());
  Pipeline pipeline(&fleet.db(), &fleet.change_log(), &code_info, options);
  const std::vector<Regression> reports =
      pipeline.RunPeriod(scenario_options.service_name, scenario.begin + Days(4), scenario.end);

  if (!cli.quiet) {
    for (const Regression& report : reports) {
      if (cli.json) {
        std::printf("%s\n", ToJsonLine(report).c_str());
      } else {
        std::printf("%s\n", RenderTicket(report, &fleet.change_log()).c_str());
      }
    }
    std::printf("%s\n", RenderFunnel(pipeline.short_term_funnel(),
                                     pipeline.long_term_funnel(), true)
                           .c_str());
  }

  // Scorecard against ground truth (group-membership matching, as in the
  // Table 3 bench).
  size_t injected = 0;
  size_t caught = 0;
  for (const InjectedEvent& event : fleet.ground_truth()) {
    if (!event.IsTrueRegression()) {
      continue;
    }
    ++injected;
    for (const RegressionGroup& group : pipeline.groups()) {
      bool matched = false;
      for (const Regression& member : group.members) {
        if (std::llabs(static_cast<long long>(member.change_time - event.start)) <=
                static_cast<long long>(Days(1)) &&
            member.metric.entity == event.subroutine) {
          matched = true;
          break;
        }
      }
      if (matched) {
        ++caught;
        break;
      }
    }
  }
  std::printf("scorecard: %zu reports; %zu/%zu injected regressions caught\n", reports.size(),
              caught, injected);
  if (!cli.telemetry_out.empty()) {
    if (!WriteTelemetryFile(pipeline.telemetry(), cli.telemetry_out)) {
      std::fprintf(stderr, "failed to write %s\n", cli.telemetry_out.c_str());
      return 1;
    }
    if (!cli.quiet) {
      std::printf("wrote telemetry to %s\n", cli.telemetry_out.c_str());
    }
  }
  return 0;
}

}  // namespace
}  // namespace fbdetect

int main(int argc, char** argv) {
  fbdetect::CliOptions options;
  if (!fbdetect::ParseArgs(argc, argv, options)) {
    return 1;
  }
  return fbdetect::Run(options);
}
