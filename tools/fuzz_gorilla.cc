// Fuzz target for the recoverable Gorilla decoder (TryDecodeInto).
//
// The decoder is the one place FBDetect parses a packed binary format whose
// bytes may come from untrusted storage, so it must never read out of
// bounds, hit signed-overflow UB, or abort — for any input. The harness
// feeds arbitrary bytes through CompressedTimeSeries::FromRaw +
// TryDecodeInto and checks the invariants the decoder promises: errors come
// back as Status (never an exception or a crash), and any decoded prefix is
// strictly increasing in time.
//
// Input layout: [0..7] little-endian point count (clamped to 64k),
// [8..15] claimed bit count (clamped to what the remaining bytes hold),
// [16..] the bit stream.
//
// Two build modes:
//   * FBD_USE_LIBFUZZER: a classic LLVMFuzzerTestOneInput entry point for
//     clang's -fsanitize=fuzzer (enable with -DFBD_LIBFUZZER=ON).
//   * default: a standalone smoke binary (works with any compiler) that
//     generates its own inputs for a wall-clock duration — random garbage,
//     plus valid sealed chunks with random bit flips and truncations, which
//     reach much deeper decode states than noise alone. Used by the chaos
//     CI job: `fuzz_gorilla [seconds] [seed]`.
#include <cstdint>
#include <cstring>
#include <vector>

#include "src/common/check.h"
#include "src/common/status.h"
#include "src/tsdb/gorilla.h"
#include "src/tsdb/timeseries.h"

namespace {

uint64_t ReadLittleEndian64(const uint8_t* data) {
  uint64_t value = 0;
  std::memcpy(&value, data, sizeof(value));
  return value;
}

// Shared driver: build a chunk from raw fuzz bytes and decode it. Returns
// the decode status code so the smoke harness can track coverage counters.
fbdetect::StatusCode DecodeOne(const uint8_t* data, size_t size) {
  if (size < 16) {
    return fbdetect::StatusCode::kInvalidArgument;
  }
  const size_t count = static_cast<size_t>(ReadLittleEndian64(data) % 65536);
  std::vector<uint8_t> bytes(data + 16, data + size);
  const size_t max_bits = bytes.size() * 8;
  const size_t bit_count =
      max_bits == 0 ? 0 : static_cast<size_t>(ReadLittleEndian64(data + 8) % (max_bits + 1));
  const fbdetect::CompressedTimeSeries chunk =
      fbdetect::CompressedTimeSeries::FromRaw(std::move(bytes), bit_count, count);

  fbdetect::TimeSeries out;
  const fbdetect::Status status = chunk.TryDecodeInto(out);
  // Whatever the outcome, any decoded prefix obeys the TimeSeries ordering
  // invariant (TryAppend enforced it point by point).
  for (size_t i = 1; i < out.size(); ++i) {
    FBD_CHECK(out.timestamps()[i] > out.timestamps()[i - 1]);
  }
  if (status.ok()) {
    FBD_CHECK(out.size() == count);
  }
  return status.code();
}

}  // namespace

#ifdef FBD_USE_LIBFUZZER

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  DecodeOne(data, size);
  return 0;
}

#else  // Standalone smoke harness.

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "src/common/random.h"

namespace {

// A well-formed sealed chunk exercising every encoder branch: regular and
// jittered timestamps (all four delta-of-delta buckets), repeated values,
// small XOR deltas, and magnitude jumps.
std::vector<uint8_t> SeedChunk(fbdetect::Rng& rng, size_t points, size_t& bit_count,
                               size_t& count) {
  fbdetect::CompressedTimeSeries chunk;
  int64_t t = static_cast<int64_t>(rng.NextUint64(1000));
  double value = rng.Uniform(0.0, 100.0);
  for (size_t i = 0; i < points; ++i) {
    chunk.Append(t, value);
    t += 1 + static_cast<int64_t>(rng.NextUint64(4) == 0 ? rng.NextUint64(5000) : 60);
    switch (rng.NextUint64(4)) {
      case 0:
        break;  // Unchanged value: the 1-bit XOR branch.
      case 1:
        value += rng.Uniform(-1.0, 1.0);
        break;
      case 2:
        value = rng.Uniform(0.0, 1e9);
        break;
      default:
        value = -value;
        break;
    }
  }
  bit_count = chunk.bit_count();
  count = chunk.size();
  return chunk.bytes();
}

}  // namespace

int main(int argc, char** argv) {
  const double seconds = argc > 1 ? std::atof(argv[1]) : 10.0;
  const uint64_t seed = argc > 2 ? static_cast<uint64_t>(std::atoll(argv[2])) : 1;
  fbdetect::Rng rng(seed);

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::duration<double>(seconds);
  uint64_t iterations = 0;
  uint64_t ok = 0;
  uint64_t data_loss = 0;
  std::vector<uint8_t> input;
  while (std::chrono::steady_clock::now() < deadline) {
    for (int batch = 0; batch < 512; ++batch) {
      ++iterations;
      input.clear();
      if (rng.NextBool(0.5)) {
        // Mode 1: random garbage of random length.
        const size_t size = 16 + rng.NextUint64(256);
        for (size_t i = 0; i < size; ++i) {
          input.push_back(static_cast<uint8_t>(rng.NextUint64(256)));
        }
      } else {
        // Mode 2: a valid sealed chunk, then bit flips and/or truncation —
        // reaches deep decoder states that random noise cannot.
        size_t bit_count = 0;
        size_t count = 0;
        std::vector<uint8_t> bytes = SeedChunk(rng, 2 + rng.NextUint64(128), bit_count, count);
        const size_t flips = rng.NextUint64(8);
        for (size_t f = 0; f < flips && !bytes.empty(); ++f) {
          bytes[rng.NextUint64(bytes.size())] ^=
              static_cast<uint8_t>(1u << rng.NextUint64(8));
        }
        if (rng.NextBool(0.3) && !bytes.empty()) {
          bytes.resize(1 + rng.NextUint64(bytes.size()));
        }
        if (rng.NextBool(0.2)) {
          count += rng.NextUint64(16);  // Over-claimed point count.
        }
        input.resize(16);
        std::memcpy(input.data(), &count, 8);
        std::memcpy(input.data() + 8, &bit_count, 8);
        input.insert(input.end(), bytes.begin(), bytes.end());
      }
      switch (DecodeOne(input.data(), input.size())) {
        case fbdetect::StatusCode::kOk:
          ++ok;
          break;
        case fbdetect::StatusCode::kDataLoss:
          ++data_loss;
          break;
        default:
          break;
      }
    }
  }
  std::printf("fuzz_gorilla: %llu inputs, %llu decoded ok, %llu data-loss, 0 crashes\n",
              static_cast<unsigned long long>(iterations),
              static_cast<unsigned long long>(ok),
              static_cast<unsigned long long>(data_loss));
  return 0;
}

#endif  // FBD_USE_LIBFUZZER
