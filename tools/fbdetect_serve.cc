// Long-lived FBDetect service (DESIGN.md §16): live ingest over HTTP into a
// durable TimeSeriesDatabase, detection on demand via /run, Prometheus
// telemetry on /metrics, and a graceful SIGTERM drain (stop accepting ->
// flush admitted batches -> SealBefore checkpoint -> exit 0).
//
//   fbdetect_serve --port 8080 --data-dir /var/lib/fbdetect
//       --admit-pps 2000000 --flush-points 32768 --seal-every 1000000
//
// Exit status: 0 when the drain completed (every acked point checkpointed),
// 1 on startup failure or a drain that missed its deadline.
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/core/pipeline.h"
#include "src/service/server.h"
#include "src/tsdb/database.h"

namespace {

fbdetect::ServiceServer* g_server = nullptr;

void HandleSignal(int) {
  if (g_server != nullptr) {
    g_server->BeginDrain();  // Async-signal-safe: one eventfd write.
  }
}

uint64_t FlagU64(const char* value, const char* flag) {
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value, &end, 10);
  if (end == value || *end != '\0') {
    std::fprintf(stderr, "bad value for %s: %s\n", flag, value);
    std::exit(1);
  }
  return static_cast<uint64_t>(parsed);
}

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--host IP] [--port N] [--data-dir PATH]\n"
               "          [--admit-pps N] [--admit-burst N] [--parse-threads N]\n"
               "          [--scan-threads N] [--flush-points N] [--seal-every N]\n"
               "          [--high-watermark N] [--low-watermark N]\n"
               "          [--request-timeout-ms N] [--drain-deadline-ms N]\n",
               argv0);
}

}  // namespace

int main(int argc, char** argv) {
  fbdetect::ServiceOptions service;
  fbdetect::TsdbOptions tsdb;
  fbdetect::PipelineOptions pipeline_options;
  pipeline_options.telemetry.enabled = true;
  std::string data_dir;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        Usage(argv[0]);
        std::exit(1);
      }
      return argv[++i];
    };
    if (std::strcmp(arg, "--host") == 0) {
      service.host = next();
    } else if (std::strcmp(arg, "--port") == 0) {
      service.port = static_cast<uint16_t>(FlagU64(next(), "--port"));
    } else if (std::strcmp(arg, "--data-dir") == 0) {
      data_dir = next();
    } else if (std::strcmp(arg, "--admit-pps") == 0) {
      service.admit_points_per_sec = FlagU64(next(), "--admit-pps");
    } else if (std::strcmp(arg, "--admit-burst") == 0) {
      service.admit_burst_points = FlagU64(next(), "--admit-burst");
    } else if (std::strcmp(arg, "--parse-threads") == 0) {
      service.parse_threads = static_cast<int>(FlagU64(next(), "--parse-threads"));
    } else if (std::strcmp(arg, "--scan-threads") == 0) {
      pipeline_options.scan_threads = static_cast<int>(FlagU64(next(), "--scan-threads"));
    } else if (std::strcmp(arg, "--flush-points") == 0) {
      service.flush_points = FlagU64(next(), "--flush-points");
    } else if (std::strcmp(arg, "--seal-every") == 0) {
      service.seal_every_points = FlagU64(next(), "--seal-every");
    } else if (std::strcmp(arg, "--high-watermark") == 0) {
      service.parse_high_watermark_points = FlagU64(next(), "--high-watermark");
    } else if (std::strcmp(arg, "--low-watermark") == 0) {
      service.parse_low_watermark_points = FlagU64(next(), "--low-watermark");
    } else if (std::strcmp(arg, "--request-timeout-ms") == 0) {
      service.request_timeout_ms = FlagU64(next(), "--request-timeout-ms");
    } else if (std::strcmp(arg, "--drain-deadline-ms") == 0) {
      service.drain_deadline_ms = FlagU64(next(), "--drain-deadline-ms");
    } else {
      Usage(argv[0]);
      return std::strcmp(arg, "--help") == 0 ? 0 : 1;
    }
  }

  tsdb.durable.directory = data_dir;  // Empty = memory-only.
  fbdetect::TimeSeriesDatabase db(tsdb);
  fbdetect::Pipeline pipeline(&db, nullptr, nullptr, pipeline_options);
  fbdetect::ServiceServer server(&db, &pipeline, service);

  const fbdetect::Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "start failed: %s\n", started.message().c_str());
    return 1;
  }
  g_server = &server;
  struct sigaction action {};
  action.sa_handler = HandleSignal;
  ::sigaction(SIGTERM, &action, nullptr);
  ::sigaction(SIGINT, &action, nullptr);

  std::fprintf(stderr, "fbdetect_serve listening on %s:%u (durable: %s)\n",
               service.host.c_str(), server.port(),
               data_dir.empty() ? "off" : data_dir.c_str());
  const bool drained = server.Run();
  const fbdetect::ServiceServer::Stats stats = server.stats();
  std::fprintf(stderr,
               "drain %s: offered=%llu admitted=%llu acked_points=%llu shed=%llu\n",
               drained ? "clean" : "FORCED",
               static_cast<unsigned long long>(stats.offered_requests),
               static_cast<unsigned long long>(stats.admitted_requests),
               static_cast<unsigned long long>(stats.acked_points),
               static_cast<unsigned long long>(stats.shed()));
  return drained ? 0 : 1;
}
