// Fuzz target for the service's request surface (DESIGN.md §16): the
// incremental HTTP/1.1 parser and both wire-batch decoders. These are the
// bytes an arbitrary network peer controls, so for ANY input the parsers
// must return kError/Status — never an abort, out-of-bounds read, oversized
// allocation, or hang — and the invariants the service relies on must hold:
// a peeked point count matches the parsed batch, and a parsed batch's
// per-series sizes are consistent.
//
// Input layout: [0] mode selector, [1..] payload.
//   mode % 3 == 0: payload fed byte-at-a-time through HttpParser (the
//                  incremental path the epoll loop exercises);
//   mode % 3 == 1: payload through ParseWireBatch (+ PeekWirePoints);
//   mode % 3 == 2: payload through ParseTextBatch (+ CountTextPoints).
//
// Two build modes, mirroring tools/fuzz_gorilla.cc:
//   * FBD_USE_LIBFUZZER: LLVMFuzzerTestOneInput for clang -fsanitize=fuzzer
//     (enable with -DFBD_LIBFUZZER=ON).
//   * default: standalone smoke binary for the chaos CI job — random
//     garbage plus valid requests/batches with byte flips, truncations, and
//     splice points, which reach much deeper parser states than noise:
//     `fuzz_wire [seconds] [seed]`.
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "src/common/check.h"
#include "src/common/status.h"
#include "src/service/http.h"
#include "src/service/wire.h"

namespace {

void FuzzHttp(const uint8_t* data, size_t size) {
  fbdetect::HttpParser::Limits limits;
  limits.max_header_bytes = 4 * 1024;
  limits.max_body_bytes = 64 * 1024;
  fbdetect::HttpParser parser(limits);
  // Byte-at-a-time feeding exercises every incremental resume point.
  fbdetect::HttpParser::Result result = fbdetect::HttpParser::Result::kNeedMore;
  for (size_t i = 0; i < size; ++i) {
    const char byte = static_cast<char>(data[i]);
    result = parser.Feed(&byte, 1);
    if (result == fbdetect::HttpParser::Result::kError) {
      FBD_CHECK(parser.error_status() >= 400);
      return;
    }
    if (result == fbdetect::HttpParser::Result::kComplete) {
      const fbdetect::HttpRequest& request = parser.request();
      FBD_CHECK(!request.method.empty());
      FBD_CHECK(!request.target.empty() && request.target[0] == '/');
      // Re-arm on the same connection: pipelined bytes must carry over.
      parser.Reset();
      result = parser.Continue();
      if (result == fbdetect::HttpParser::Result::kError) {
        return;
      }
    }
    FBD_CHECK(parser.buffered_bytes() <=
              limits.max_header_bytes + limits.max_body_bytes + 4096);
  }
}

void FuzzBinary(const uint8_t* data, size_t size) {
  const std::span<const uint8_t> span(data, size);
  uint32_t peeked = 0;
  const fbdetect::Status peek = fbdetect::PeekWirePoints(span, &peeked);
  fbdetect::WireBatch batch;
  const fbdetect::Status parsed = fbdetect::ParseWireBatch(span, &batch);
  if (parsed.ok()) {
    // A parse can only succeed when the peek did, with matching counts.
    FBD_CHECK(peek.ok());
    FBD_CHECK(batch.total_points == peeked);
    size_t sum = 0;
    for (const fbdetect::WireSeries& series : batch.series) {
      FBD_CHECK(series.timestamps.size() == series.values.size());
      FBD_CHECK(!series.timestamps.empty());
      sum += series.timestamps.size();
    }
    FBD_CHECK(sum == batch.total_points);
  }
}

void FuzzText(const uint8_t* data, size_t size) {
  const std::string_view body(reinterpret_cast<const char*>(data), size);
  const uint32_t counted = fbdetect::CountTextPoints(body);
  fbdetect::WireBatch batch;
  const fbdetect::Status parsed = fbdetect::ParseTextBatch(body, &batch);
  if (parsed.ok()) {
    FBD_CHECK(batch.total_points == counted);
  }
}

void FuzzOne(const uint8_t* data, size_t size) {
  if (size < 1) {
    return;
  }
  switch (data[0] % 3) {
    case 0:
      FuzzHttp(data + 1, size - 1);
      break;
    case 1:
      FuzzBinary(data + 1, size - 1);
      break;
    default:
      FuzzText(data + 1, size - 1);
      break;
  }
}

}  // namespace

#ifdef FBD_USE_LIBFUZZER

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  FuzzOne(data, size);
  return 0;
}

#else  // Standalone smoke harness.

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "src/common/random.h"

namespace {

// A well-formed ingest request (headers + binary body) to mutate from.
std::string SeedRequest(fbdetect::Rng& rng) {
  fbdetect::WireBatch batch;
  const size_t series_count = 1 + rng.NextUint64(4);
  for (size_t s = 0; s < series_count; ++s) {
    fbdetect::WireSeries series;
    series.id.service = "svc" + std::to_string(rng.NextUint64(3));
    series.id.kind = static_cast<fbdetect::MetricKind>(
        rng.NextUint64(static_cast<uint64_t>(fbdetect::MetricKind::kApplication) + 1));
    series.id.entity = "e" + std::to_string(rng.NextUint64(100));
    const size_t points = 1 + rng.NextUint64(16);
    int64_t t = static_cast<int64_t>(rng.NextUint64(100000));
    for (size_t i = 0; i < points; ++i) {
      series.timestamps.push_back(t += 1 + static_cast<int64_t>(rng.NextUint64(60)));
      series.values.push_back(rng.Uniform(0.0, 1e6));
    }
    batch.total_points += points;
    batch.series.push_back(std::move(series));
  }
  std::string body;
  fbdetect::EncodeWireBatch(batch, body);
  std::string request = "POST /ingest HTTP/1.1\r\nHost: x\r\n";
  request += "Content-Type: application/x-fbdetect\r\nContent-Length: ";
  request += std::to_string(body.size());
  request += "\r\n\r\n";
  request += body;
  return request;
}

std::string SeedText(fbdetect::Rng& rng) {
  std::string body = "# fuzz seed\n";
  const size_t lines = 1 + rng.NextUint64(12);
  for (size_t i = 0; i < lines; ++i) {
    body += "svc|latency|endpoint" + std::to_string(rng.NextUint64(8)) + "||" +
            std::to_string(rng.NextUint64(100000)) + "|" +
            std::to_string(rng.Uniform(0.0, 100.0)) + "\n";
  }
  return body;
}

}  // namespace

int main(int argc, char** argv) {
  const double seconds = argc > 1 ? std::atof(argv[1]) : 10.0;
  const uint64_t seed = argc > 2 ? static_cast<uint64_t>(std::atoll(argv[2])) : 1;
  fbdetect::Rng rng(seed);

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::duration<double>(seconds);
  uint64_t iterations = 0;
  std::vector<uint8_t> input;
  while (std::chrono::steady_clock::now() < deadline) {
    for (int batch = 0; batch < 256; ++batch) {
      ++iterations;
      input.clear();
      input.push_back(static_cast<uint8_t>(rng.NextUint64(256)));
      if (rng.NextBool(0.4)) {
        // Mode 1: random garbage.
        const size_t size = rng.NextUint64(512);
        for (size_t i = 0; i < size; ++i) {
          input.push_back(static_cast<uint8_t>(rng.NextUint64(256)));
        }
      } else {
        // Mode 2: a valid request/batch/text body, then byte flips,
        // truncation, or a splice of two seeds.
        std::string seed_bytes;
        switch (input[0] % 3) {
          case 0:
            seed_bytes = SeedRequest(rng);
            if (rng.NextBool(0.3)) {
              seed_bytes += SeedRequest(rng);  // Pipelined pair.
            }
            break;
          case 1:
            seed_bytes = SeedRequest(rng);
            seed_bytes.erase(0, seed_bytes.find("\r\n\r\n") + 4);  // Body only.
            break;
          default:
            seed_bytes = SeedText(rng);
            break;
        }
        const size_t flips = rng.NextUint64(6);
        for (size_t f = 0; f < flips && !seed_bytes.empty(); ++f) {
          seed_bytes[rng.NextUint64(seed_bytes.size())] ^=
              static_cast<char>(1u << rng.NextUint64(8));
        }
        if (rng.NextBool(0.3) && !seed_bytes.empty()) {
          seed_bytes.resize(1 + rng.NextUint64(seed_bytes.size()));
        }
        input.insert(input.end(), seed_bytes.begin(), seed_bytes.end());
      }
      FuzzOne(input.data(), input.size());
    }
  }
  std::printf("fuzz_wire: %llu inputs, 0 crashes\n",
              static_cast<unsigned long long>(iterations));
  return 0;
}

#endif  // FBD_USE_LIBFUZZER
